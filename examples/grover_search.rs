//! Grover search using the ancilla-free qutrit multiply-controlled Z
//! (Section 5.2 of the paper).
//!
//! Run with: `cargo run --release --example grover_search`

use qutrits::toffoli::grover::{
    grover_circuit, grover_output_distribution, grover_success_probability, optimal_iterations,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_qubits = 4; // search over M = 16 items
    let marked = 11;
    let iterations = optimal_iterations(n_qubits);

    let circuit = grover_circuit(n_qubits, marked, iterations)?;
    println!(
        "Grover search over {} items, marked item {marked}, {iterations} iterations",
        1 << n_qubits
    );
    println!(
        "circuit: {} qutrits (no ancilla), {} operations",
        circuit.width(),
        circuit.len()
    );

    let p = grover_success_probability(n_qubits, marked, iterations)?;
    println!(
        "success probability after {iterations} iterations: {:.2}%",
        100.0 * p
    );

    println!();
    println!("success probability vs iteration count:");
    for k in 0..=iterations + 2 {
        let p = grover_success_probability(n_qubits, marked, k)?;
        let bar: String = "#".repeat((60.0 * p) as usize);
        println!("  {k:>2} iterations: {:>6.2}% {bar}", 100.0 * p);
    }

    println!();
    println!("final output distribution (top 4 items):");
    let mut dist: Vec<(usize, f64)> = grover_output_distribution(n_qubits, marked, iterations)?
        .into_iter()
        .enumerate()
        .collect();
    dist.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are not NaN"));
    for (item, p) in dist.into_iter().take(4) {
        println!("  item {item:>2}: {:>6.2}%", 100.0 * p);
    }
    Ok(())
}
