//! Grover search using the ancilla-free qutrit multiply-controlled Z
//! (Section 5.2 of the paper), simulated through the `qudit-api` façade:
//! one noise-free `JobSpec` per iteration count, submitted as a single
//! `run_batch` (the executor compiles each distinct circuit once).
//!
//! Run with: `cargo run --release --example grover_search`

use qutrits::api::{Executor, InputState, JobSpec};
use qutrits::toffoli::grover::{grover_circuit, optimal_iterations};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_qubits = 4; // search over M = 16 items
    let marked = 11;
    let iterations = optimal_iterations(n_qubits);

    let circuit = grover_circuit(n_qubits, marked, iterations)?;
    println!(
        "Grover search over {} items, marked item {marked}, {iterations} iterations",
        1 << n_qubits
    );
    println!(
        "circuit: {} qutrits (no ancilla), {} operations",
        circuit.width(),
        circuit.len()
    );

    // One job per iteration count (0..=iterations+2), all from the zero
    // input the algorithm starts in, run as one batch.
    let jobs: Vec<JobSpec> = (0..=iterations + 2)
        .map(|k| {
            JobSpec::builder(grover_circuit(n_qubits, marked, k)?)
                .input(InputState::Basis(vec![0; n_qubits]))
                .build()
                .map_err(Into::into)
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let executor = Executor::new();
    let results = executor.run_batch(&jobs);

    // The marked item is a binary pattern; qubit i is bit i of the pattern.
    let marked_digits: Vec<usize> = (0..n_qubits).map(|i| (marked >> i) & 1).collect();
    let mut success = Vec::new();
    for result in results {
        let result = result?;
        success.push(result.states()?[0].probability(&marked_digits)?);
    }

    println!(
        "success probability after {iterations} iterations: {:.2}%",
        100.0 * success[iterations]
    );

    println!();
    println!("success probability vs iteration count:");
    for (k, p) in success.iter().enumerate() {
        let bar: String = "#".repeat((60.0 * p) as usize);
        println!("  {k:>2} iterations: {:>6.2}% {bar}", 100.0 * p);
    }

    println!();
    println!("final output distribution (top 4 items):");
    let optimal = executor.run(&jobs[iterations])?;
    let out = &optimal.states()?[0];
    let mut dist: Vec<(usize, f64)> = (0..(1usize << n_qubits))
        .map(|item| {
            let digits: Vec<usize> = (0..n_qubits).map(|i| (item >> i) & 1).collect();
            Ok((item, out.probability(&digits)?))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    dist.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are not NaN"));
    for (item, p) in dist.into_iter().take(4) {
        println!("  item {item:>2}: {:>6.2}%", 100.0 * p);
    }
    Ok(())
}
