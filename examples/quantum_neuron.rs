//! The artificial quantum neuron (Section 5.1 of the paper): a perceptron
//! whose activation is computed by a Generalized Toffoli, here built with the
//! ancilla-free qutrit tree and simulated through the `qudit-api` façade
//! (one noise-free job per candidate input, run as a batch).
//!
//! Run with: `cargo run --release --example quantum_neuron`

use qutrits::api::{Executor, InputState, JobSpec};
use qutrits::sim::marginal_distribution;
use qutrits::toffoli::neuron::{neuron_circuit, SignVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3; // 2^3 = 8-element input and weight vectors

    // A weight vector and a few candidate inputs (true = +1, false = −1).
    let weights = SignVector::new(n, vec![true, false, true, true, false, true, false, false])?;
    let inputs = [
        ("identical to weights", weights.clone()),
        (
            "one sign flipped",
            SignVector::new(n, vec![true, false, true, true, false, true, false, true])?,
        ),
        (
            "half the signs flipped",
            SignVector::new(n, vec![true, false, true, true, true, false, true, true])?,
        ),
        ("all +1", SignVector::all_plus(n)),
    ];

    let circuit = neuron_circuit(&weights, &weights)?;
    println!(
        "quantum neuron on {} data qubits + 1 output: {} operations, width {}",
        n,
        circuit.len(),
        circuit.width()
    );

    // One façade job per candidate input, all submitted as a batch: the
    // neuron circuit starts from |0...0⟩, so each job is a noise-free
    // basis-input run whose output the activation read-out marginalises.
    let jobs: Vec<JobSpec> = inputs
        .iter()
        .map(|(_, input)| {
            JobSpec::builder(neuron_circuit(&weights, input)?)
                .input(InputState::Basis(vec![0; n + 1]))
                .build()
                .map_err(Into::into)
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let results = Executor::new().run_batch(&jobs);

    println!();
    println!(
        "{:<24} {:>18} {:>22}",
        "input", "<w,i>/2^N", "activation P(|1>)"
    );
    for ((label, input), result) in inputs.iter().zip(results) {
        let result = result?;
        let out = result.states()?[0]
            .pure()
            .expect("trajectory backend returns pure states");
        let p = marginal_distribution(out, n)[1];
        let overlap = weights.normalized_inner_product(input);
        println!("{label:<24} {overlap:>18.3} {:>21.1}%", 100.0 * p);
    }
    println!();
    println!("the activation probability equals the squared normalised inner product,");
    println!("so the neuron fires strongly only when the input matches the stored weights");
    Ok(())
}
