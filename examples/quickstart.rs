//! Quickstart for the public `qudit-api` façade: build the paper's
//! ancilla-free Generalized Toffoli, verify it through an executor job,
//! estimate its noisy fidelity, compare construction costs, and round-trip
//! the job through the JSON wire format.
//!
//! Run with: `cargo run --release --example quickstart`

use qutrits::api::{BackendKind, Executor, InputState, JobSpec};
use qutrits::circuit::Schedule;
use qutrits::noise::models;
use qutrits::toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrits::toffoli::gen_toffoli::n_controlled_x;
use qutrits::toffoli::verify::verify_n_controlled_x_backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_controls = 7;
    let executor = Executor::new();

    // 1. Build the qutrit-tree Generalized Toffoli: 7 controls, 1 target,
    //    no ancilla.
    let qutrit = n_controlled_x(n_controls)?;
    println!(
        "QUTRIT construction: width {} (controls + target only), {} operations",
        qutrit.width(),
        qutrit.len()
    );

    // 2. Verify it on every classical input (the paper's verification
    //    procedure), routed through the façade: the sweep runs as one
    //    compile-once executor job.
    match verify_n_controlled_x_backend(
        &executor,
        BackendKind::Trajectory,
        &qutrit,
        n_controls,
        n_controls,
    )? {
        None => println!(
            "verified: matches the {n_controls}-controlled NOT on all 2^{} inputs",
            n_controls + 1
        ),
        Some(cex) => println!("VERIFICATION FAILED: {cex:?}"),
    }

    // 3. Estimate the noisy fidelity under the paper's SC model — a noisy
    //    JobSpec; the executor compiles the Di & Wei lowering once.
    let job = JobSpec::builder(qutrit.clone())
        .noise(models::sc())
        .trials(20)
        .seed(2019)
        .input(InputState::RandomQubitSubspace)
        .build()?;
    let result = executor.run(&job)?;
    let estimate = result.fidelity()?;
    println!(
        "fidelity under {}: {:.2}% ± {:.2}% (binomial bound ±{:.2}%)",
        models::sc().name,
        100.0 * estimate.mean,
        100.0 * estimate.two_sigma(),
        100.0 * 2.0 * estimate.binomial_sigma(),
    );

    // 4. The job's resource report is the paper's count columns, measured
    //    on the compiled circuit; compare against the qubit-only baselines.
    println!();
    println!(
        "{:<15} {:>8} {:>12} {:>12} {:>10}",
        "construction", "width", "2-qudit", "1-qudit", "depth"
    );
    for (name, circuit) in [
        ("QUTRIT", qutrit.clone()),
        ("QUBIT", qubit_no_ancilla(n_controls, 2)?),
        ("QUBIT+ANCILLA", qubit_one_dirty_ancilla(n_controls, 2)?),
    ] {
        let report = qutrits::circuit::ResourceReport::measure_physical(&circuit);
        println!(
            "{:<15} {:>8} {:>12} {:>12} {:>10}",
            name,
            report.physical.width,
            report.two_qudit_gates(),
            report.physical.one_qudit_gates,
            report.depth()
        );
    }

    // 5. The wire format: the same job as JSON, ready for a queue or a
    //    service front end — and back, revalidated.
    let wire = job.to_json();
    let restored = JobSpec::from_json(&wire)?;
    assert_eq!(restored, job);
    println!();
    println!(
        "job round-trips through {} bytes of JSON (circuit + model + config)",
        wire.len()
    );

    println!(
        "logical tree depth of the qutrit construction: {} moments",
        Schedule::asap(&qutrit).depth()
    );
    Ok(())
}
