//! Quickstart: build the paper's ancilla-free Generalized Toffoli, verify it
//! exhaustively, and compare its costs against the qubit-only baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use qudit_circuit::{ResourceReport, Schedule};
use qutrits::toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrits::toffoli::gen_toffoli::n_controlled_x;
use qutrits::toffoli::verify::verify_n_controlled_x_classical;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_controls = 7;

    // 1. Build the qutrit-tree Generalized Toffoli: 7 controls, 1 target,
    //    no ancilla.
    let qutrit = n_controlled_x(n_controls)?;
    println!(
        "QUTRIT construction: width {} (controls + target only), {} operations",
        qutrit.width(),
        qutrit.len()
    );

    // 2. Verify it on every classical input (the paper's linear-space
    //    verification procedure).
    match verify_n_controlled_x_classical(&qutrit, n_controls, n_controls)? {
        None => println!(
            "verified: matches the {n_controls}-controlled NOT on all 2^{} inputs",
            n_controls + 1
        ),
        Some(cex) => println!("VERIFICATION FAILED: {cex:?}"),
    }

    // 3. Compare costs against the qubit-only baselines, through the
    //    compiler's resource analyzer (Di & Wei expansion for the physical
    //    columns).
    let qutrit_report = ResourceReport::measure(&qutrit);
    let qubit = qubit_no_ancilla(n_controls, 2)?;
    let qubit_report = ResourceReport::measure(&qubit);
    let ancilla = qubit_one_dirty_ancilla(n_controls, 2)?;
    let ancilla_report = ResourceReport::measure(&ancilla);

    println!();
    println!(
        "{:<15} {:>8} {:>12} {:>12} {:>10}",
        "construction", "width", "2-qudit", "1-qudit", "depth"
    );
    for (name, report) in [
        ("QUTRIT", qutrit_report),
        ("QUBIT", qubit_report),
        ("QUBIT+ANCILLA", ancilla_report),
    ] {
        println!(
            "{:<15} {:>8} {:>12} {:>12} {:>10}",
            name,
            report.physical.width,
            report.two_qudit_gates(),
            report.physical.one_qudit_gates,
            report.depth()
        );
    }

    println!();
    println!(
        "logical tree depth of the qutrit construction: {} moments",
        Schedule::asap(&qutrit).depth()
    );
    Ok(())
}
