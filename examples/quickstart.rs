//! Quickstart: build the paper's ancilla-free Generalized Toffoli, verify it
//! exhaustively, and compare its costs against the qubit-only baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use qudit_circuit::{analyze, CostWeights, Schedule};
use qutrits::toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrits::toffoli::gen_toffoli::n_controlled_x;
use qutrits::toffoli::verify::verify_n_controlled_x_classical;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_controls = 7;

    // 1. Build the qutrit-tree Generalized Toffoli: 7 controls, 1 target,
    //    no ancilla.
    let qutrit = n_controlled_x(n_controls)?;
    println!(
        "QUTRIT construction: width {} (controls + target only), {} operations",
        qutrit.width(),
        qutrit.len()
    );

    // 2. Verify it on every classical input (the paper's linear-space
    //    verification procedure).
    match verify_n_controlled_x_classical(&qutrit, n_controls, n_controls)? {
        None => println!(
            "verified: matches the {n_controls}-controlled NOT on all 2^{} inputs",
            n_controls + 1
        ),
        Some(cex) => println!("VERIFICATION FAILED: {cex:?}"),
    }

    // 3. Compare costs against the qubit-only baselines.
    let weights = CostWeights::di_wei();
    let qutrit_costs = analyze(&qutrit, weights);
    let qubit = qubit_no_ancilla(n_controls, 2)?;
    let qubit_costs = analyze(&qubit, weights);
    let ancilla = qubit_one_dirty_ancilla(n_controls, 2)?;
    let ancilla_costs = analyze(&ancilla, weights);

    println!();
    println!(
        "{:<15} {:>8} {:>12} {:>12} {:>10}",
        "construction", "width", "2-qudit", "1-qudit", "depth"
    );
    for (name, costs) in [
        ("QUTRIT", qutrit_costs),
        ("QUBIT", qubit_costs),
        ("QUBIT+ANCILLA", ancilla_costs),
    ] {
        println!(
            "{:<15} {:>8} {:>12} {:>12} {:>10}",
            name, costs.width, costs.two_qudit_gates, costs.one_qudit_gates, costs.physical_depth
        );
    }

    println!();
    println!(
        "logical tree depth of the qutrit construction: {} moments",
        Schedule::asap(&qutrit).depth()
    );
    Ok(())
}
