//! A miniature Figure 11: compare the fidelity of the QUTRIT, QUBIT and
//! QUBIT+ANCILLA constructions under the paper's superconducting and
//! trapped-ion noise models, using the quantum-trajectory simulator.
//!
//! Run with: `cargo run --release --example noise_fidelity`
//! (The full 13-control experiment is available via
//! `cargo run --release -p bench --bin fig11 -- --controls 13 --trials 1000`.)

use qutrits::noise::{
    cross_validate, models, simulate_fidelity, GateExpansion, InputState, TrajectoryConfig,
};
use qutrits::toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrits::toffoli::gen_toffoli::n_controlled_x;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let n_controls = 6;
    let trials = 30;

    let qutrit = n_controlled_x(n_controls).expect("qutrit circuit");
    let qubit = qubit_no_ancilla(n_controls, 2).expect("qubit circuit");
    let qubit_ancilla = qubit_one_dirty_ancilla(n_controls, 2).expect("qubit+ancilla circuit");

    let config = TrajectoryConfig {
        trials,
        seed: 2019,
        expansion: GateExpansion::DiWei,
        input: InputState::RandomQubitSubspace,
    };

    println!(
        "mean fidelity of the {}-input Generalized Toffoli ({} trajectory trials per pair)",
        n_controls + 1,
        trials
    );
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "noise model", "QUTRIT", "QUBIT", "QUBIT+ANCILLA"
    );
    let mut chosen_models = models::superconducting_models();
    chosen_models.push(models::ti_qubit());
    chosen_models.push(models::dressed_qutrit());
    for model in chosen_models {
        let f_qutrit = simulate_fidelity(&qutrit, &model, &config)?.mean;
        let f_qubit = simulate_fidelity(&qubit, &model, &config)?.mean;
        let f_ancilla = simulate_fidelity(&qubit_ancilla, &model, &config)?.mean;
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>13.1}%",
            model.name,
            100.0 * f_qutrit,
            100.0 * f_qubit,
            100.0 * f_ancilla
        );
    }
    println!();
    println!("(the QUTRIT column should dominate, as in the paper's Figure 11)");

    // Sanity-check the sampling against ground truth: on a small instance
    // the exact density-matrix backend gives the true fidelity, and the
    // trajectory estimate must land within the statistical bound of it.
    let small = n_controlled_x(3).expect("qutrit circuit");
    let cv = cross_validate(
        &small,
        &models::sc(),
        &TrajectoryConfig {
            trials: 200,
            seed: 2019,
            expansion: GateExpansion::DiWei,
            input: InputState::AllOnes,
        },
        3.0,
    )?;
    println!(
        "cross-check (3-control, SC): exact {:.4} vs trajectory {:.4} (|diff| {:.1e} ≤ bound {:.1e}: {})",
        cv.exact,
        cv.estimate.mean,
        cv.deviation(),
        cv.tolerance,
        if cv.within_bounds() { "ok" } else { "FAIL" }
    );
    Ok(())
}
