//! A miniature Figure 11: compare the fidelity of the QUTRIT, QUBIT and
//! QUBIT+ANCILLA constructions under the paper's superconducting and
//! trapped-ion noise models.
//!
//! All (model × construction) bars are described as `JobSpec`s and run in
//! one `Executor::run_batch` call — the batch fans out across rayon workers
//! and is bit-identical to sequential execution.
//!
//! Run with: `cargo run --release --example noise_fidelity`
//! (The full 13-control experiment is available via
//! `cargo run --release -p bench --bin fig11 -- --controls 13 --trials 1000`.)

use qutrits::api::{Executor, InputState, JobSpec};
use qutrits::noise::models;
use qutrits::toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrits::toffoli::gen_toffoli::n_controlled_x;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_controls = 6;
    let trials = 30;

    let circuits = [
        n_controlled_x(n_controls)?,
        qubit_no_ancilla(n_controls, 2)?,
        qubit_one_dirty_ancilla(n_controls, 2)?,
    ];

    let mut chosen_models = models::superconducting_models();
    chosen_models.push(models::ti_qubit());
    chosen_models.push(models::dressed_qutrit());

    // One JobSpec per (model, construction) bar, all submitted as a batch.
    let mut jobs: Vec<JobSpec> = Vec::new();
    for model in &chosen_models {
        for circuit in &circuits {
            jobs.push(
                JobSpec::builder(circuit.clone())
                    .noise(model.clone())
                    .trials(trials)
                    .seed(2019)
                    .input(InputState::RandomQubitSubspace)
                    .build()?,
            );
        }
    }

    let executor = Executor::new();
    let results = executor.run_batch(&jobs);

    println!(
        "mean fidelity of the {}-input Generalized Toffoli ({} trajectory trials per pair)",
        n_controls + 1,
        trials
    );
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "noise model", "QUTRIT", "QUBIT", "QUBIT+ANCILLA"
    );
    let mut results = results.into_iter();
    for model in &chosen_models {
        let mut bars = [0.0f64; 3];
        for bar in bars.iter_mut() {
            *bar = results
                .next()
                .expect("one result per job")?
                .fidelity()?
                .mean;
        }
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>13.1}%",
            model.name,
            100.0 * bars[0],
            100.0 * bars[1],
            100.0 * bars[2]
        );
    }
    println!();
    println!("(the QUTRIT column should dominate, as in the paper's Figure 11)");

    // Sanity-check the sampling against ground truth: on a small instance
    // the exact density-matrix backend gives the true fidelity, and the
    // trajectory estimate must land within the statistical bound of it.
    let small_job = JobSpec::builder(n_controlled_x(3)?)
        .noise(models::sc())
        .trials(200)
        .seed(2019)
        .input(InputState::AllOnes)
        .build()?;
    let cv = executor.cross_validate(&small_job, 3.0)?;
    println!(
        "cross-check (3-control, SC): exact {:.4} vs trajectory {:.4} (|diff| {:.1e} ≤ bound {:.1e}: {})",
        cv.exact,
        cv.estimate.mean,
        cv.deviation(),
        cv.tolerance,
        if cv.within_bounds() { "ok" } else { "FAIL" }
    );
    Ok(())
}
