//! The ancilla-free O(log² N)-depth incrementer (Section 5.3 of the paper):
//! classical verification via the linear-space simulator, a quantum
//! spot-check through the `qudit-api` façade (one compile, a basis-state
//! sweep), and the depth scaling that is the construction's point.
//!
//! Run with: `cargo run --release --example incrementer`

use qutrits::api::{Executor, JobSpec};
use qutrits::circuit::classical::simulate_classical;
use qutrits::circuit::Schedule;
use qutrits::toffoli::incrementer::{incrementer, register_to_value, value_to_register};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Demonstrate correctness on an 8-bit register.
    let n = 8;
    let circuit = incrementer(n)?;
    println!(
        "incrementer on {n} bits: width {} (no ancilla), {} operations, depth {} moments",
        circuit.width(),
        circuit.len(),
        Schedule::asap(&circuit).depth()
    );

    let values = [0usize, 7, 127, 200, 255];
    for &value in &values {
        let input = value_to_register(value, n);
        let out = simulate_classical(&circuit, &input)?;
        println!(
            "  {value:>3} + 1 = {:>3} (mod 256)",
            register_to_value(&out)
        );
    }

    // The same values through the quantum engine, as one façade job: the
    // circuit compiles once and the sweep replays the shared kernel plans.
    let sweep: Vec<Vec<usize>> = values.iter().map(|&v| value_to_register(v, n)).collect();
    let job = JobSpec::builder(circuit.clone()).sweep(sweep).build()?;
    let result = Executor::new().run(&job)?;
    for (&value, out) in values.iter().zip(result.states()?) {
        let expected = value_to_register((value + 1) % (1 << n), n);
        assert!((out.probability(&expected)? - 1.0).abs() < 1e-9);
    }
    println!(
        "  (quantum spot-check through qudit_api::Executor: all {} inputs agree)",
        values.len()
    );

    // Depth scaling: the whole point of the construction.
    println!();
    println!("depth scaling (log^2 N thanks to the log-depth multiply-controlled gate):");
    println!("{:>6} {:>10} {:>12}", "bits", "depth", "operations");
    for bits in [4usize, 8, 16, 32, 64, 128] {
        let c = incrementer(bits)?;
        println!(
            "{:>6} {:>10} {:>12}",
            bits,
            Schedule::asap(&c).depth(),
            c.len()
        );
    }
    Ok(())
}
