//! The ancilla-free O(log² N)-depth incrementer (Section 5.3 of the paper).
//!
//! Run with: `cargo run --release --example incrementer`

use qudit_circuit::classical::simulate_classical;
use qudit_circuit::Schedule;
use qutrits::toffoli::incrementer::{incrementer, register_to_value, value_to_register};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Demonstrate correctness on an 8-bit register.
    let n = 8;
    let circuit = incrementer(n)?;
    println!(
        "incrementer on {n} bits: width {} (no ancilla), {} operations, depth {} moments",
        circuit.width(),
        circuit.len(),
        Schedule::asap(&circuit).depth()
    );

    for value in [0usize, 7, 127, 200, 255] {
        let input = value_to_register(value, n);
        let out = simulate_classical(&circuit, &input)?;
        println!(
            "  {value:>3} + 1 = {:>3} (mod 256)",
            register_to_value(&out)
        );
    }

    // Depth scaling: the whole point of the construction.
    println!();
    println!("depth scaling (log^2 N thanks to the log-depth multiply-controlled gate):");
    println!("{:>6} {:>10} {:>12}", "bits", "depth", "operations");
    for bits in [4usize, 8, 16, 32, 64, 128] {
        let c = incrementer(bits)?;
        println!(
            "{:>6} {:>10} {:>12}",
            bits,
            Schedule::asap(&c).depth(),
            c.len()
        );
    }
    Ok(())
}
