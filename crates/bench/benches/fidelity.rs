//! Criterion benches for the noisy-fidelity path (the engine behind
//! Figure 11), at reduced sizes so `cargo bench` stays fast. Jobs run
//! through the `qudit-api` executor, so what is timed is the production
//! path: the structure-keyed compile cache plus the trajectory replay.

use bench::benchmark_circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_api::{Executor, InputState, JobSpec, PassLevel};
use qudit_noise::models;
use qutrit_toffoli::cost::Construction;

fn bench_trajectory_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_trajectory_job");
    group.sample_size(10);
    let executor = Executor::new();
    for n_controls in [4usize, 6] {
        for construction in [Construction::Qutrit, Construction::QubitAncilla] {
            let circuit = benchmark_circuit(construction, n_controls);
            group.bench_with_input(
                BenchmarkId::new(construction.name(), n_controls),
                &circuit,
                |b, circuit| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let spec = JobSpec::builder(circuit.clone())
                            .noise(models::sc())
                            .trials(4)
                            .seed(seed)
                            .input(InputState::AllOnes)
                            .build()
                            .unwrap();
                        executor.run(&spec).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_noise_accounting_ablation(c: &mut Criterion) {
    // Ablation bench: the lowered (physical) accounting vs the logical
    // single-charge accounting for the same circuit and model.
    let mut group = c.benchmark_group("ablation_noise_granularity");
    group.sample_size(10);
    let circuit = benchmark_circuit(Construction::Qutrit, 5);
    let executor = Executor::new();
    for (label, level) in [
        ("di_wei_physical", PassLevel::Physical),
        ("logical", PassLevel::NoisePreserving),
    ] {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let spec = JobSpec::builder(circuit.clone())
                    .noise(models::sc())
                    .level(level)
                    .trials(4)
                    .seed(seed)
                    .input(InputState::AllOnes)
                    .build()
                    .unwrap();
                executor.run(&spec).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trajectory_fidelity,
    bench_noise_accounting_ablation
);
criterion_main!(benches);
