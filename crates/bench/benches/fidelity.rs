//! Criterion benches for the quantum-trajectory noise simulator (the engine
//! behind Figure 11), at reduced sizes so `cargo bench` stays fast.

use bench::benchmark_circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_noise::{models, GateExpansion, InputState, TrajectorySimulator};
use qutrit_toffoli::cost::Construction;

fn bench_trajectory_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_trajectory_trial");
    group.sample_size(10);
    for n_controls in [4usize, 6] {
        for construction in [Construction::Qutrit, Construction::QubitAncilla] {
            let circuit = benchmark_circuit(construction, n_controls);
            let model = models::sc();
            let sim = TrajectorySimulator::new(&circuit, &model).unwrap();
            group.bench_with_input(
                BenchmarkId::new(construction.name(), n_controls),
                &sim,
                |b, sim| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        sim.run_trial(&InputState::AllOnes, seed).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_noise_model_ablation(c: &mut Criterion) {
    // Ablation bench: Di & Wei expansion vs single-charge accounting for the
    // same circuit and model.
    let mut group = c.benchmark_group("ablation_noise_granularity");
    group.sample_size(10);
    let circuit = benchmark_circuit(Construction::Qutrit, 5);
    let model = models::sc();
    for (label, expansion) in [
        ("di_wei_physical", None),
        ("di_wei_virtual", Some(GateExpansion::DiWei)),
        ("logical", Some(GateExpansion::Logical)),
    ] {
        let sim = match expansion {
            None => TrajectorySimulator::new(&circuit, &model).unwrap(),
            Some(e) => TrajectorySimulator::with_virtual_expansion(&circuit, &model, e).unwrap(),
        };
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sim.run_trial(&InputState::AllOnes, seed).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trajectory_trial, bench_noise_model_ablation);
criterion_main!(benches);
