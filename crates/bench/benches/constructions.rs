//! Criterion benches for building the Figure 9 / Figure 10 constructions and
//! computing their costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_circuit::{analyze, CostWeights};
use qutrit_toffoli::baselines::{he_log_depth, qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;

fn bench_generalized_toffoli_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_constructions");
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("qutrit_tree", n), &n, |b, &n| {
            b.iter(|| {
                let circuit = n_controlled_x(n).unwrap();
                analyze(&circuit, CostWeights::di_wei())
            })
        });
        group.bench_with_input(BenchmarkId::new("qubit_ancilla", n), &n, |b, &n| {
            b.iter(|| {
                let circuit = qubit_one_dirty_ancilla(n, 2).unwrap();
                analyze(&circuit, CostWeights::di_wei())
            })
        });
        group.bench_with_input(BenchmarkId::new("qubit_no_ancilla", n), &n, |b, &n| {
            b.iter(|| {
                let circuit = qubit_no_ancilla(n, 2).unwrap();
                analyze(&circuit, CostWeights::di_wei())
            })
        });
        group.bench_with_input(BenchmarkId::new("he_log_depth", n), &n, |b, &n| {
            b.iter(|| {
                let circuit = he_log_depth(n, 2).unwrap();
                analyze(&circuit, CostWeights::di_wei())
            })
        });
    }
    group.finish();
}

fn bench_incrementer_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("incrementer_construction");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let circuit = incrementer(n).unwrap();
                analyze(&circuit, CostWeights::di_wei())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generalized_toffoli_constructions,
    bench_incrementer_construction
);
criterion_main!(benches);
