//! Criterion benches for the state-vector and classical simulators (the
//! paper's Section 6.2 efficiency claims: einsum-style gate application and
//! linear-space classical verification).
//!
//! The `gate_apply_engine` group pits the stride-enumerated plan kernels
//! against the retained seed implementation (`qudit_sim::reference`, a full
//! `d^n` scan with per-index `pow`) on the same circuit — the acceptance
//! benchmark for the kernel rewrite (target: ≥ 5× on the 8-control
//! generalized Toffoli).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_circuit::classical::simulate_classical;
use qudit_core::StateVector;
use qudit_sim::{reference, Simulator};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;

fn bench_statevector_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_simulation");
    group.sample_size(10);
    // 6-, 9- and 12-qutrit registers (the paper simulates up to 14).
    for n_controls in [5usize, 8, 11] {
        let circuit = n_controlled_x(n_controls).unwrap();
        let sim = Simulator::new();
        group.bench_with_input(
            BenchmarkId::new("qutrit_gen_toffoli", n_controls + 1),
            &circuit,
            |b, circuit| b.iter(|| sim.run(circuit).unwrap()),
        );
    }
    group.finish();
}

fn bench_gate_apply_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_apply_engine");
    group.sample_size(10);
    let circuit = n_controlled_x(8).unwrap(); // 9 qutrits, 19 683 amplitudes
    let width = circuit.width();
    let dim = circuit.dim();

    let sim = Simulator::new();
    let compiled = sim.compile(&circuit);
    group.bench_with_input(BenchmarkId::new("plan_kernels", width), &circuit, |b, _| {
        b.iter(|| compiled.run(StateVector::zero_state(dim, width).unwrap()))
    });

    group.bench_with_input(
        BenchmarkId::new("seed_reference", width),
        &circuit,
        |b, circuit| {
            b.iter(|| {
                let mut state = StateVector::zero_state(dim, width).unwrap();
                for op in circuit.iter() {
                    reference::apply_operation_naive(&mut state, op);
                }
                state
            })
        },
    );
    group.finish();
}

fn bench_classical_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_simulation");
    for width in [32usize, 128] {
        let circuit = n_controlled_x(width - 1).unwrap();
        let input = vec![1usize; width];
        group.bench_with_input(
            BenchmarkId::new("qutrit_gen_toffoli", width),
            &circuit,
            |b, circuit| b.iter(|| simulate_classical(circuit, &input).unwrap()),
        );
    }
    for width in [16usize, 64] {
        let circuit = incrementer(width).unwrap();
        let input = vec![1usize; width];
        group.bench_with_input(
            BenchmarkId::new("incrementer", width),
            &circuit,
            |b, circuit| b.iter(|| simulate_classical(circuit, &input).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector_simulation,
    bench_gate_apply_engine,
    bench_classical_simulation
);
criterion_main!(benches);
