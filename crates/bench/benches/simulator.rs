//! Criterion benches for the state-vector and classical simulators (the
//! paper's Section 6.2 efficiency claims: einsum-style gate application and
//! linear-space classical verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_circuit::classical::simulate_classical;
use qudit_sim::Simulator;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;

fn bench_statevector_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_simulation");
    group.sample_size(10);
    for n_controls in [5usize, 8] {
        let circuit = n_controlled_x(n_controls).unwrap();
        let sim = Simulator::new();
        group.bench_with_input(
            BenchmarkId::new("qutrit_gen_toffoli", n_controls + 1),
            &circuit,
            |b, circuit| b.iter(|| sim.run(circuit).unwrap()),
        );
    }
    group.finish();
}

fn bench_classical_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_simulation");
    for width in [32usize, 128] {
        let circuit = n_controlled_x(width - 1).unwrap();
        let input = vec![1usize; width];
        group.bench_with_input(
            BenchmarkId::new("qutrit_gen_toffoli", width),
            &circuit,
            |b, circuit| b.iter(|| simulate_classical(circuit, &input).unwrap()),
        );
    }
    for width in [16usize, 64] {
        let circuit = incrementer(width).unwrap();
        let input = vec![1usize; width];
        group.bench_with_input(
            BenchmarkId::new("incrementer", width),
            &circuit,
            |b, circuit| b.iter(|| simulate_classical(circuit, &input).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_statevector_simulation, bench_classical_simulation);
criterion_main!(benches);
