//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin` regenerates one table or figure:
//!
//! | Binary   | Paper artefact |
//! |----------|----------------|
//! | `table1` | Table 1 — asymptotic comparison of decompositions |
//! | `table2` | Table 2 — superconducting noise models |
//! | `table3` | Table 3 — trapped-ion noise models |
//! | `fig9`   | Figure 9 — circuit depth vs number of controls |
//! | `fig10`  | Figure 10 — two-qudit gate count vs number of controls |
//! | `fig11`  | Figure 11 — mean fidelity per (circuit, noise model) pair |
//!
//! Every simulation the binaries run goes through the `qudit-api` façade:
//! jobs are described as [`JobSpec`]s (CLI switches parse through
//! [`qudit_api::CliArgs`] / [`JobSpec::from_cli_args`]) and executed by one
//! shared [`Executor`], so the bins exercise exactly the compile-once batch
//! path a service front end would. No binary constructs a simulator
//! directly — `tests/api_facade.rs` greps for that.
//!
//! The Criterion benches in `benches/` time the underlying engines and
//! constructions and exercise the same code paths at reduced sizes.

pub mod serve_support;

use qudit_api::{ApiResult, BackendKind, Executor, FidelityEstimate, InputState, JobSpec};
use qudit_circuit::Circuit;
use qudit_noise::NoiseModel;
use qutrit_toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::cost::Construction;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::verify::verify_n_controlled_x_backend;

/// Builds the benchmark circuit for a construction and control count.
///
/// The qutrit construction is built over a `d = 3` register; the qubit
/// constructions over `d = 2`, matching how the paper simulates them.
///
/// # Panics
///
/// Panics if the construction has no circuit implementation (Wang/Lanyon) or
/// construction fails.
pub fn benchmark_circuit(construction: Construction, n_controls: usize) -> Circuit {
    match construction {
        Construction::Qutrit => n_controlled_x(n_controls).expect("qutrit construction"),
        Construction::Qubit | Construction::Barenco => {
            qubit_no_ancilla(n_controls, 2).expect("qubit construction")
        }
        Construction::QubitAncilla => {
            qubit_one_dirty_ancilla(n_controls, 2).expect("qubit+ancilla construction")
        }
        Construction::He => {
            qutrit_toffoli::baselines::he_log_depth(n_controls, 2).expect("he construction")
        }
        Construction::Wang | Construction::Lanyon => {
            panic!("{construction:?} is analytic-only; no circuit to build")
        }
    }
}

/// The shared cross-validation case registry: every `(label, circuit,
/// model)` triple the `crossval` bin checks and the CI invariance jobs
/// smoke. One list, three sections:
///
/// * every paper noise model on the Figure-4 Toffoli;
/// * larger `d ∈ {2, 3}` Generalized-Toffoli instances (up to 6 qudits);
/// * the three optional channels (leakage, coherent over-rotation, ZZ
///   crosstalk) on the Figure-4 Toffoli;
/// * every `qudit_algos::catalog()` instance on a representative model.
///
/// The `algos` bin and `crossval` both iterate this function, so a new
/// algorithm generator or channel registered here is covered by every
/// harness at once instead of a hand-maintained per-bin case table.
pub fn crossval_cases() -> Vec<(String, Circuit, NoiseModel)> {
    use qudit_noise::models;
    let fig4 = || benchmark_circuit(Construction::Qutrit, 2);
    let mut cases: Vec<(String, Circuit, NoiseModel)> = Vec::new();
    for model in models::all_models() {
        cases.push((format!("fig4-toffoli/{}", model.name), fig4(), model));
    }
    for (label, construction, controls) in [
        ("qutrit-5q", Construction::Qutrit, 4),
        ("qutrit-6q", Construction::Qutrit, 5),
        ("qubit-5q", Construction::Qubit, 4),
        ("qubit-6q", Construction::Qubit, 5),
    ] {
        let model = models::sc_t1_gates();
        cases.push((
            format!("{label}/{}", model.name),
            benchmark_circuit(construction, controls),
            model,
        ));
    }
    // Each optional channel exercised alone (on top of the SC baseline),
    // so a drift in any one channel's accounting is attributable.
    for (tag, model) in [
        ("SC+leak", models::sc().with_leakage(1e-3)),
        ("SC+overrot", models::sc().with_overrotation(0.02)),
        ("SC+crosstalk", models::sc().with_crosstalk(2e4)),
    ] {
        cases.push((format!("fig4-toffoli/{tag}"), fig4(), model));
    }
    for case in qudit_algos::catalog() {
        let model = models::sc_t1_gates();
        cases.push((
            format!("{}/{}", case.name, model.name),
            case.circuit(),
            model,
        ));
    }
    cases
}

/// The (circuit, noise-model) pairs of Figure 11: the superconducting models
/// are paired with all three circuits, `TI_QUBIT` with the two qubit
/// circuits, and the two trapped-ion qutrit models with the qutrit circuit —
/// 16 bars in total.
pub fn figure11_pairs() -> Vec<(Construction, NoiseModel)> {
    use qudit_noise::models;
    let mut pairs = Vec::new();
    for model in models::superconducting_models() {
        for construction in Construction::benchmarked() {
            pairs.push((construction, model.clone()));
        }
    }
    pairs.push((Construction::Qubit, models::ti_qubit()));
    pairs.push((Construction::QubitAncilla, models::ti_qubit()));
    pairs.push((Construction::Qutrit, models::bare_qutrit()));
    pairs.push((Construction::Qutrit, models::dressed_qutrit()));
    pairs
}

/// Describes one Figure 11 bar as a façade job: the construction's circuit
/// under `model`, random-qubit-subspace inputs, on the selected backend.
///
/// # Errors
///
/// Returns a spec-validation error — e.g. the density-matrix backend at an
/// infeasible width, which used to be a panic in this crate and is now a
/// typed refusal from the job builder.
pub fn figure11_job(
    backend: BackendKind,
    construction: Construction,
    model: &NoiseModel,
    n_controls: usize,
    trials: usize,
    seed: u64,
) -> ApiResult<JobSpec> {
    JobSpec::builder(benchmark_circuit(construction, n_controls))
        .backend(backend)
        .noise(model.clone())
        .trials(trials)
        .seed(seed)
        .input(InputState::RandomQubitSubspace)
        .build()
}

/// Runs the Figure 11 fidelity estimate for one (construction, model) pair
/// on the selected backend through `executor`. The density-matrix backend
/// returns exact per-input fidelities (averaged over the same seeded input
/// draws the trajectory backend would use), so its `2σ` column reflects
/// input variation only.
///
/// # Errors
///
/// Returns an error on an invalid spec (e.g. density-infeasible width) or a
/// failed simulation (unphysical model parameters).
pub fn figure11_fidelity_on(
    executor: &Executor,
    backend: BackendKind,
    construction: Construction,
    model: &NoiseModel,
    n_controls: usize,
    trials: usize,
    seed: u64,
) -> ApiResult<FidelityEstimate> {
    let job = figure11_job(backend, construction, model, n_controls, trials, seed)?;
    Ok(*executor.run(&job)?.fidelity()?)
}

/// The reference fidelity column for the table binaries: the mean fidelity
/// of the paper's Figure 4-style 2-controlled Toffoli (3 qudits, built at
/// the model-appropriate dimension) under `model`, on the selected backend.
///
/// # Errors
///
/// Returns an error if the spec is invalid or the simulation fails
/// (unphysical model parameters).
pub fn table_reference_fidelity(
    executor: &Executor,
    backend: BackendKind,
    model: &NoiseModel,
    dim: usize,
    trials: usize,
    seed: u64,
) -> ApiResult<FidelityEstimate> {
    let construction = if dim == 2 {
        Construction::Qubit
    } else {
        Construction::Qutrit
    };
    figure11_fidelity_on(executor, backend, construction, model, 2, trials, seed)
}

/// Routes the paper's N-controlled-X verification through the selected
/// backend for every simulable construction, returning an error string on
/// the first counterexample. The figure binaries call this before printing
/// structural columns, so a backend that drifts from the constructions
/// fails the regeneration run.
///
/// # Panics
///
/// Panics if a construction cannot be built.
pub fn verify_constructions_on(
    executor: &Executor,
    backend: BackendKind,
    n_controls: usize,
) -> Result<(), String> {
    for construction in Construction::benchmarked() {
        let circuit = benchmark_circuit(construction, n_controls);
        match verify_n_controlled_x_backend(executor, backend, &circuit, n_controls, n_controls) {
            Ok(None) => {}
            Ok(Some(cex)) => {
                return Err(format!(
                    "{} failed on {}: input {:?} gave {:?}, expected {:?}",
                    construction.name(),
                    backend.name(),
                    cex.input,
                    cex.actual,
                    cex.expected
                ))
            }
            Err(e) => return Err(format!("{} verification error: {e}", construction.name())),
        }
    }
    Ok(())
}

/// Formats a fidelity as a percentage string like the paper's figure labels.
pub fn percent(f: f64) -> String {
    format!("{:.2}%", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_has_sixteen_bars() {
        assert_eq!(figure11_pairs().len(), 16);
    }

    #[test]
    fn crossval_registry_labels_are_unique_and_widths_feasible() {
        let cases = crossval_cases();
        let mut labels: Vec<_> = cases.iter().map(|(l, _, _)| l.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cases.len(), "duplicate crossval labels");
        for (label, circuit, model) in &cases {
            // Every case must stay exact-backend feasible (the crossval
            // bin runs both backends on every entry).
            let entries = (circuit.dim() as u128).pow(2 * circuit.width() as u32);
            assert!(
                entries <= qudit_api::DENSITY_MAX_ENTRIES,
                "{label} is too wide for the density backend"
            );
            model.validate_channels(circuit.dim()).unwrap();
        }
        // The registry covers each optional channel and each catalog case.
        for needle in ["SC+leak", "SC+overrot", "SC+crosstalk", "qft_d3_n3"] {
            assert!(
                labels.iter().any(|l| l.contains(needle)),
                "missing {needle}"
            );
        }
    }

    #[test]
    fn benchmark_circuits_have_expected_widths() {
        assert_eq!(benchmark_circuit(Construction::Qutrit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::Qubit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::QubitAncilla, 5).width(), 7);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.947), "94.70%");
    }

    #[test]
    fn small_fidelity_run_is_sane() {
        let executor = Executor::new();
        let est = figure11_fidelity_on(
            &executor,
            BackendKind::Trajectory,
            Construction::Qutrit,
            &qudit_noise::models::dressed_qutrit(),
            3,
            5,
            1,
        )
        .unwrap();
        assert!(est.mean > 0.8 && est.mean <= 1.0 + 1e-9);
    }

    #[test]
    fn both_backends_verify_the_small_constructions() {
        let executor = Executor::new();
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            verify_constructions_on(&executor, backend, 3).unwrap();
        }
    }

    #[test]
    fn density_backend_refuses_infeasible_widths_with_a_typed_error() {
        // 8 qutrits → 3^16 ≈ 43M entries (~690 MB per ρ): the job builder
        // refuses (formerly a panic in this crate).
        let err = figure11_job(
            BackendKind::DensityMatrix,
            Construction::Qutrit,
            &qudit_noise::models::sc(),
            7,
            1,
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("density-matrix"), "{err}");
    }

    #[test]
    fn table_reference_fidelity_is_exact_on_the_density_backend() {
        let executor = Executor::new();
        let est = table_reference_fidelity(
            &executor,
            BackendKind::DensityMatrix,
            &qudit_noise::models::sc(),
            3,
            3,
            2019,
        )
        .unwrap();
        assert!(est.mean > 0.9 && est.mean < 1.0);
        // Three exact per-input fidelities, deterministic for the seed.
        assert_eq!(est.trials, 3);
    }
}
