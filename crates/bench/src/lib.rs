//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin` regenerates one table or figure:
//!
//! | Binary   | Paper artefact |
//! |----------|----------------|
//! | `table1` | Table 1 — asymptotic comparison of decompositions |
//! | `table2` | Table 2 — superconducting noise models |
//! | `table3` | Table 3 — trapped-ion noise models |
//! | `fig9`   | Figure 9 — circuit depth vs number of controls |
//! | `fig10`  | Figure 10 — two-qudit gate count vs number of controls |
//! | `fig11`  | Figure 11 — mean fidelity per (circuit, noise model) pair |
//!
//! The Criterion benches in `benches/` time the underlying simulator and
//! constructions and exercise the same code paths at reduced sizes.

use qudit_circuit::Circuit;
use qudit_noise::{
    simulate_fidelity, FidelityEstimate, GateExpansion, InputState, NoiseModel, TrajectoryConfig,
};
use qutrit_toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::cost::Construction;
use qutrit_toffoli::gen_toffoli::n_controlled_x;

/// Builds the benchmark circuit for a construction and control count.
///
/// The qutrit construction is built over a `d = 3` register; the qubit
/// constructions over `d = 2`, matching how the paper simulates them.
///
/// # Panics
///
/// Panics if the construction has no circuit implementation (Wang/Lanyon) or
/// construction fails.
pub fn benchmark_circuit(construction: Construction, n_controls: usize) -> Circuit {
    match construction {
        Construction::Qutrit => n_controlled_x(n_controls).expect("qutrit construction"),
        Construction::Qubit | Construction::Barenco => {
            qubit_no_ancilla(n_controls, 2).expect("qubit construction")
        }
        Construction::QubitAncilla => {
            qubit_one_dirty_ancilla(n_controls, 2).expect("qubit+ancilla construction")
        }
        Construction::He => {
            qutrit_toffoli::baselines::he_log_depth(n_controls, 2).expect("he construction")
        }
        Construction::Wang | Construction::Lanyon => {
            panic!("{construction:?} is analytic-only; no circuit to build")
        }
    }
}

/// The (circuit, noise-model) pairs of Figure 11: the superconducting models
/// are paired with all three circuits, `TI_QUBIT` with the two qubit
/// circuits, and the two trapped-ion qutrit models with the qutrit circuit —
/// 16 bars in total.
pub fn figure11_pairs() -> Vec<(Construction, NoiseModel)> {
    use qudit_noise::models;
    let mut pairs = Vec::new();
    for model in models::superconducting_models() {
        for construction in Construction::benchmarked() {
            pairs.push((construction, model.clone()));
        }
    }
    pairs.push((Construction::Qubit, models::ti_qubit()));
    pairs.push((Construction::QubitAncilla, models::ti_qubit()));
    pairs.push((Construction::Qutrit, models::bare_qutrit()));
    pairs.push((Construction::Qutrit, models::dressed_qutrit()));
    pairs
}

/// Runs the Figure 11 fidelity estimate for one (construction, model) pair.
///
/// # Panics
///
/// Panics if the simulation fails (unphysical model parameters).
pub fn figure11_fidelity(
    construction: Construction,
    model: &NoiseModel,
    n_controls: usize,
    trials: usize,
    seed: u64,
) -> FidelityEstimate {
    let circuit = benchmark_circuit(construction, n_controls);
    let config = TrajectoryConfig {
        trials,
        seed,
        expansion: GateExpansion::DiWei,
        input: InputState::RandomQubitSubspace,
    };
    simulate_fidelity(&circuit, model, &config).expect("trajectory simulation")
}

/// Formats a fidelity as a percentage string like the paper's figure labels.
pub fn percent(f: f64) -> String {
    format!("{:.2}%", 100.0 * f)
}

/// Parses `--key value` style arguments from a simple argument list.
pub fn parse_flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a `--key value` flag as a number, with a default.
pub fn parse_flag_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    parse_flag(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_has_sixteen_bars() {
        assert_eq!(figure11_pairs().len(), 16);
    }

    #[test]
    fn benchmark_circuits_have_expected_widths() {
        assert_eq!(benchmark_circuit(Construction::Qutrit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::Qubit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::QubitAncilla, 5).width(), 7);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--controls", "9", "--trials", "40"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_flag_or(&args, "--controls", 5usize), 9);
        assert_eq!(parse_flag_or(&args, "--trials", 100usize), 40);
        assert_eq!(parse_flag_or(&args, "--seed", 7u64), 7);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.947), "94.70%");
    }

    #[test]
    fn small_fidelity_run_is_sane() {
        let est = figure11_fidelity(
            Construction::Qutrit,
            &qudit_noise::models::dressed_qutrit(),
            3,
            5,
            1,
        );
        assert!(est.mean > 0.8 && est.mean <= 1.0 + 1e-9);
    }
}
