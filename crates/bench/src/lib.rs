//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin` regenerates one table or figure:
//!
//! | Binary   | Paper artefact |
//! |----------|----------------|
//! | `table1` | Table 1 — asymptotic comparison of decompositions |
//! | `table2` | Table 2 — superconducting noise models |
//! | `table3` | Table 3 — trapped-ion noise models |
//! | `fig9`   | Figure 9 — circuit depth vs number of controls |
//! | `fig10`  | Figure 10 — two-qudit gate count vs number of controls |
//! | `fig11`  | Figure 11 — mean fidelity per (circuit, noise model) pair |
//!
//! The Criterion benches in `benches/` time the underlying simulator and
//! constructions and exercise the same code paths at reduced sizes.

use qudit_circuit::Circuit;
use qudit_noise::{
    BackendKind, FidelityEstimate, GateExpansion, InputState, NoiseModel, TrajectoryConfig,
};
use qutrit_toffoli::baselines::{qubit_no_ancilla, qubit_one_dirty_ancilla};
use qutrit_toffoli::cost::Construction;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::verify::verify_n_controlled_x_backend;

/// Builds the benchmark circuit for a construction and control count.
///
/// The qutrit construction is built over a `d = 3` register; the qubit
/// constructions over `d = 2`, matching how the paper simulates them.
///
/// # Panics
///
/// Panics if the construction has no circuit implementation (Wang/Lanyon) or
/// construction fails.
pub fn benchmark_circuit(construction: Construction, n_controls: usize) -> Circuit {
    match construction {
        Construction::Qutrit => n_controlled_x(n_controls).expect("qutrit construction"),
        Construction::Qubit | Construction::Barenco => {
            qubit_no_ancilla(n_controls, 2).expect("qubit construction")
        }
        Construction::QubitAncilla => {
            qubit_one_dirty_ancilla(n_controls, 2).expect("qubit+ancilla construction")
        }
        Construction::He => {
            qutrit_toffoli::baselines::he_log_depth(n_controls, 2).expect("he construction")
        }
        Construction::Wang | Construction::Lanyon => {
            panic!("{construction:?} is analytic-only; no circuit to build")
        }
    }
}

/// The (circuit, noise-model) pairs of Figure 11: the superconducting models
/// are paired with all three circuits, `TI_QUBIT` with the two qubit
/// circuits, and the two trapped-ion qutrit models with the qutrit circuit —
/// 16 bars in total.
pub fn figure11_pairs() -> Vec<(Construction, NoiseModel)> {
    use qudit_noise::models;
    let mut pairs = Vec::new();
    for model in models::superconducting_models() {
        for construction in Construction::benchmarked() {
            pairs.push((construction, model.clone()));
        }
    }
    pairs.push((Construction::Qubit, models::ti_qubit()));
    pairs.push((Construction::QubitAncilla, models::ti_qubit()));
    pairs.push((Construction::Qutrit, models::bare_qutrit()));
    pairs.push((Construction::Qutrit, models::dressed_qutrit()));
    pairs
}

/// Runs the Figure 11 fidelity estimate for one (construction, model) pair
/// on the trajectory backend.
///
/// # Panics
///
/// Panics if the simulation fails (unphysical model parameters).
pub fn figure11_fidelity(
    construction: Construction,
    model: &NoiseModel,
    n_controls: usize,
    trials: usize,
    seed: u64,
) -> FidelityEstimate {
    figure11_fidelity_on(
        BackendKind::Trajectory,
        construction,
        model,
        n_controls,
        trials,
        seed,
    )
}

/// Runs the Figure 11 fidelity estimate for one (construction, model) pair
/// on the selected backend. The density-matrix backend returns exact
/// per-input fidelities (averaged over the same seeded input draws the
/// trajectory backend would use), so its `2σ` column reflects input
/// variation only.
///
/// # Panics
///
/// Panics if the simulation fails (unphysical model parameters).
pub fn figure11_fidelity_on(
    backend: BackendKind,
    construction: Construction,
    model: &NoiseModel,
    n_controls: usize,
    trials: usize,
    seed: u64,
) -> FidelityEstimate {
    let circuit = benchmark_circuit(construction, n_controls);
    if backend == BackendKind::DensityMatrix {
        ensure_density_feasible(&circuit);
    }
    let config = TrajectoryConfig {
        trials,
        seed,
        expansion: GateExpansion::DiWei,
        input: InputState::RandomQubitSubspace,
    };
    backend
        .instantiate()
        .fidelity(&circuit, model, &config)
        .expect("fidelity simulation")
}

/// The largest density matrix the bench binaries will allocate per run:
/// `3^14` entries (7 qutrits, ~76 MB). Beyond this, random-input averaging
/// fans one ρ out per rayon worker and a laptop run degrades into swapping
/// or an OOM kill, so the harness refuses loudly instead.
const DENSITY_MAX_ENTRIES: u128 = 4_782_969; // 3^14

/// Panics with an actionable message when the exact backend would need an
/// infeasibly large density matrix for this circuit.
///
/// # Panics
///
/// Panics if `dim^(2·width)` exceeds [`DENSITY_MAX_ENTRIES`].
fn ensure_density_feasible(circuit: &Circuit) {
    // checked_pow: an overflowing width is by definition infeasible, and
    // wrapping must not let it sneak past the threshold in release builds.
    let entries = (circuit.dim() as u128).checked_pow(2 * circuit.width() as u32);
    assert!(
        entries.is_some_and(|e| e <= DENSITY_MAX_ENTRIES),
        "the density-matrix backend would need {} entries (~{} MB) for this \
         {}-qudit d={} circuit; reduce --controls (≤ 7 qutrits is feasible) or use \
         --backend trajectory",
        entries.map_or("> u128::MAX".to_string(), |e| e.to_string()),
        entries.map_or("huge".to_string(), |e| (e.saturating_mul(16)
            / (1024 * 1024))
            .to_string()),
        circuit.width(),
        circuit.dim()
    );
}

/// Parses the `--backend` CLI switch shared by the table/figure binaries.
///
/// # Panics
///
/// Panics (with the accepted values) on an unrecognised backend name, so a
/// typo fails loudly instead of silently running the default engine.
pub fn backend_from_args(args: &[String], default: BackendKind) -> BackendKind {
    match parse_flag(args, "--backend") {
        None => default,
        Some(v) => BackendKind::from_flag(&v).unwrap_or_else(|| {
            panic!("unknown backend {v:?}; expected \"trajectory\" or \"density\"")
        }),
    }
}

/// The reference fidelity column for the table binaries: the mean fidelity
/// of the paper's Figure 4-style 2-controlled Toffoli (3 qudits, built at
/// the model-appropriate dimension) under `model`, on the selected backend.
///
/// # Panics
///
/// Panics if the simulation fails (unphysical model parameters).
pub fn table_reference_fidelity(
    backend: BackendKind,
    model: &NoiseModel,
    dim: usize,
    trials: usize,
    seed: u64,
) -> FidelityEstimate {
    let construction = if dim == 2 {
        Construction::Qubit
    } else {
        Construction::Qutrit
    };
    figure11_fidelity_on(backend, construction, model, 2, trials, seed)
}

/// Routes the paper's N-controlled-X verification through the selected
/// backend for every simulable construction, returning an error string on
/// the first counterexample. The figure binaries call this when `--backend`
/// is passed, so a backend that drifts from the constructions fails the
/// regeneration run.
///
/// # Panics
///
/// Panics if a construction cannot be built.
pub fn verify_constructions_on(backend: BackendKind, n_controls: usize) -> Result<(), String> {
    let engine = backend.instantiate();
    for construction in Construction::benchmarked() {
        let circuit = benchmark_circuit(construction, n_controls);
        match verify_n_controlled_x_backend(engine.as_ref(), &circuit, n_controls, n_controls) {
            Ok(None) => {}
            Ok(Some(cex)) => {
                return Err(format!(
                    "{} failed on {}: input {:?} gave {:?}, expected {:?}",
                    construction.name(),
                    backend.name(),
                    cex.input,
                    cex.actual,
                    cex.expected
                ))
            }
            Err(e) => return Err(format!("{} verification error: {e}", construction.name())),
        }
    }
    Ok(())
}

/// Formats a fidelity as a percentage string like the paper's figure labels.
pub fn percent(f: f64) -> String {
    format!("{:.2}%", 100.0 * f)
}

/// Parses `--key value` style arguments from a simple argument list.
pub fn parse_flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a `--key value` flag as a number, with a default.
pub fn parse_flag_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    parse_flag(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_has_sixteen_bars() {
        assert_eq!(figure11_pairs().len(), 16);
    }

    #[test]
    fn benchmark_circuits_have_expected_widths() {
        assert_eq!(benchmark_circuit(Construction::Qutrit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::Qubit, 5).width(), 6);
        assert_eq!(benchmark_circuit(Construction::QubitAncilla, 5).width(), 7);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--controls", "9", "--trials", "40"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_flag_or(&args, "--controls", 5usize), 9);
        assert_eq!(parse_flag_or(&args, "--trials", 100usize), 40);
        assert_eq!(parse_flag_or(&args, "--seed", 7u64), 7);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.947), "94.70%");
    }

    #[test]
    fn small_fidelity_run_is_sane() {
        let est = figure11_fidelity(
            Construction::Qutrit,
            &qudit_noise::models::dressed_qutrit(),
            3,
            5,
            1,
        );
        assert!(est.mean > 0.8 && est.mean <= 1.0 + 1e-9);
    }

    #[test]
    fn backend_flag_parsing_defaults_and_overrides() {
        let none: Vec<String> = Vec::new();
        assert_eq!(
            backend_from_args(&none, BackendKind::Trajectory),
            BackendKind::Trajectory
        );
        let args: Vec<String> = ["--backend", "density"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            backend_from_args(&args, BackendKind::Trajectory),
            BackendKind::DensityMatrix
        );
    }

    #[test]
    fn both_backends_verify_the_small_constructions() {
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            verify_constructions_on(backend, 3).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "density-matrix backend would need")]
    fn density_backend_refuses_infeasible_widths() {
        // 8 qutrits → 3^16 ≈ 43M entries (~690 MB per ρ): refuse loudly.
        figure11_fidelity_on(
            BackendKind::DensityMatrix,
            Construction::Qutrit,
            &qudit_noise::models::sc(),
            7,
            1,
            1,
        );
    }

    #[test]
    fn table_reference_fidelity_is_exact_on_the_density_backend() {
        let est = table_reference_fidelity(
            BackendKind::DensityMatrix,
            &qudit_noise::models::sc(),
            3,
            3,
            2019,
        );
        assert!(est.mean > 0.9 && est.mean < 1.0);
        // Three exact per-input fidelities, deterministic for the seed.
        assert_eq!(est.trials, 3);
    }
}
