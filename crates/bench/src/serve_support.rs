//! Shared plumbing for the service harness binaries (`chaos`, `loadgen`):
//! job payload construction and target resolution (an external server via
//! `--addr`, or a self-hosted in-process one).

use qudit_api::{BackendKind, InputState, JobSpec, NoiseModel};
use qudit_circuit::{Circuit, Control, Gate};
use qudit_server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::time::Duration;

/// A noise-free Figure-4 Toffoli job whose answer is exactly known:
/// input |1,1,0⟩ must come out |1,1,1⟩ with probability 1.
pub fn clean_job_json() -> String {
    let mut c = Circuit::new(3, 3);
    c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
        .expect("fig4 op");
    c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
        .expect("fig4 op");
    c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
        .expect("fig4 op");
    JobSpec::builder(c)
        .input(InputState::Basis(vec![1, 1, 0]))
        .build()
        .expect("fig4 spec")
        .to_json()
}

/// The request-body mix for the load generator: the clean Figure-4 job
/// plus two algorithm-library jobs (a 3-qutrit QFT and a 2-digit Draper
/// adder, both noise-free), so service throughput is measured over
/// heterogeneous circuit shapes instead of one hot compile.
pub fn mixed_job_jsons() -> Vec<String> {
    let qft_job = JobSpec::builder(qudit_algos::qft(3, 3).expect("qft circuit"))
        .input(InputState::Basis(vec![1, 0, 2]))
        .build()
        .expect("qft spec")
        .to_json();
    let adder_job = JobSpec::builder(qudit_algos::qft_adder(3, 2).expect("adder circuit"))
        .input(InputState::Basis(vec![0, 1, 0, 2]))
        .build()
        .expect("adder spec")
        .to_json();
    vec![clean_job_json(), qft_job, adder_job]
}

/// A noisy trajectory job heavy enough to outlive any short deadline.
pub fn heavy_job_json() -> String {
    let mut c = Circuit::new(3, 3);
    for _ in 0..20 {
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .expect("heavy op");
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .expect("heavy op");
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .expect("heavy op");
    }
    JobSpec::builder(c)
        .noise(NoiseModel {
            name: "BENCH".to_string(),
            p1: 1e-4,
            p2: 1e-4,
            t1: Some(1e-3),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        })
        .backend(BackendKind::Trajectory)
        .trials(500_000)
        .input(InputState::AllOnes)
        .build()
        .expect("heavy spec")
        .to_json()
}

/// The server a harness binary talks to: an externally spawned process
/// (`--addr`) or an in-process instance that is drained on `finish`.
pub enum Target {
    /// An already-running server, e.g. spawned by the CI job.
    External(SocketAddr),
    /// A self-hosted server owned by this process.
    InProcess(Server),
}

impl Target {
    /// Resolves `--addr HOST:PORT` if present; otherwise self-hosts with
    /// the given config (its `addr` is forced to an ephemeral port).
    ///
    /// # Panics
    ///
    /// Panics on unparseable flags or a failed in-process start.
    pub fn from_args(config: ServerConfig) -> Target {
        let mut addr = None;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--addr" => {
                    let raw = args.next().expect("--addr needs a value");
                    addr = Some(raw.parse().expect("--addr must be HOST:PORT"));
                }
                other => panic!("unknown flag {other} (only --addr is supported)"),
            }
        }
        Target::resolve(addr, config)
    }

    /// External target if `addr` is given, otherwise a self-hosted server
    /// on an ephemeral port.
    ///
    /// # Panics
    ///
    /// Panics if the in-process server fails to start.
    pub fn resolve(addr: Option<SocketAddr>, mut config: ServerConfig) -> Target {
        match addr {
            Some(addr) => Target::External(addr),
            None => {
                config.addr = "127.0.0.1:0".to_string();
                Target::InProcess(Server::start(config).expect("in-process server"))
            }
        }
    }

    /// The address requests should go to.
    pub fn addr(&self) -> SocketAddr {
        match self {
            Target::External(addr) => *addr,
            Target::InProcess(server) => server.addr(),
        }
    }

    /// Drains a self-hosted server; a no-op for external targets.
    pub fn finish(self) {
        if let Target::InProcess(server) = self {
            server.shutdown();
        }
    }
}

/// The error kind from a `{"error":{"kind":...}}` body, or `""`.
pub fn error_kind(body: &str) -> String {
    serde::json::parse(body)
        .ok()
        .and_then(|v| {
            v.get("error")?
                .get("kind")?
                .as_str()
                .ok()
                .map(str::to_string)
        })
        .unwrap_or_default()
}

/// Posts the clean job and checks the exact answer came back.
///
/// # Errors
///
/// Returns a description of whatever went wrong (transport, status, or a
/// wrong probability).
pub fn clean_probe(addr: SocketAddr) -> Result<(), String> {
    let body = clean_job_json();
    let resp = tiny_http::client::post(
        addr,
        "/v1/jobs",
        body.as_bytes(),
        &[],
        Duration::from_secs(60),
    )
    .map_err(|e| format!("transport: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "status {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let text = String::from_utf8_lossy(&resp.body);
    let result =
        qudit_api::ExecutionResult::from_json(&text).map_err(|e| format!("result JSON: {e}"))?;
    let states = result.states().map_err(|e| format!("states: {e}"))?;
    let p = states[0]
        .probability(&[1, 1, 1])
        .map_err(|e| format!("probability: {e}"))?;
    if (p - 1.0).abs() > 1e-12 {
        return Err(format!("wrong answer: p(111) = {p}"));
    }
    Ok(())
}
