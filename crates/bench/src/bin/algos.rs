//! Algorithm-library invariance harness: runs every `qudit_algos`
//! catalog instance through the façade at every pass level — including
//! `Physical` on a non-trivial line topology — and records the resource
//! counts and a noisy fidelity estimate per case.
//!
//! Two invariants are enforced with a nonzero exit code:
//!
//! * every catalog circuit executes successfully at every `PassLevel`
//!   (routing included), and
//! * the noisy trajectory estimate of each case stays within the
//!   cross-validation bound of the exact density-matrix value (the same
//!   3σ gate the `crossval` bin applies, on the catalog slice of the
//!   shared [`bench::crossval_cases`] registry).
//!
//! Writes `BENCH_algos.json` (echoed to stdout) with per-case resource
//! counts so future PRs can track generator drift. `--smoke` shrinks the
//! trial budget for CI.
//!
//! Usage: `algos [--trials N] [--seed N] [--sigmas S] [--out PATH] [--smoke]`

use bench::crossval_cases;
use qudit_algos::catalog;
use qudit_api::{CliArgs, Executor, InputState, JobSpec, PassLevel, ResourceReport, Topology};
use std::fmt::Write as _;

fn main() {
    let args = CliArgs::from_env();
    let mut trials: usize = args.flag_or("--trials", 400).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let sigmas: f64 = args.flag_or("--sigmas", 3.0).expect("--sigmas");
    let out: String = args
        .flag_or("--out", "BENCH_algos.json".to_string())
        .expect("--out");
    let smoke = args.has("--smoke");
    if smoke {
        trials = trials.min(80);
    }

    let executor = Executor::new();
    let mut failures = 0usize;
    let mut entries: Vec<String> = Vec::new();

    println!(
        "Algorithm-library invariance: {} cases, {} trials, seed {}, {}σ bound{}",
        catalog().len(),
        trials,
        seed,
        sigmas,
        if smoke { " [smoke]" } else { "" }
    );

    for case in catalog() {
        let circuit = case.circuit();
        let width = circuit.width();
        let report = ResourceReport::measure(&circuit);

        // Every pass level must execute the circuit, `Physical` twice:
        // all-to-all and routed onto a line topology (the non-trivial one —
        // every multi-qudit gate on non-adjacent sites needs SWAP chains).
        let levels: [(&str, PassLevel, Option<Topology>); 5] = [
            ("noise-preserving", PassLevel::NoisePreserving, None),
            ("physical", PassLevel::Physical, None),
            (
                "physical+line",
                PassLevel::Physical,
                Some(Topology::linear(width).expect("line topology")),
            ),
            ("physical-ideal", PassLevel::PhysicalIdeal, None),
            ("ideal", PassLevel::Ideal, None),
        ];
        for (label, level, topology) in levels {
            let mut builder = JobSpec::builder(circuit.clone()).level(level).seed(seed);
            if let Some(t) = topology {
                builder = builder.topology(t);
            }
            let spec = builder.build().unwrap_or_else(|e| {
                eprintln!("{}: invalid spec at {label}: {e}", case.name);
                std::process::exit(1);
            });
            if let Err(e) = executor.run(&spec) {
                eprintln!("{}: execution failed at {label}: {e}", case.name);
                failures += 1;
            }
        }

        // The crossval gate on the catalog slice of the shared registry.
        let (_, cv_circuit, model) = crossval_cases()
            .into_iter()
            .find(|(l, _, _)| l.starts_with(case.name))
            .unwrap_or_else(|| {
                eprintln!("{}: missing from the crossval registry", case.name);
                std::process::exit(1);
            });
        let spec = JobSpec::builder(cv_circuit)
            .noise(model)
            .trials(trials)
            .seed(seed)
            .input(InputState::AllOnes)
            .build()
            .expect("catalog crossval spec");
        let cv = executor.cross_validate(&spec, sigmas).unwrap_or_else(|e| {
            eprintln!("{}: cross-validation failed: {e}", case.name);
            std::process::exit(1);
        });
        let ok = cv.within_bounds();
        if !ok {
            failures += 1;
        }
        println!(
            "{:<24} width {:>2} ops {:>4} 2q {:>4} depth {:>4}  exact {:.6} est {:.6}  {}",
            case.name,
            width,
            report.total_ops(),
            report.two_qudit_gates(),
            report.depth(),
            cv.exact,
            cv.estimate.mean,
            if ok { "ok" } else { "FAIL" }
        );
        entries.push(format!(
            "    {{\"name\": \"{}\", \"dim\": {}, \"width\": {width}, \"ops\": {}, \
             \"two_qudit\": {}, \"depth\": {}, \"exact\": {:.6}, \"estimate\": {:.6}}}",
            case.name,
            case.dim,
            report.total_ops(),
            report.two_qudit_gates(),
            report.depth(),
            cv.exact,
            cv.estimate.mean,
        ));
    }

    let mut json = String::new();
    write!(
        json,
        "{{\n  \"bench\": \"algos\",\n  \"smoke\": {smoke},\n  \"trials\": {trials},\n  \
         \"seed\": {seed},\n  \"cases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    )
    .expect("format");
    print!("{json}");
    std::fs::write(&out, &json).expect("write BENCH_algos.json");

    if failures > 0 {
        eprintln!("{failures} algorithm case(s) failed");
        std::process::exit(1);
    }
    println!("all catalog cases execute at every level and cross-validate");
}
