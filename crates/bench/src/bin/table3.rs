//! Regenerates Table 3: trapped-ion ¹⁷¹Yb⁺ noise-model parameters.

use qudit_noise::models::trapped_ion_models;

fn main() {
    println!("Table 3: Noise models simulated for trapped ion devices");
    println!("{:<16} {:>10} {:>10}", "Noise Model", "p1", "p2");
    for m in trapped_ion_models() {
        // Table 3 quotes total single-/two-qudit gate error probabilities;
        // TI_QUBIT is a qubit (d = 2) model, the other two are qutrit models.
        let d = if m.name == "TI_QUBIT" { 2 } else { 3 };
        println!(
            "{:<16} {:>10.1e} {:>10.1e}",
            m.name,
            m.total_single_qudit_error(d),
            m.total_two_qudit_error(d)
        );
    }
    println!();
    println!(
        "(gate times: {} us single-qudit, {} us two-qudit)",
        trapped_ion_models()[0].gate_time_1q * 1e6,
        trapped_ion_models()[0].gate_time_2q * 1e6
    );
}
