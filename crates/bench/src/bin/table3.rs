//! Regenerates Table 3: trapped-ion ¹⁷¹Yb⁺ noise-model parameters, plus a
//! reference fidelity column computed through the selected simulation
//! backend (a 2-controlled Toffoli built at the model's dimension).
//!
//! Usage:
//! `cargo run --release -p bench --bin table3 [-- --backend density --trials 40 --seed 2019]`

use bench::table_reference_fidelity;
use qudit_api::{BackendKind, CliArgs, Executor};
use qudit_noise::models::trapped_ion_models;

fn main() {
    let args = CliArgs::from_env();
    let backend = args
        .backend_or(BackendKind::DensityMatrix)
        .expect("--backend");
    let trials: usize = args.flag_or("--trials", 40).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let executor = Executor::new();

    println!("Table 3: Noise models simulated for trapped ion devices");
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "Noise Model",
        "p1",
        "p2",
        format!("F({} bk)", backend.name())
    );
    for m in trapped_ion_models() {
        // Table 3 quotes total single-/two-qudit gate error probabilities;
        // TI_QUBIT is a qubit (d = 2) model, the other two are qutrit models.
        let d = if m.name == "TI_QUBIT" { 2 } else { 3 };
        let est =
            table_reference_fidelity(&executor, backend, &m, d, trials, seed).unwrap_or_else(|e| {
                eprintln!("{} failed: {e}", m.name);
                std::process::exit(1);
            });
        println!(
            "{:<16} {:>10.1e} {:>10.1e} {:>13.4}%",
            m.name,
            m.total_single_qudit_error(d),
            m.total_two_qudit_error(d),
            100.0 * est.mean
        );
    }
    println!();
    println!(
        "(gate times: {} us single-qudit, {} us two-qudit; fidelity column: \
         2-controlled Toffoli at the model's dimension, {} input draws, seed {})",
        trapped_ion_models()[0].gate_time_1q * 1e6,
        trapped_ion_models()[0].gate_time_2q * 1e6,
        trials,
        seed
    );
}
