//! Per-kernel microbenchmark: where does a gate-apply actually spend time?
//!
//! Two sections, both on the 12-qutrit register the headline
//! `perf_snapshot` workload uses:
//!
//! 1. **Workload breakdown** — every operation of the 11-control Toffoli
//!    circuit timed individually (op index, kernel class, run shape,
//!    ns/apply), so regressions can be pinned to a specific plan shape
//!    rather than the aggregate.
//! 2. **Kernel classes** — synthetic plans exercising each kernel path
//!    (permutation blocked/strided, diagonal, dense k=1/k=2 at several
//!    target positions) with the SIMD level both auto-detected and forced
//!    off, so the split-lane + AVX2 win is measured directly.
//!
//! Usage: `cargo run --release -p bench --bin kernels [-- --qutrits N]`

use qudit_api::Executor;
use qudit_circuit::passes::PassLevel;
use qudit_circuit::Gate;
use qudit_core::{gates, StateVector};
use qudit_sim::kernel::{simd_level, ApplyPlan, SimdLevel};
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use std::time::Instant;

/// Measures mean ns per `f()` call with a time-budgeted rep count.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let warmup = Instant::now();
    let mut warm = 0usize;
    while warmup.elapsed().as_millis() < 30 || warm == 0 {
        f();
        warm += 1;
    }
    let est = warmup.elapsed().as_secs_f64() / warm as f64;
    let reps = ((0.15 / est) as usize).clamp(3, 100_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn main() {
    let mut qutrits = 12usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--qutrits" {
            qutrits = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--qutrits N");
        }
    }
    let dim = 3usize;

    println!("SIMD level: {:?}", simd_level());

    // Section 1: the headline workload, op by op (plans built directly —
    // this bin is *the* kernel microbench, so per-op plan shapes are its
    // subject; whole-circuit replay still goes through the façade below).
    let circuit = n_controlled_x(qutrits - 1).expect("construction");
    let plans: Vec<ApplyPlan> = circuit
        .iter()
        .map(|op| ApplyPlan::for_operation(circuit.width(), op))
        .collect();
    let mut state = StateVector::zero_state(dim, qutrits).expect("state");
    println!(
        "\nworkload: n_controlled_x({}) on {} qutrits, {} ops",
        qutrits - 1,
        qutrits,
        plans.len()
    );
    println!(
        "{:>3} {:>12} {:>8} {:>10} {:>12}",
        "op", "class", "groups", "run", "ns/apply"
    );
    let mut total = 0.0f64;
    for (i, plan) in plans.iter().enumerate() {
        let ns = time_ns(|| {
            plan.apply(&mut state);
            std::hint::black_box(&state);
        });
        total += ns;
        println!(
            "{:>3} {:>12} {:>8} {:>10} {:>12.0}",
            i,
            format!("{:?}", plan.kernel_class()),
            plan.groups(),
            format!("{}x{}", plan.run_shape().0, plan.run_shape().1),
            ns
        );
    }
    println!(
        "sum over ops: {:.0} ns ({:.0} ns/gate-apply mean)",
        total,
        total / plans.len() as f64
    );

    // Whole-circuit replay through the façade: cache-blocked segments (and
    // permutation folding, when the run is all-classical) vs the per-op sum.
    let executor = Executor::new();
    let job = executor.compile_statevector(&circuit, PassLevel::Ideal);
    println!(
        "replay segments (ops, chunk amps): {:?}",
        job.replay_segments()
    );
    let replay = time_ns(|| {
        let input = StateVector::zero_state(dim, qutrits).expect("state");
        let out = job.run(input).expect("replay");
        std::hint::black_box(&out);
    });
    println!(
        "segmented replay: {:.0} ns total ({:.0} ns/gate-apply incl. input alloc)",
        replay,
        replay / job.op_count() as f64
    );

    // Section 2: synthetic kernel classes, auto SIMD vs forced scalar.
    println!("\nkernel classes on {} qutrits (sequential):", qutrits);
    println!("{:>28} {:>12} {:>12}", "plan", "auto ns", "scalar ns");
    let h = gates::qutrit::h3();
    let swap = Gate::swap(3);
    let clock = Gate::clock(3);
    let inc = Gate::increment(3);
    let mid = qutrits / 2;
    let cases: Vec<(String, ApplyPlan)> = vec![
        (
            "perm inc@0 (blocked)".into(),
            ApplyPlan::for_matrix(dim, qutrits, inc.matrix(), &[0]),
        ),
        (
            format!("perm inc@{} (strided)", qutrits - 1),
            ApplyPlan::for_matrix(dim, qutrits, inc.matrix(), &[qutrits - 1]),
        ),
        (
            "diag clock@0".into(),
            ApplyPlan::for_matrix(dim, qutrits, clock.matrix(), &[0]),
        ),
        (
            "dense k1 h@0".into(),
            ApplyPlan::for_matrix(dim, qutrits, &h, &[0]),
        ),
        (
            format!("dense k1 h@{mid}"),
            ApplyPlan::for_matrix(dim, qutrits, &h, &[mid]),
        ),
        (
            format!("dense k1 h@{}", qutrits - 1),
            ApplyPlan::for_matrix(dim, qutrits, &h, &[qutrits - 1]),
        ),
        (
            format!("dense k2 swap@0,{mid}"),
            ApplyPlan::for_matrix(dim, qutrits, swap.matrix(), &[0, mid]),
        ),
    ];
    for (name, plan) in &cases {
        let mut s = StateVector::zero_state(dim, qutrits).expect("state");
        let auto = time_ns(|| {
            plan.apply_forced_simd(&mut s, false, simd_level());
            std::hint::black_box(&s);
        });
        let scalar = time_ns(|| {
            plan.apply_forced_simd(&mut s, false, SimdLevel::Scalar);
            std::hint::black_box(&s);
        });
        println!("{name:>28} {auto:>12.0} {scalar:>12.0}");
    }
}
