//! Load generator for the qudit service.
//!
//! Hammers `POST /v1/jobs` with a mix of the clean Figure-4 job and two
//! algorithm-library jobs (3-qutrit QFT, 2-digit Draper adder) from
//! several client threads, verifies every response, and writes throughput and
//! latency percentiles to `BENCH_serve.json` (also echoed to stdout)
//! so future PRs can track the service's perf trajectory:
//!
//! ```json
//! {
//!   "bench": "serve",
//!   "workload": "POST /v1/jobs fig4/qft/qft-adder ideal trajectory",
//!   "threads": 4, "requests": 200, "errors": 0,
//!   "rps": 123.4,
//!   "latency_ms": {"p50": 1.2, "p99": 3.4, "max": 5.6}
//! }
//! ```
//!
//! Usage: `loadgen [--addr HOST:PORT] [--threads N] [--requests N] [--out PATH]`
//! (`--requests` is per thread; without `--addr` an in-process server with
//! the default production shape is self-hosted).

use bench::serve_support::{mixed_job_jsons, Target};
use qudit_server::ServerConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tiny_http::client;

fn main() {
    let mut threads = 4usize;
    let mut requests = 50usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut addr = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--threads" => threads = value("--threads").parse().expect("--threads"),
            "--requests" => requests = value("--requests").parse().expect("--requests"),
            "--out" => out = value("--out"),
            "--addr" => addr = Some(value("--addr").parse().expect("--addr must be HOST:PORT")),
            other => panic!("unknown flag {other}"),
        }
    }
    let target = Target::resolve(addr, ServerConfig::default());
    let addr = target.addr();
    let bodies = mixed_job_jsons();

    // Warm the compile cache on every body shape so steady-state
    // throughput is measured, not the one-time circuit compilations.
    for body in &bodies {
        let warm = client::post(
            addr,
            "/v1/jobs",
            body.as_bytes(),
            &[],
            Duration::from_secs(60),
        )
        .expect("warm-up request");
        assert_eq!(warm.status, 200, "warm-up failed");
    }

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests);
                let mut errors = 0usize;
                for i in 0..requests {
                    let sent = Instant::now();
                    match client::post(
                        addr,
                        "/v1/jobs",
                        bodies[i % bodies.len()].as_bytes(),
                        &[],
                        Duration::from_secs(60),
                    ) {
                        Ok(resp) if resp.status == 200 => latencies.push(sent.elapsed()),
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(threads * requests);
    let mut errors = 0usize;
    for handle in handles {
        let (thread_latencies, thread_errors) = handle.join().expect("client thread");
        latencies.extend(thread_latencies);
        errors += thread_errors;
    }
    let wall = start.elapsed();
    target.finish();

    latencies.sort();
    let total = threads * requests;
    let rps = latencies.len() as f64 / wall.as_secs_f64();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).saturating_sub(1);
        ms(latencies[idx.min(latencies.len() - 1)])
    };

    let mut json = String::new();
    write!(
        json,
        "{{\n  \"bench\": \"serve\",\n  \"workload\": \"POST /v1/jobs fig4/qft/qft-adder ideal trajectory\",\n  \
         \"threads\": {threads},\n  \"requests\": {total},\n  \"errors\": {errors},\n  \
         \"rps\": {rps:.1},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}\n}}\n",
        percentile(0.50),
        percentile(0.99),
        latencies.last().map_or(f64::NAN, |&d| ms(d)),
    )
    .expect("format");
    print!("{json}");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");

    assert_eq!(errors, 0, "load run saw {errors} failed request(s)");
}
