//! Pre/post pass-pipeline resource report for the paper constructions.
//!
//! Runs the compiler's `Ideal` pass pipeline (cancellation, single-qudit
//! fusion, depth repacking, kernel specialization) over each construction
//! and prints what the transformation bought: kernel invocations (total
//! ops), two-qudit gate count and depth before and after; then the same
//! table for the `Physical` lowering (Di & Wei blocks in the IR — the
//! goldens 85 two-qudit/depth 37 for nCX(15)) and for `PhysicalIdeal`
//! (optimization *across* decomposition boundaries). The noise-preserving
//! level is also run to demonstrate it is the identity transformation
//! (noisy fidelity semantics cannot drift).
//!
//! Usage: `cargo run --release -p bench --bin passes [-- --verbose]`

use qudit_circuit::passes::{compile, PassLevel};
use qudit_circuit::Circuit;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::grover::{grover_circuit, optimal_iterations};
use qutrit_toffoli::incrementer::incrementer;

fn cases() -> Vec<(String, Circuit)> {
    vec![
        (
            "fig4-toffoli (2 controls)".to_string(),
            n_controlled_x(2).expect("construction"),
        ),
        (
            "n-controlled-x (15 controls)".to_string(),
            n_controlled_x(15).expect("construction"),
        ),
        (
            "incrementer (8 bits)".to_string(),
            incrementer(8).expect("construction"),
        ),
        (
            "grover (4 qubits, optimal iters)".to_string(),
            grover_circuit(4, 11, optimal_iterations(4)).expect("construction"),
        ),
    ]
}

fn main() {
    let args = qudit_api::CliArgs::from_env();
    let verbose = args.has("--verbose");

    for level in [
        PassLevel::Ideal,
        PassLevel::Physical,
        PassLevel::PhysicalIdeal,
    ] {
        println!("Pass-pipeline resource report ({} level)", level.name());
        println!(
            "{:<34} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
            "construction", "ops pre", "ops post", "2q pre", "2q post", "d pre", "d post"
        );
        for (name, circuit) in cases() {
            let ir = compile(&circuit, level);
            let report = ir.report();
            println!(
                "{:<34} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
                name,
                report.pre.total_ops(),
                report.post.total_ops(),
                report.pre.two_qudit_gates(),
                report.post.two_qudit_gates(),
                report.pre.depth(),
                report.post.depth()
            );
            if verbose {
                print!("{report}");
            }
        }
        println!();
    }

    println!();
    println!("Noise-preserving level (must be the identity transformation):");
    let mut all_identity = true;
    for (name, circuit) in cases() {
        let ir = compile(&circuit, PassLevel::NoisePreserving);
        let identical = ir.circuit() == &circuit;
        all_identity &= identical;
        println!(
            "  {:<34} {}",
            name,
            if identical {
                "unchanged (bit-identical op list)"
            } else {
                "CHANGED — noise semantics violated!"
            }
        );
    }
    if !all_identity {
        eprintln!("noise-preserving pipeline modified a circuit");
        std::process::exit(1);
    }
}
