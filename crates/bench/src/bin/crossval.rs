//! Backend cross-validation harness: checks that trajectory Monte Carlo
//! fidelity estimates converge to the exact density-matrix backend's values
//! on a fixed seed set, for d ∈ {2, 3} circuits up to 6 qudits, every
//! noise model in the paper, the optional leakage/over-rotation/crosstalk
//! channels, and every algorithm-library catalog instance. The case list is
//! the shared [`bench::crossval_cases`] registry — this bin maintains no
//! case table of its own.
//!
//! Every case runs **twice**: once through the default physical lowering
//! (`PassLevel::Physical` — the Di & Wei blocks simulated in the IR) and
//! once through the logical-granularity ablation accounting
//! (`PassLevel::NoisePreserving` — one error per unlowered operation).
//! Each run asserts `|F_trajectory − F_exact| ≤ σ_mult × max(binomial σ at
//! F_exact, sample std error) + 1e-6`. The inputs are fixed (all-|1⟩) and
//! the seeds pinned, so a pass is deterministic — CI runs this binary and a
//! drift in either backend or either accounting fails the build with a
//! nonzero exit code. (The physical-vs-virtual 1e-9 differential that
//! retired the PR 4 shim lives in `tests/decomposition_diff.rs`, against a
//! test-local oracle.)
//!
//! Both legs of every case go through one shared [`Executor`]
//! ([`Executor::cross_validate`]), so each distinct (circuit, level) pair
//! compiles exactly once for the whole run.
//!
//! Usage:
//! `cargo run --release -p bench --bin crossval [-- --trials 400 --seed 2019 --sigmas 3]`

use bench::crossval_cases;
use qudit_api::{CliArgs, Executor, InputState, JobSpec, PassLevel};

fn main() {
    let args = CliArgs::from_env();
    let trials: usize = args.flag_or("--trials", 400).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let sigmas: f64 = args.flag_or("--sigmas", 3.0).expect("--sigmas");

    // The fixed case set comes from the shared registry
    // ([`bench::crossval_cases`]): paper models on the Figure-4 Toffoli,
    // larger d ∈ {2, 3} instances, the optional channels, and every
    // algorithm-library catalog instance.
    let cases = crossval_cases();

    println!(
        "Backend cross-validation: {} cases × 2 accountings, {} trials, seed {}, {}σ bound",
        cases.len(),
        trials,
        seed,
        sigmas
    );
    println!(
        "{:<38} {:>7} {:>10} {:>10} {:>10} {:>10}  status",
        "case", "qudits", "exact", "estimate", "|diff|", "bound"
    );

    let executor = Executor::new();
    let mut failures = 0usize;
    for (label, circuit, model) in &cases {
        for (accounting, level) in [
            ("physical", PassLevel::Physical),
            ("logical", PassLevel::NoisePreserving),
        ] {
            let spec = JobSpec::builder(circuit.clone())
                .noise(model.clone())
                .level(level)
                .trials(trials)
                .seed(seed)
                .input(InputState::AllOnes)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("{label} [{accounting}]: invalid spec: {e}");
                    std::process::exit(1);
                });
            let cv = executor.cross_validate(&spec, sigmas).unwrap_or_else(|e| {
                eprintln!("{label} [{accounting}]: cross-validation failed: {e}");
                std::process::exit(1);
            });
            let ok = cv.within_bounds();
            if !ok {
                failures += 1;
            }
            println!(
                "{:<38} {:>7} {:>10.6} {:>10.6} {:>10.2e} {:>10.2e}  {}",
                format!("{label} [{accounting}]"),
                circuit.width(),
                cv.exact,
                cv.estimate.mean,
                cv.deviation(),
                cv.tolerance,
                if ok { "ok" } else { "FAIL" }
            );
        }
    }

    if failures > 0 {
        eprintln!("{failures} cross-validation case(s) exceeded the bound");
        std::process::exit(1);
    }
    println!("all cases within bounds (physical and logical accountings)");
}
