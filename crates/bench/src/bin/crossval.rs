//! Backend cross-validation harness: checks that trajectory Monte Carlo
//! fidelity estimates converge to the exact density-matrix backend's values
//! on a fixed seed set, for d ∈ {2, 3} circuits up to 6 qudits and every
//! noise model in the paper.
//!
//! Every case runs **twice**: once through the default physical lowering
//! (`PassLevel::Physical` — the Di & Wei blocks simulated in the IR) and
//! once through the deprecated virtual-expansion shim. Each run asserts
//! `|F_trajectory − F_exact| ≤ σ_mult × max(binomial σ at F_exact, sample
//! std error) + 1e-6`, and on top the two *exact* values are pinned against
//! each other at ≤ 1e-9 — the differential gate proving the lowering did
//! not change the paper's accounting. The inputs are fixed (all-|1⟩) and
//! the seeds pinned, so a pass is deterministic — CI runs this binary and a
//! drift in either backend or either accounting fails the build with a
//! nonzero exit code.
//!
//! Usage:
//! `cargo run --release -p bench --bin crossval [-- --trials 400 --seed 2019 --sigmas 3]`

use bench::{benchmark_circuit, parse_flag_or};
use qudit_circuit::Circuit;
use qudit_noise::{
    cross_validate, models, DensityNoiseSimulator, GateExpansion, InputState, TrajectoryConfig,
};
use qutrit_toffoli::cost::Construction;

/// The physical-vs-virtual exact-fidelity agreement bound.
const DIFF_TOL: f64 = 1e-9;

fn fig4_toffoli() -> Circuit {
    benchmark_circuit(Construction::Qutrit, 2)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = parse_flag_or(&args, "--trials", 400);
    let seed: u64 = parse_flag_or(&args, "--seed", 2019);
    let sigmas: f64 = parse_flag_or(&args, "--sigmas", 3.0);

    // The fixed case set: every paper noise model on the 3-qutrit Figure 4
    // Toffoli, plus larger d ∈ {2, 3} instances (up to 6 qudits) on
    // representative models.
    let mut cases: Vec<(String, Circuit, qudit_noise::NoiseModel)> = Vec::new();
    for model in models::all_models() {
        cases.push((
            format!("fig4-toffoli/{}", model.name),
            fig4_toffoli(),
            model,
        ));
    }
    for (label, construction, controls) in [
        ("qutrit-5q", Construction::Qutrit, 4),
        ("qutrit-6q", Construction::Qutrit, 5),
        ("qubit-5q", Construction::Qubit, 4),
        ("qubit-6q", Construction::Qubit, 5),
    ] {
        let model = models::sc_t1_gates();
        cases.push((
            format!("{label}/{}", model.name),
            benchmark_circuit(construction, controls),
            model,
        ));
    }

    println!(
        "Backend cross-validation: {} cases × 2 accountings, {} trials, seed {}, {}σ bound",
        cases.len(),
        trials,
        seed,
        sigmas
    );
    println!(
        "{:<38} {:>7} {:>10} {:>10} {:>10} {:>10}  status",
        "case", "qudits", "exact", "estimate", "|diff|", "bound"
    );

    let mut failures = 0usize;
    for (label, circuit, model) in &cases {
        let mut exact_by_accounting: Vec<f64> = Vec::new();
        for accounting in ["physical", "virtual"] {
            // The default `DiWei` config routes both backends through the
            // Physical lowering; the virtual run goes through the
            // deprecated shim explicitly (Di & Wei synthetic sites).
            let cv = if accounting == "physical" {
                let config = TrajectoryConfig {
                    trials,
                    seed,
                    expansion: GateExpansion::DiWei,
                    input: InputState::AllOnes,
                };
                cross_validate(circuit, model, &config, sigmas).expect("cross-validation run")
            } else {
                cross_validate_virtual(circuit, model, trials, seed, sigmas)
            };
            exact_by_accounting.push(cv.exact);
            let ok = cv.within_bounds();
            if !ok {
                failures += 1;
            }
            println!(
                "{:<38} {:>7} {:>10.6} {:>10.6} {:>10.2e} {:>10.2e}  {}",
                format!("{label} [{accounting}]"),
                circuit.width(),
                cv.exact,
                cv.estimate.mean,
                cv.deviation(),
                cv.tolerance,
                if ok { "ok" } else { "FAIL" }
            );
        }
        // The differential gate: physical and virtual exact values agree.
        let diff = (exact_by_accounting[0] - exact_by_accounting[1]).abs();
        if diff > DIFF_TOL {
            failures += 1;
            println!(
                "{:<38} physical-vs-virtual exact diff {:.2e} exceeds {:.0e}  FAIL",
                label, diff, DIFF_TOL
            );
        }
    }

    if failures > 0 {
        eprintln!("{failures} cross-validation case(s) exceeded the bound");
        std::process::exit(1);
    }
    println!("all cases within bounds (incl. physical-vs-virtual ≤ 1e-9)");
}

/// Cross-validates the deprecated virtual Di & Wei accounting: exact and
/// trajectory both built through `with_virtual_expansion`, same bound as
/// [`cross_validate`].
fn cross_validate_virtual(
    circuit: &Circuit,
    model: &qudit_noise::NoiseModel,
    trials: usize,
    seed: u64,
    sigmas: f64,
) -> qudit_noise::CrossValidation {
    let config = TrajectoryConfig {
        trials,
        seed,
        expansion: GateExpansion::DiWei,
        input: InputState::AllOnes,
    };
    let exact = DensityNoiseSimulator::with_virtual_expansion(circuit, model, GateExpansion::DiWei)
        .expect("virtual exact simulator")
        .run(&config)
        .expect("virtual exact run");
    let estimate = qudit_noise::TrajectorySimulator::with_virtual_expansion(
        circuit,
        model,
        GateExpansion::DiWei,
    )
    .expect("virtual trajectory simulator")
    .run(&config)
    .expect("virtual trajectory run");
    qudit_noise::CrossValidation::from_runs(exact, estimate, sigmas)
}
