//! Regenerates Figure 10: two-qudit gate count versus number of controls for
//! the QUBIT, QUBIT+ANCILLA and QUTRIT constructions.
//!
//! Usage: `cargo run --release -p bench --bin fig10 [-- --max 200 --step 25]`

use bench::{benchmark_circuit, verify_constructions_on};
use qudit_api::{BackendKind, CliArgs, Executor};
use qudit_circuit::ResourceReport;
use qutrit_toffoli::cost::{paper_two_qudit_gate_model, Construction};

fn main() {
    let args = CliArgs::from_env();
    let max: usize = args.flag_or("--max", 200).expect("--max");
    let step: usize = args.flag_or("--step", 25).expect("--step");
    let measure_cap: usize = args.flag_or("--measure-cap", 200).expect("--measure-cap");
    let backend = args.backend_or(BackendKind::Trajectory).expect("--backend");

    // The gate counts below are structural, but the constructions they
    // measure are first re-verified end-to-end through the selected backend.
    match verify_constructions_on(&Executor::new(), backend, 3) {
        Ok(()) => println!("(constructions verified on the {} backend)", backend.name()),
        Err(e) => {
            eprintln!("construction verification failed: {e}");
            std::process::exit(1);
        }
    }

    println!("Figure 10: two-qudit gate counts for the N-controlled Generalized Toffoli");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "N",
        "QUBIT(model)",
        "QUBIT(meas)",
        "+ANC(model)",
        "+ANC(meas)",
        "QUTRIT(model)",
        "QUTRIT(meas)"
    );
    let mut n = step;
    while n <= max {
        let mut row = format!("{n:>6}");
        for construction in [
            Construction::Qubit,
            Construction::QubitAncilla,
            Construction::Qutrit,
        ] {
            let model = paper_two_qudit_gate_model(construction, n);
            let measured = if n <= measure_cap {
                let c = benchmark_circuit(construction, n);
                // Measured on the *physically lowered* circuit (Di & Wei
                // blocks in the IR), not inferred from per-arity weights.
                ResourceReport::measure_physical(&c)
                    .two_qudit_gates()
                    .to_string()
            } else {
                "-".to_string()
            };
            row.push_str(&format!(" {model:>14.0} {measured:>14}"));
        }
        println!("{row}");
        n += step;
    }
    println!();
    println!("model: paper's fitted constants (~397N, ~48N, ~6N)");
    println!("meas:  two-qudit gates of our constructions (Di & Wei expansion)");
    let ratio = paper_two_qudit_gate_model(Construction::Qubit, 100)
        / paper_two_qudit_gate_model(Construction::Qutrit, 100);
    println!("QUBIT / QUTRIT linearity-constant ratio: {ratio:.0}x (paper quotes ~70x)");
}
