//! Fault-injection client for the qudit service.
//!
//! Fires every fault class from the failure taxonomy at a server —
//! protocol abuse, malformed payloads, invalid specs, expiring
//! deadlines, mid-response disconnects, a deliberate in-job panic, and
//! an overload burst — and after **every** fault posts a clean
//! Figure-4 job and checks the exact answer. A fault that takes the
//! server down, wedges a worker, or corrupts state shows up as a failed
//! probe.
//!
//! Usage:
//!
//! ```text
//! chaos [--addr HOST:PORT]
//! ```
//!
//! With `--addr` it targets an externally spawned `serve` process (the
//! CI job spawns one with `--workers 1 --queue-depth 2 --chaos-hooks`);
//! without it, it self-hosts an in-process server with the same shape.
//! Exits 0 only if every fault produced its expected typed error and
//! every probe passed.

use bench::serve_support::{clean_job_json, clean_probe, error_kind, heavy_job_json, Target};
use qudit_server::ServerConfig;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;
use tiny_http::client;

struct Outcome {
    name: &'static str,
    passed: bool,
    detail: String,
}

fn main() {
    let target = Target::from_args(ServerConfig {
        workers: 1,
        queue_depth: 2,
        chaos_hooks: true,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let addr = target.addr();
    let clean = clean_job_json();
    let heavy = heavy_job_json();
    let timeout = Duration::from_secs(30);
    let mut outcomes: Vec<Outcome> = Vec::new();

    let mut record = |name: &'static str, result: Result<String, String>| {
        let (passed, detail) = match result {
            Ok(detail) => (true, detail),
            Err(detail) => (false, detail),
        };
        // The PR's core invariant: the server must answer correctly
        // after every single fault.
        let (probe_ok, probe_detail) = match clean_probe(addr) {
            Ok(()) => (true, String::new()),
            Err(e) => (false, format!("; post-fault probe FAILED: {e}")),
        };
        println!(
            "{} {name}: {detail}{probe_detail}",
            if passed && probe_ok { "PASS" } else { "FAIL" }
        );
        outcomes.push(Outcome {
            name,
            passed: passed && probe_ok,
            detail,
        });
    };

    let expect = |status: u16,
                  kind: &str,
                  resp: std::io::Result<client::ClientResponse>|
     -> Result<String, String> {
        let resp = resp.map_err(|e| format!("transport: {e}"))?;
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        if resp.status != status {
            return Err(format!("expected {status}, got {}: {body}", resp.status));
        }
        if !kind.is_empty() && error_kind(&body) != kind {
            return Err(format!("expected kind {kind:?}, got body {body}"));
        }
        Ok(format!("{status} {kind}"))
    };

    // --- Payload faults ------------------------------------------------
    record(
        "malformed JSON",
        expect(
            400,
            "bad_request",
            client::post(addr, "/v1/jobs", b"{\"circuit\": [oops", &[], timeout),
        ),
    );
    record(
        "truncated JSON",
        expect(
            400,
            "bad_request",
            client::post(
                addr,
                "/v1/jobs",
                b"{\"circuit\":{\"dim\":3,\"width\":3,\"operations\":[",
                &[],
                timeout,
            ),
        ),
    );
    let invalid = clean.replace("\"trials\":100", "\"trials\":0");
    record(
        "invalid spec (zero trials)",
        expect(
            422,
            "invalid_spec",
            client::post(addr, "/v1/jobs", invalid.as_bytes(), &[], timeout),
        ),
    );

    // --- Protocol faults ----------------------------------------------
    record(
        "slow-loris (unfinished head)",
        expect(
            408,
            "",
            client::send_raw(addr, b"POST /v1/jobs HTT", timeout),
        ),
    );
    let oversized = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\nx",
        64 * 1024 * 1024
    );
    record(
        "oversized declared body",
        expect(
            413,
            "",
            client::send_raw(addr, oversized.as_bytes(), timeout),
        ),
    );
    record(
        "missing Content-Length",
        expect(
            411,
            "",
            client::send_raw(
                addr,
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
                timeout,
            ),
        ),
    );
    record("truncated body (half-close)", {
        TcpStream::connect(addr)
            .and_then(|mut stream| {
                stream.write_all(
                    b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"ci",
                )?;
                stream.shutdown(std::net::Shutdown::Write)?;
                client::read_from(&mut stream)
            })
            .map_err(|e| format!("transport: {e}"))
            .and_then(|resp| {
                if resp.status == 400 {
                    Ok("400".to_string())
                } else {
                    Err(format!("expected 400, got {}", resp.status))
                }
            })
    });

    // --- Routing faults -------------------------------------------------
    record(
        "unknown path",
        expect(404, "not_found", client::get(addr, "/v2/jobs", timeout)),
    );
    record(
        "wrong method",
        expect(
            405,
            "method_not_allowed",
            client::get(addr, "/v1/jobs", timeout),
        ),
    );

    // --- Deadline and panic faults --------------------------------------
    record(
        "deadline expires mid-simulation",
        expect(
            504,
            "deadline_exceeded",
            client::post(
                addr,
                "/v1/jobs",
                heavy.as_bytes(),
                &[("X-Deadline-Ms", "300")],
                timeout,
            ),
        ),
    );
    record("panicking job (chaos hook)", {
        match client::post(
            addr,
            "/v1/jobs",
            clean.as_bytes(),
            &[("X-Chaos", "panic")],
            timeout,
        ) {
            Err(e) => Err(format!("transport: {e}")),
            Ok(resp) if resp.status == 500 => Ok("500 internal_panic".to_string()),
            // A production server (hooks disabled) must treat the header
            // as inert and answer normally.
            Ok(resp) if resp.status == 200 => Ok("200 (hooks disabled, header inert)".to_string()),
            Ok(resp) => Err(format!(
                "expected 500 (hooks on) or 200 (hooks off), got {}",
                resp.status
            )),
        }
    });

    // --- Connection faults ----------------------------------------------
    record("mid-response disconnect", {
        let request = format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{clean}",
            clean.len()
        );
        client::send_and_abandon(addr, request.as_bytes(), timeout)
            .map(|()| {
                std::thread::sleep(Duration::from_millis(300));
                "connection dropped before response".to_string()
            })
            .map_err(|e| format!("transport: {e}"))
    });

    // --- Overload burst ---------------------------------------------------
    record("overload burst", {
        let handles: Vec<_> = (0..24)
            .map(|_| {
                let heavy = heavy.clone();
                std::thread::spawn(move || {
                    client::post(
                        addr,
                        "/v1/jobs",
                        heavy.as_bytes(),
                        &[("X-Deadline-Ms", "1000")],
                        Duration::from_secs(30),
                    )
                    .map(|r| r.status)
                    .unwrap_or(0)
                })
            })
            .collect();
        let mut rejected = 0usize;
        let mut other = Vec::new();
        for handle in handles {
            match handle.join().expect("burst thread") {
                429 => rejected += 1,
                504 | 200 => {}
                status => other.push(status),
            }
        }
        // Let the workers drain deadline-expired stragglers from the
        // queue before the post-fault probe needs a slot.
        std::thread::sleep(Duration::from_millis(500));
        if !other.is_empty() {
            Err(format!("unexpected statuses in burst: {other:?}"))
        } else if rejected == 0 {
            Err("no request saw 429 backpressure (queue too deep for this burst?)".to_string())
        } else {
            Ok(format!(
                "{rejected}/24 shed with 429, rest served or deadlined"
            ))
        }
    });

    target.finish();

    let failed: Vec<&Outcome> = outcomes.iter().filter(|o| !o.passed).collect();
    println!(
        "\nchaos: {}/{} fault classes handled cleanly",
        outcomes.len() - failed.len(),
        outcomes.len()
    );
    if !failed.is_empty() {
        for outcome in &failed {
            eprintln!("chaos: FAILED {}: {}", outcome.name, outcome.detail);
        }
        std::process::exit(1);
    }
}
