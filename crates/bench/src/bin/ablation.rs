//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. Noise-accounting granularity: charging each three-qutrit gate its
//!    Di & Wei expansion (6 two-qutrit + 7 single-qutrit error events) versus
//!    charging it a single two-qudit error (the optimistic "logical" model).
//! 2. Scheduling: ASAP moments (the paper's Cirq-style scheduler) versus a
//!    fully serial schedule, and the effect on depth (and therefore idle
//!    error exposure).
//! 3. Idle-error contribution: the SC model with and without T1 damping.
//!
//! Usage: `cargo run --release -p bench --bin ablation [-- --controls 7 --trials 40]`

use bench::{benchmark_circuit, parse_flag_or, percent};
use qudit_circuit::Schedule;
use qudit_noise::{
    models, simulate_fidelity, GateExpansion, InputState, NoiseModel, TrajectoryConfig,
};
use qutrit_toffoli::cost::Construction;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_controls: usize = parse_flag_or(&args, "--controls", 7);
    let trials: usize = parse_flag_or(&args, "--trials", 40);
    let seed: u64 = parse_flag_or(&args, "--seed", 2019);

    let circuit = benchmark_circuit(Construction::Qutrit, n_controls);

    println!("Ablation 1: three-qutrit gate noise accounting (QUTRIT, SC model)");
    for (label, expansion) in [
        ("Di & Wei expansion (paper)", GateExpansion::DiWei),
        ("single two-qudit charge", GateExpansion::Logical),
    ] {
        let config = TrajectoryConfig {
            trials,
            seed,
            expansion,
            input: InputState::RandomQubitSubspace,
        };
        let est = simulate_fidelity(&circuit, &models::sc(), &config).expect("simulation");
        println!("  {label:<30} fidelity {}", percent(est.mean));
    }

    println!();
    println!("Ablation 2: scheduling (QUTRIT construction depth)");
    let asap = Schedule::asap(&circuit).depth();
    let serial = Schedule::serial(&circuit).depth();
    println!("  ASAP moments (paper): depth {asap}");
    println!("  serial schedule:      depth {serial}");

    println!();
    println!("Ablation 3: idle (T1) errors on vs off (QUTRIT, SC gate errors)");
    let sc = models::sc();
    let no_idle = NoiseModel {
        name: "SC-no-idle".to_string(),
        t1: None,
        ..sc.clone()
    };
    for model in [&sc, &no_idle] {
        let config = TrajectoryConfig {
            trials,
            seed,
            expansion: GateExpansion::DiWei,
            input: InputState::RandomQubitSubspace,
        };
        let est = simulate_fidelity(&circuit, model, &config).expect("simulation");
        println!("  {:<14} fidelity {}", model.name, percent(est.mean));
    }
}
