//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. Noise-accounting granularity: simulating each three-qutrit gate as
//!    its lowered Di & Wei block (6 two-qutrit + 7 single-qutrit error
//!    events — the façade's `physical` pass level) versus charging it a
//!    single two-qudit error (the optimistic `logical` /
//!    `noise-preserving` level).
//! 2. Scheduling: ASAP moments (the paper's Cirq-style scheduler) versus a
//!    fully serial schedule, and the effect on depth (and therefore idle
//!    error exposure).
//! 3. Idle-error contribution: the SC model with and without T1 damping.
//!
//! Usage: `cargo run --release -p bench --bin ablation [-- --controls 7 --trials 40]`

use bench::{benchmark_circuit, percent};
use qudit_api::{CliArgs, Executor, InputState, JobSpec, NoiseModel, PassLevel};
use qudit_circuit::Schedule;
use qudit_noise::models;
use qutrit_toffoli::cost::Construction;

fn main() {
    let args = CliArgs::from_env();
    let n_controls: usize = args.flag_or("--controls", 7).expect("--controls");
    let trials: usize = args.flag_or("--trials", 40).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");

    let circuit = benchmark_circuit(Construction::Qutrit, n_controls);
    let executor = Executor::new();
    let fidelity = |model: &NoiseModel, level: PassLevel| {
        let spec = JobSpec::builder(circuit.clone())
            .noise(model.clone())
            .level(level)
            .trials(trials)
            .seed(seed)
            .input(InputState::RandomQubitSubspace)
            .build()
            .expect("valid ablation spec");
        executor
            .run(&spec)
            .and_then(|r| r.fidelity().cloned())
            .expect("simulation")
            .mean
    };

    println!("Ablation 1: three-qutrit gate noise accounting (QUTRIT, SC model)");
    for (label, level) in [
        ("Di & Wei lowering (paper)", PassLevel::Physical),
        ("single two-qudit charge", PassLevel::NoisePreserving),
    ] {
        let mean = fidelity(&models::sc(), level);
        println!("  {label:<30} fidelity {}", percent(mean));
    }

    println!();
    println!("Ablation 2: scheduling (QUTRIT construction depth)");
    let asap = Schedule::asap(&circuit).depth();
    let serial = Schedule::serial(&circuit).depth();
    println!("  ASAP moments (paper): depth {asap}");
    println!("  serial schedule:      depth {serial}");

    println!();
    println!("Ablation 3: idle (T1) errors on vs off (QUTRIT, SC gate errors)");
    let sc = models::sc();
    let no_idle = NoiseModel {
        name: "SC-no-idle".to_string(),
        t1: None,
        ..sc.clone()
    };
    for model in [&sc, &no_idle] {
        let mean = fidelity(model, PassLevel::Physical);
        println!("  {:<14} fidelity {}", model.name, percent(mean));
    }
}
