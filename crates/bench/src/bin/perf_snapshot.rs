//! Machine-readable performance snapshot of the gate-application engine.
//!
//! Runs the generalized-Toffoli statevector workload at 8, 10 and 12 qutrits
//! through the compiled plan kernels, measures mean wall time per gate
//! application, and writes `BENCH_sim.json` to the current directory (also
//! echoed to stdout) so future PRs can track the perf trajectory:
//!
//! ```json
//! {
//!   "bench": "gate_apply",
//!   "workload": "n_controlled_x statevector replay",
//!   "points": [
//!     {"qutrits": 8, "amps": 6561, "ops": 13, "reps": 64, "ns_per_gate_apply": 12345.6},
//!     ...
//!   ]
//! }
//! ```
//!
//! Usage: `cargo run --release -p bench --bin perf_snapshot`

use qudit_api::{Executor, PassLevel};
use qudit_core::StateVector;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use std::fmt::Write as _;
use std::time::Instant;

struct Point {
    qutrits: usize,
    amps: usize,
    ops: usize,
    reps: usize,
    ns_per_gate_apply: f64,
}

fn measure(executor: &Executor, qutrits: usize) -> Point {
    let circuit = n_controlled_x(qutrits - 1).expect("construction");
    // The production compile path: the façade's Ideal-level compile
    // (pass pipeline, then plan kernels). `ops` is the post-pass
    // kernel-invocation count (identical to the raw count for this
    // construction — the tree has nothing to fuse or cancel — but the
    // denominator is defined by what actually runs).
    let compiled = executor.compile_statevector(&circuit, PassLevel::Ideal);
    let dim = circuit.dim();
    let ops = compiled.op_count();
    let amps = dim.pow(qutrits as u32);

    let run_once = || {
        let state = StateVector::zero_state(dim, qutrits).expect("state");
        compiled.run(state).expect("shape matches by construction")
    };

    // Warm-up, then scale the repetition count to the register size so every
    // point gets a comparable measurement budget (~0.5 s).
    let warmup = Instant::now();
    let mut warm_reps = 0usize;
    while warmup.elapsed().as_millis() < 100 || warm_reps == 0 {
        std::hint::black_box(run_once());
        warm_reps += 1;
    }
    let est_per_rep = warmup.elapsed().as_secs_f64() / warm_reps as f64;
    let reps = ((0.5 / est_per_rep) as usize).clamp(4, 10_000);

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(run_once());
    }
    let elapsed = start.elapsed();
    let ns_per_gate_apply = elapsed.as_nanos() as f64 / (reps * ops) as f64;

    Point {
        qutrits,
        amps,
        ops,
        reps,
        ns_per_gate_apply,
    }
}

fn main() {
    let executor = Executor::new();
    let points: Vec<Point> = [8usize, 10, 12]
        .iter()
        .map(|&n| measure(&executor, n))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"gate_apply\",\n");
    json.push_str("  \"workload\": \"n_controlled_x statevector replay\",\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"qutrits\": {}, \"amps\": {}, \"ops\": {}, \"reps\": {}, \"ns_per_gate_apply\": {:.1}}}{}",
            p.qutrits, p.amps, p.ops, p.reps, p.ns_per_gate_apply, comma
        )
        .expect("string write");
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    print!("{json}");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    eprintln!("wrote BENCH_sim.json");
}
