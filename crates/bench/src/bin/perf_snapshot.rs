//! Machine-readable performance snapshot of the gate-application engine.
//!
//! Runs the generalized-Toffoli statevector workload at 8, 10 and 12 qutrits
//! through the compiled plan kernels, measures mean wall time per gate
//! application on both the sequential and the (possibly rayon-parallel)
//! default replay path, and writes `BENCH_sim.json` to the current directory
//! (also echoed to stdout) so future PRs can track the perf trajectory:
//!
//! ```json
//! {
//!   "bench": "gate_apply",
//!   "workload": "n_controlled_x statevector replay",
//!   "threads": 1,
//!   "points": [
//!     {"qutrits": 8, "amps": 6561, "ops": 13, "reps": 64,
//!      "ns_per_gate_apply": 12345.6,
//!      "ns_per_gate_apply_seq": 12345.6, "ns_per_gate_apply_par": 12345.6},
//!     ...
//!   ]
//! }
//! ```
//!
//! `ns_per_gate_apply` is the headline column (the default `run` path, which
//! parallelizes only when a plan's work estimate clears the threshold — on a
//! single-core host it equals the sequential column); the `_seq`/`_par`
//! columns pin both dispatch paths explicitly.
//!
//! Usage: `cargo run --release -p bench --bin perf_snapshot [-- --smoke]`
//!
//! `--smoke` shrinks the measurement budget ~10× for CI: same workload, same
//! JSON shape, noisier numbers — a liveness check, not a tracking datum.

use qudit_api::{Executor, PassLevel};
use qudit_core::StateVector;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use std::fmt::Write as _;
use std::time::Instant;

struct Budget {
    warmup_ms: u128,
    measure_secs: f64,
    max_reps: usize,
}

struct Point {
    qutrits: usize,
    amps: usize,
    ops: usize,
    reps: usize,
    ns_per_gate_apply: f64,
    ns_seq: f64,
    ns_par: f64,
}

/// Times `run_once` with a budget-scaled rep count; returns (ns/gate, reps).
fn time_path(budget: &Budget, ops: usize, mut run_once: impl FnMut()) -> (f64, usize) {
    let warmup = Instant::now();
    let mut warm_reps = 0usize;
    while warmup.elapsed().as_millis() < budget.warmup_ms || warm_reps == 0 {
        run_once();
        warm_reps += 1;
    }
    let est_per_rep = warmup.elapsed().as_secs_f64() / warm_reps as f64;
    let reps = ((budget.measure_secs / est_per_rep) as usize).clamp(4, budget.max_reps);

    let start = Instant::now();
    for _ in 0..reps {
        run_once();
    }
    let elapsed = start.elapsed();
    (elapsed.as_nanos() as f64 / (reps * ops) as f64, reps)
}

fn measure(executor: &Executor, qutrits: usize, budget: &Budget) -> Point {
    let circuit = n_controlled_x(qutrits - 1).expect("construction");
    // The production compile path: the façade's Ideal-level compile
    // (pass pipeline, then plan kernels). `ops` is the post-pass
    // kernel-invocation count (identical to the raw count for this
    // construction — the tree has nothing to fuse or cancel — but the
    // denominator is defined by what actually runs).
    let compiled = executor.compile_statevector(&circuit, PassLevel::Ideal);
    let dim = circuit.dim();
    let ops = compiled.op_count();
    let amps = dim.pow(qutrits as u32);

    let (ns_par, reps) = time_path(budget, ops, || {
        let state = StateVector::zero_state(dim, qutrits).expect("state");
        std::hint::black_box(compiled.run(state).expect("shape matches"));
    });
    let (ns_seq, _) = time_path(budget, ops, || {
        let state = StateVector::zero_state(dim, qutrits).expect("state");
        std::hint::black_box(compiled.run_sequential(state).expect("shape matches"));
    });

    Point {
        qutrits,
        amps,
        ops,
        reps,
        ns_per_gate_apply: ns_par,
        ns_seq,
        ns_par,
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let budget = if smoke {
        Budget {
            warmup_ms: 10,
            measure_secs: 0.05,
            max_reps: 1_000,
        }
    } else {
        Budget {
            warmup_ms: 100,
            measure_secs: 0.5,
            max_reps: 10_000,
        }
    };

    let executor = Executor::new();
    let points: Vec<Point> = [8usize, 10, 12]
        .iter()
        .map(|&n| measure(&executor, n, &budget))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"gate_apply\",\n");
    json.push_str("  \"workload\": \"n_controlled_x statevector replay\",\n");
    writeln!(json, "  \"threads\": {},", rayon::current_num_threads()).expect("string write");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"qutrits\": {}, \"amps\": {}, \"ops\": {}, \"reps\": {}, \"ns_per_gate_apply\": {:.1}, \"ns_per_gate_apply_seq\": {:.1}, \"ns_per_gate_apply_par\": {:.1}}}{}",
            p.qutrits, p.amps, p.ops, p.reps, p.ns_per_gate_apply, p.ns_seq, p.ns_par, comma
        )
        .expect("string write");
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    print!("{json}");
    if smoke {
        eprintln!("smoke run: not overwriting BENCH_sim.json");
    } else {
        std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
        eprintln!("wrote BENCH_sim.json");
    }
}
