//! Topology-routing sweep: compiles the paper's construction families for
//! every connectivity family (all-to-all, linear, ring, grid, heavy-hex
//! where the width fits) and records the routing overhead — inserted
//! qudit-SWAPs, routed two-qudit count and routed depth versus the
//! unrouted physical baseline — plus an exact-backend fidelity column
//! showing what the inserted SWAPs cost under the SC+T1+GATES model.
//!
//! Two hard gates run alongside the numbers (nonzero exit on failure):
//! all-to-all routing must insert zero SWAPs and leave the op list
//! untouched, and a routed noisy job must still cross-validate
//! (trajectory vs exact backend) within the standard 3σ bound.
//!
//! Writes `BENCH_route.json` (echoed to stdout) so future PRs can track
//! routing-overhead drift.
//!
//! Usage:
//! `cargo run --release -p bench --bin routing [-- --trials 200 --seed 2019 --out BENCH_route.json --smoke]`

use qudit_api::{BackendKind, CliArgs, Executor, InputState, JobSpec, Topology};
use qudit_circuit::passes::{compile, compile_with_topology, PassLevel};
use qudit_circuit::Circuit;
use qudit_noise::models;
use qutrit_toffoli::gen_toffoli::n_controlled_x;
use qutrit_toffoli::incrementer::incrementer;
use std::fmt::Write as _;

/// Every topology family that fits `width` sites (heavy-hex only at its
/// lattice sizes 12, 21, ...).
fn topologies_for(width: usize) -> Vec<Topology> {
    let mut out = vec![
        Topology::all_to_all(width).unwrap(),
        Topology::linear(width).unwrap(),
        Topology::ring(width).unwrap(),
    ];
    for (rows, cols) in [(2usize, 2usize), (2, 3), (3, 2), (2, 4), (3, 3), (2, 5)] {
        if rows * cols == width {
            out.push(Topology::grid(rows, cols).unwrap());
        }
    }
    if width >= 12 && (width - 12).is_multiple_of(9) {
        out.push(Topology::heavy_hex(1 + (width - 12) / 9).unwrap());
    }
    out
}

struct Row {
    case: String,
    topology: String,
    swaps: usize,
    two_qudit: usize,
    depth: usize,
    overhead: f64,
    fidelity: Option<f64>,
}

fn main() {
    let args = CliArgs::from_env();
    let trials: usize = args.flag_or("--trials", 200).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let out = args.flag("--out").unwrap_or("BENCH_route.json").to_string();
    let smoke = args.has("--smoke");

    // The construction families at widths where the exact backend stays
    // cheap; the fidelity column runs only up to 5 qutrits.
    let mut cases: Vec<(String, Circuit)> = vec![
        ("fig4-toffoli".into(), n_controlled_x(2).unwrap()),
        ("n-controlled-x(3)".into(), n_controlled_x(3).unwrap()),
        ("incrementer(4)".into(), incrementer(4).unwrap()),
        ("incrementer(5)".into(), incrementer(5).unwrap()),
    ];
    if !smoke {
        cases.push(("n-controlled-x(5)".into(), n_controlled_x(5).unwrap()));
        cases.push(("incrementer(8)".into(), incrementer(8).unwrap()));
        cases.push(("n-controlled-x(11)".into(), n_controlled_x(11).unwrap()));
    }

    let executor = Executor::new();
    let model = models::sc_t1_gates();
    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;

    println!(
        "{:<20} {:<12} {:>6} {:>9} {:>7} {:>9} {:>10}",
        "case", "topology", "SWAPs", "two-qudit", "depth", "overhead", "fidelity"
    );
    for (name, circuit) in &cases {
        let width = circuit.width();
        let baseline = compile(circuit, PassLevel::Physical);
        let base_two_qudit = baseline.report().post.two_qudit_gates();
        for topology in topologies_for(width) {
            let routed = compile_with_topology(circuit, PassLevel::Physical, Some(&topology));
            let costs = routed
                .report()
                .post
                .routed
                .expect("topology-compiled IR reports routed costs");
            if topology.is_all_to_all() {
                // Gate 1: all-to-all routing is an op-list identity.
                let identity = routed.routing().map(|s| s.is_identity()).unwrap_or(false);
                if costs.inserted_swaps != 0 || !identity {
                    eprintln!("{name}: all-to-all routing was not an identity");
                    failures += 1;
                }
            }
            // The exact-fidelity column: what the inserted SWAPs cost under
            // SC+T1+GATES. Bounded to widths the density backend handles
            // in one quick bench run.
            let fidelity = (width <= 5).then(|| {
                let spec = JobSpec::builder(circuit.clone())
                    .backend(BackendKind::DensityMatrix)
                    .noise(model.clone())
                    .trials(1)
                    .seed(seed)
                    .input(InputState::AllOnes)
                    .topology(topology.clone())
                    .build()
                    .expect("valid routed spec");
                executor
                    .run(&spec)
                    .expect("routed run")
                    .fidelity()
                    .expect("fidelity")
                    .mean
            });
            let overhead = costs.routed_two_qudit_gates as f64 / base_two_qudit.max(1) as f64;
            println!(
                "{:<20} {:<12} {:>6} {:>9} {:>7} {:>8.2}x {:>10}",
                name,
                topology.to_string(),
                costs.inserted_swaps,
                costs.routed_two_qudit_gates,
                costs.routed_depth,
                overhead,
                fidelity.map_or("-".into(), |f| format!("{f:.6}")),
            );
            rows.push(Row {
                case: name.clone(),
                topology: topology.to_string(),
                swaps: costs.inserted_swaps,
                two_qudit: costs.routed_two_qudit_gates,
                depth: costs.routed_depth,
                overhead,
                fidelity,
            });
        }
    }

    // Gate 2: a routed noisy job cross-validates within the 3σ bound.
    let crossval_spec = JobSpec::builder(n_controlled_x(3).unwrap())
        .noise(model.clone())
        .trials(trials)
        .seed(seed)
        .input(InputState::AllOnes)
        .topology(Topology::linear(4).unwrap())
        .build()
        .expect("valid crossval spec");
    let cv = executor
        .cross_validate(&crossval_spec, 3.0)
        .expect("routed cross-validation");
    println!(
        "routed crossval (nCX(3) on linear-4): trajectory {:.6} vs exact {:.6} (bound {:.2e}) {}",
        cv.estimate.mean,
        cv.exact,
        cv.tolerance,
        if cv.within_bounds() { "ok" } else { "FAIL" }
    );
    if !cv.within_bounds() {
        failures += 1;
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"routing\",").unwrap();
    writeln!(json, "  \"smoke\": {smoke},").unwrap();
    writeln!(
        json,
        "  \"model\": \"{}\", \"trials\": {trials}, \"seed\": {seed},",
        model.name
    )
    .unwrap();
    writeln!(
        json,
        "  \"crossval\": {{\"exact\": {:.9}, \"estimate\": {:.9}, \"within_bounds\": {}}},",
        cv.exact,
        cv.estimate.mean,
        cv.within_bounds()
    )
    .unwrap();
    writeln!(json, "  \"rows\": [").unwrap();
    for (i, row) in rows.iter().enumerate() {
        let fidelity = row
            .fidelity
            .map_or("null".to_string(), |f| format!("{f:.9}"));
        writeln!(
            json,
            "    {{\"case\": \"{}\", \"topology\": \"{}\", \"inserted_swaps\": {}, \
             \"routed_two_qudit\": {}, \"routed_depth\": {}, \"overhead\": {:.3}, \
             \"fidelity\": {}}}{}",
            row.case,
            row.topology,
            row.swaps,
            row.two_qudit,
            row.depth,
            row.overhead,
            fidelity,
            if i + 1 < rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));

    if failures > 0 {
        eprintln!("{failures} routing gate(s) failed");
        std::process::exit(1);
    }
    println!("routing gates passed ({} rows -> {out})", rows.len());
}
