//! Zipf-mix cache benchmark: adaptive precision + result cache vs. the
//! uncached fixed-trials baseline.
//!
//! Service traffic is rarely uniform — a few hot job specs dominate while
//! a long tail trickles. This bin models that with a Zipf-distributed
//! request stream over ~50 distinct noisy specs (a mix of the paper's
//! Figure-4 Toffoli, the 3-qutrit QFT and the 2-digit Draper adder from
//! the algorithm library, under every published noise model, across
//! seeds) and measures
//! *effective throughput* (requests answered per second) two ways in the
//! same process:
//!
//! * **baseline** — result cache disabled, every spec running its fixed
//!   trial budget: every repeat re-simulates from scratch.
//! * **cached** — the executor's result cache on and every spec under
//!   adaptive precision (`TargetSigma`, `max_trials` = the fixed budget):
//!   repeats are answered from the cache and the one real run per spec
//!   early-stops at the target error bar.
//!
//! Writes `BENCH_zipf.json` (echoed to stdout) so future PRs can track
//! the speedup, and asserts the ROADMAP target of ≥ 10× in full mode.
//!
//! Usage: `zipf [--requests N] [--specs N] [--trials N] [--sigma S]
//! [--seed N] [--out PATH] [--smoke]`. `--smoke` shrinks the workload for
//! CI and relaxes the 10× gate to sanity checks (hit-rate > 0, adaptive
//! trials ≤ the fixed budget) — short runs are too noisy to gate on a
//! wall-clock ratio.

use qudit_algos::{qft, qft_adder};
use qudit_api::{Executor, InputState, JobSpec, Precision};
use qudit_circuit::{Circuit, Control, Gate};
use qudit_noise::models;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's Figure-4 Toffoli-via-qutrits.
fn fig4_circuit() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
        .unwrap();
    c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c
}

/// The circuit shapes in the mix: the paper's Figure-4 Toffoli plus two
/// algorithm-library generators (a 3-qutrit QFT and a 2-digit Draper
/// adder), so the stream exercises heterogeneous compile and simulation
/// costs the way mixed service traffic does.
fn mix_circuit(i: usize) -> Circuit {
    match i % 3 {
        0 => fig4_circuit(),
        1 => qft(3, 3).expect("qft circuit"),
        _ => qft_adder(3, 2).expect("qft adder circuit"),
    }
}

/// The distinct job shapes the stream draws from: every paper noise model
/// crossed with the circuit mix and seeds until `count` specs exist.
/// `precision` is `None` for the fixed-trials baseline legs.
fn build_specs(count: usize, trials: usize, precision: Option<Precision>) -> Vec<JobSpec> {
    let noise_models = models::all_models();
    (0..count)
        .map(|i| {
            let model = noise_models[i % noise_models.len()].clone();
            let mut builder = JobSpec::builder(mix_circuit(i))
                .noise(model)
                .trials(trials)
                .seed(2019 + (i / noise_models.len()) as u64)
                .input(InputState::AllOnes);
            if let Some(p) = precision {
                builder = builder.precision(p);
            }
            builder.build().expect("bench spec")
        })
        .collect()
}

/// Samples a Zipf(s = 1.1) rank stream over `n` specs: rank `r` is drawn
/// with weight `1/r^1.1`, so the head of the catalogue dominates the way
/// hot service traffic does.
fn zipf_stream(n: usize, requests: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..requests)
        .map(|_| {
            let mut point = rng.next_f64() * total;
            for (idx, w) in weights.iter().enumerate() {
                point -= w;
                if point <= 0.0 {
                    return idx;
                }
            }
            n - 1
        })
        .collect()
}

/// Runs the request stream against one executor, returning (wall seconds,
/// total trials simulated).
fn drive(executor: &Executor, specs: &[JobSpec], stream: &[usize]) -> (f64, usize) {
    let start = Instant::now();
    let mut trials = 0usize;
    let mut seen = vec![false; specs.len()];
    for &idx in stream {
        let result = executor.run(&specs[idx]).expect("bench job");
        // Count simulated trials once per distinct spec — repeats are
        // either cache hits (cached leg) or identical re-runs (baseline,
        // where every repeat costs the same trials again).
        if !seen[idx] {
            seen[idx] = true;
            trials += result.trials_run().unwrap_or(0);
        }
    }
    (start.elapsed().as_secs_f64(), trials)
}

fn main() {
    // Defaults chosen so both levers engage: at 512 trials the σ floor
    // 3/n reaches 0.02 by ~150 trials, so adaptive runs early-stop well
    // under the fixed budget, and 600 requests over 50 specs give the
    // Zipf head enough repeats for the cache to dominate.
    let mut requests = 600usize;
    let mut spec_count = 50usize;
    let mut trials = 512usize;
    let mut sigma = 0.02f64;
    let mut seed = 7u64;
    let mut out = "BENCH_zipf.json".to_string();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--requests" => requests = value("--requests").parse().expect("--requests"),
            "--specs" => spec_count = value("--specs").parse().expect("--specs"),
            "--trials" => trials = value("--trials").parse().expect("--trials"),
            "--sigma" => sigma = value("--sigma").parse().expect("--sigma"),
            "--seed" => seed = value("--seed").parse().expect("--seed"),
            "--out" => out = value("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if smoke {
        requests = requests.min(100);
        trials = trials.min(64);
        sigma = sigma.max(0.02);
    }

    let stream = zipf_stream(spec_count, requests, seed);
    let fixed_specs = build_specs(spec_count, trials, None);
    let adaptive_specs = build_specs(
        spec_count,
        trials,
        Some(Precision::TargetSigma {
            sigma,
            min_trials: 8,
            max_trials: trials,
        }),
    );

    // Warm the shared compile path on a throwaway executor shape so both
    // legs measure steady-state simulation, not the one-time compile.
    // Each leg still compiles once itself; with hundreds of requests the
    // compile is noise, and both legs pay it equally.
    let baseline_exec = Executor::with_result_cache(0);
    let (baseline_secs, baseline_unique_trials) = drive(&baseline_exec, &fixed_specs, &stream);
    // The baseline re-simulates every repeat: its total simulated trials
    // are per-request, not per-spec.
    let baseline_total_trials = requests * trials;

    let cached_exec = Executor::new();
    let (cached_secs, adaptive_trials) = drive(&cached_exec, &adaptive_specs, &stream);
    let stats = cached_exec.result_cache_stats();

    let baseline_rps = requests as f64 / baseline_secs;
    let cached_rps = requests as f64 / cached_secs;
    let speedup = cached_rps / baseline_rps;
    let hit_rate = stats.hits as f64 / requests as f64;

    let mut json = String::new();
    write!(
        json,
        "{{\n  \"bench\": \"zipf\",\n  \
         \"workload\": \"Zipf(1.1) over {spec_count} noisy fig4/qft/qft-adder specs, \
         {requests} requests\",\n  \
         \"smoke\": {smoke},\n  \"fixed_trials\": {trials},\n  \"target_sigma\": {sigma},\n  \
         \"baseline\": {{\"rps\": {baseline_rps:.2}, \"secs\": {baseline_secs:.3}, \
         \"trials_simulated\": {baseline_total_trials}}},\n  \
         \"cached\": {{\"rps\": {cached_rps:.2}, \"secs\": {cached_secs:.3}, \
         \"trials_simulated\": {adaptive_trials}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"trials_saved\": {}, \"hit_rate\": {hit_rate:.3}}},\n  \
         \"speedup\": {speedup:.1}\n}}\n",
        stats.hits, stats.misses, stats.trials_saved,
    )
    .expect("format");
    print!("{json}");
    std::fs::write(&out, &json).expect("write BENCH_zipf.json");

    // The one real run per spec must never exceed its fixed budget, and
    // the Zipf head guarantees repeats, so the cache must have hits.
    assert!(stats.hits > 0, "no cache hits on a Zipf stream");
    assert!(
        adaptive_trials <= baseline_unique_trials.max(spec_count * trials),
        "adaptive simulated {adaptive_trials} trials, over the fixed budget"
    );
    for (idx, spec) in adaptive_specs.iter().enumerate() {
        if let Some(result) = cached_exec.cached_result(spec) {
            let ran = result.trials_run().unwrap_or(0);
            assert!(ran <= trials, "spec {idx} ran {ran} > budget {trials}");
        }
    }
    if !smoke {
        assert!(
            speedup >= 10.0,
            "effective throughput speedup {speedup:.1}x is below the 10x target"
        );
    }
}
