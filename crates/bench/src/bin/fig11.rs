//! Regenerates Figure 11: mean fidelity of the N-controlled Generalized
//! Toffoli for every applicable (circuit construction, noise model) pair —
//! 16 bars in total.
//!
//! The paper simulates 13 controls (a 14-input gate) with 1000+ quantum
//! trajectories per bar across >100 machines; by default this harness runs a
//! reduced size so it completes on a laptop in minutes. Pass
//! `--controls 13 --trials 1000` to reproduce the full experiment.
//!
//! `--backend density` switches every bar to the exact density-matrix
//! engine (feasible up to ~6 qudits): fidelities become ground truth and the
//! `2σ` column reflects only the spread over the sampled inputs.
//!
//! All 16 bars are described as [`JobSpec`]s and submitted in one
//! [`Executor::run_batch`] call: structurally shared circuits compile once
//! and the bars fan out across rayon workers (bit-identical to running them
//! sequentially).
//!
//! Usage:
//! `cargo run --release -p bench --bin fig11 [-- --controls 7 --trials 40 --seed 2019 --backend trajectory]`

use bench::{figure11_job, figure11_pairs, percent};
use qudit_api::{BackendKind, CliArgs, Executor, JobSpec};

fn main() {
    let args = CliArgs::from_env();
    let n_controls: usize = args.flag_or("--controls", 7).expect("--controls");
    let trials: usize = args.flag_or("--trials", 40).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let backend = args.backend_or(BackendKind::Trajectory).expect("--backend");

    let pairs = figure11_pairs();
    let jobs: Vec<JobSpec> = pairs
        .iter()
        .map(|(construction, model)| {
            figure11_job(backend, *construction, model, n_controls, trials, seed).unwrap_or_else(
                |e| {
                    eprintln!(
                        "invalid job for {}/{}: {e}",
                        construction.name(),
                        model.name
                    );
                    std::process::exit(1);
                },
            )
        })
        .collect();

    println!(
        "Figure 11: mean fidelity of the {}-input Generalized Toffoli ({} controls, {} trials/bar, {} backend)",
        n_controls + 1,
        n_controls,
        trials,
        backend.name()
    );
    println!(
        "{:<16} {:<15} {:>12} {:>10}",
        "Noise model", "Circuit", "Fidelity", "2-sigma"
    );
    let executor = Executor::new();
    for ((construction, model), result) in pairs.iter().zip(executor.run_batch(&jobs)) {
        let est = result
            .and_then(|r| r.fidelity().cloned())
            .unwrap_or_else(|e| {
                eprintln!("{}/{} failed: {e}", construction.name(), model.name);
                std::process::exit(1);
            });
        println!(
            "{:<16} {:<15} {:>12} {:>10}",
            model.name,
            construction.name(),
            percent(est.mean),
            percent(est.two_sigma())
        );
    }
}
