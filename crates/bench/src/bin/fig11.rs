//! Regenerates Figure 11: mean fidelity of the N-controlled Generalized
//! Toffoli for every applicable (circuit construction, noise model) pair —
//! 16 bars in total.
//!
//! The paper simulates 13 controls (a 14-input gate) with 1000+ quantum
//! trajectories per bar across >100 machines; by default this harness runs a
//! reduced size so it completes on a laptop in minutes. Pass
//! `--controls 13 --trials 1000` to reproduce the full experiment.
//!
//! Usage:
//! `cargo run --release -p bench --bin fig11 [-- --controls 7 --trials 40 --seed 2019]`

use bench::{figure11_fidelity, figure11_pairs, parse_flag_or, percent};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_controls: usize = parse_flag_or(&args, "--controls", 7);
    let trials: usize = parse_flag_or(&args, "--trials", 40);
    let seed: u64 = parse_flag_or(&args, "--seed", 2019);

    println!(
        "Figure 11: mean fidelity of the {}-input Generalized Toffoli ({} controls, {} trials/bar)",
        n_controls + 1,
        n_controls,
        trials
    );
    println!(
        "{:<16} {:<15} {:>12} {:>10}",
        "Noise model", "Circuit", "Fidelity", "2-sigma"
    );
    for (construction, model) in figure11_pairs() {
        let est = figure11_fidelity(construction, &model, n_controls, trials, seed);
        println!(
            "{:<16} {:<15} {:>12} {:>10}",
            model.name,
            construction.name(),
            percent(est.mean),
            percent(est.two_sigma())
        );
    }
}
