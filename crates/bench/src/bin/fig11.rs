//! Regenerates Figure 11: mean fidelity of the N-controlled Generalized
//! Toffoli for every applicable (circuit construction, noise model) pair —
//! 16 bars in total.
//!
//! The paper simulates 13 controls (a 14-input gate) with 1000+ quantum
//! trajectories per bar across >100 machines; by default this harness runs a
//! reduced size so it completes on a laptop in minutes. Pass
//! `--controls 13 --trials 1000` to reproduce the full experiment.
//!
//! `--backend density` switches every bar to the exact density-matrix
//! engine (feasible up to ~6 qudits): fidelities become ground truth and the
//! `2σ` column reflects only the spread over the sampled inputs.
//!
//! Usage:
//! `cargo run --release -p bench --bin fig11 [-- --controls 7 --trials 40 --seed 2019 --backend trajectory]`

use bench::{backend_from_args, figure11_fidelity_on, figure11_pairs, parse_flag_or, percent};
use qudit_noise::BackendKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_controls: usize = parse_flag_or(&args, "--controls", 7);
    let trials: usize = parse_flag_or(&args, "--trials", 40);
    let seed: u64 = parse_flag_or(&args, "--seed", 2019);
    let backend = backend_from_args(&args, BackendKind::Trajectory);

    println!(
        "Figure 11: mean fidelity of the {}-input Generalized Toffoli ({} controls, {} trials/bar, {} backend)",
        n_controls + 1,
        n_controls,
        trials,
        backend.name()
    );
    println!(
        "{:<16} {:<15} {:>12} {:>10}",
        "Noise model", "Circuit", "Fidelity", "2-sigma"
    );
    for (construction, model) in figure11_pairs() {
        let est = figure11_fidelity_on(backend, construction, &model, n_controls, trials, seed);
        println!(
            "{:<16} {:<15} {:>12} {:>10}",
            model.name,
            construction.name(),
            percent(est.mean),
            percent(est.two_sigma())
        );
    }
}
