//! Regenerates Table 2: superconducting noise-model parameters.

use qudit_noise::models::superconducting_models;

fn main() {
    println!("Table 2: Noise models simulated for superconducting devices");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "Noise Model", "3p1", "15p2", "T1"
    );
    for m in superconducting_models() {
        println!(
            "{:<14} {:>10.1e} {:>10.1e} {:>8.0} ms",
            m.name,
            3.0 * m.p1,
            15.0 * m.p2,
            m.t1.unwrap_or(0.0) * 1e3
        );
    }
    println!();
    println!(
        "(gate times: {} ns single-qudit, {} ns two-qudit)",
        superconducting_models()[0].gate_time_1q * 1e9,
        superconducting_models()[0].gate_time_2q * 1e9
    );
}
