//! Regenerates Table 2: superconducting noise-model parameters, plus a
//! reference fidelity column computed through the selected simulation
//! backend (the paper's Figure 4 Toffoli, 2 controls).
//!
//! `--backend density` (the default) reports the exact density-matrix
//! fidelity; `--backend trajectory` reports the Monte Carlo estimate the
//! exact value cross-validates.
//!
//! Usage:
//! `cargo run --release -p bench --bin table2 [-- --backend density --trials 40 --seed 2019]`

use bench::{backend_from_args, parse_flag_or, table_reference_fidelity};
use qudit_noise::models::superconducting_models;
use qudit_noise::BackendKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = backend_from_args(&args, BackendKind::DensityMatrix);
    let trials: usize = parse_flag_or(&args, "--trials", 40);
    let seed: u64 = parse_flag_or(&args, "--seed", 2019);

    println!("Table 2: Noise models simulated for superconducting devices");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>14}",
        "Noise Model",
        "3p1",
        "15p2",
        "T1",
        format!("F({} bk)", backend.name())
    );
    for m in superconducting_models() {
        let est = table_reference_fidelity(backend, &m, 3, trials, seed);
        println!(
            "{:<14} {:>10.1e} {:>10.1e} {:>8.0} ms {:>13.4}%",
            m.name,
            3.0 * m.p1,
            15.0 * m.p2,
            m.t1.unwrap_or(0.0) * 1e3,
            100.0 * est.mean
        );
    }
    println!();
    println!(
        "(gate times: {} ns single-qudit, {} ns two-qudit; fidelity column: \
         2-controlled qutrit Toffoli, {} input draws, seed {})",
        superconducting_models()[0].gate_time_1q * 1e9,
        superconducting_models()[0].gate_time_2q * 1e9,
        trials,
        seed
    );
}
