//! Regenerates Table 2: superconducting noise-model parameters, plus a
//! reference fidelity column computed through the selected simulation
//! backend (the paper's Figure 4 Toffoli, 2 controls).
//!
//! `--backend density` (the default) reports the exact density-matrix
//! fidelity; `--backend trajectory` reports the Monte Carlo estimate the
//! exact value cross-validates.
//!
//! Usage:
//! `cargo run --release -p bench --bin table2 [-- --backend density --trials 40 --seed 2019]`

use bench::table_reference_fidelity;
use qudit_api::{BackendKind, CliArgs, Executor};
use qudit_noise::models::superconducting_models;

fn main() {
    let args = CliArgs::from_env();
    let backend = args
        .backend_or(BackendKind::DensityMatrix)
        .expect("--backend");
    let trials: usize = args.flag_or("--trials", 40).expect("--trials");
    let seed: u64 = args.flag_or("--seed", 2019).expect("--seed");
    let executor = Executor::new();

    println!("Table 2: Noise models simulated for superconducting devices");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>14}",
        "Noise Model",
        "3p1",
        "15p2",
        "T1",
        format!("F({} bk)", backend.name())
    );
    for m in superconducting_models() {
        let est =
            table_reference_fidelity(&executor, backend, &m, 3, trials, seed).unwrap_or_else(|e| {
                eprintln!("{} failed: {e}", m.name);
                std::process::exit(1);
            });
        println!(
            "{:<14} {:>10.1e} {:>10.1e} {:>8.0} ms {:>13.4}%",
            m.name,
            3.0 * m.p1,
            15.0 * m.p2,
            m.t1.unwrap_or(0.0) * 1e3,
            100.0 * est.mean
        );
    }
    println!();
    println!(
        "(gate times: {} ns single-qudit, {} ns two-qudit; fidelity column: \
         2-controlled qutrit Toffoli, {} input draws, seed {})",
        superconducting_models()[0].gate_time_1q * 1e9,
        superconducting_models()[0].gate_time_2q * 1e9,
        trials,
        seed
    );
}
