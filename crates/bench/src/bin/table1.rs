//! Regenerates Table 1: asymptotic comparison of N-controlled gate
//! decompositions.

use qutrit_toffoli::cost::table1;

fn main() {
    println!("Table 1: Asymptotic comparison of N-controlled gate decompositions");
    println!(
        "{:<15} {:<8} {:<8} {:<32} {:<10}",
        "Construction", "Depth", "Ancilla", "Qudit types", "Constants"
    );
    for row in table1() {
        println!(
            "{:<15} {:<8} {:<8} {:<32} {:<10}",
            row.construction.name(),
            row.depth,
            row.ancilla,
            row.qudit_types,
            row.constants
        );
    }
}
