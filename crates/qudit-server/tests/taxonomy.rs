//! Table-driven failure taxonomy: every fault class maps to an exact
//! HTTP status and a typed `error.kind`, and after every fault the same
//! server instance answers a clean Figure-4 job with the exactly correct
//! result.

mod common;

use common::{assert_clean_request_works, clean_job_json, error_kind, heavy_job_json, post_job};
use qudit_server::{Server, ServerConfig};
use std::time::Duration;
use tiny_http::client;

/// One fault class: a request to fire at the server and the exact
/// (status, kind) the taxonomy promises for it.
struct FaultCase {
    name: &'static str,
    /// (method, path, body, extra headers) — `None` body means GET.
    request: Request,
    expect_status: u16,
    expect_kind: &'static str,
}

enum Request {
    Get(&'static str),
    Post {
        path: &'static str,
        body: Body,
        headers: &'static [(&'static str, &'static str)],
    },
}

enum Body {
    /// A literal byte payload.
    Literal(&'static str),
    /// A valid clean job, mutated by string replacement on the wire form.
    MutatedCleanJob(&'static str, &'static str),
    /// The heavy job (deadline fodder), unmodified.
    HeavyJob,
    /// The heavy job (the one carrying a noise model), mutated by string
    /// replacement on the wire form.
    MutatedHeavyJob(&'static str, &'static str),
    /// The clean job, unmodified (used with fault-inducing headers).
    CleanJob,
}

fn cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            name: "malformed JSON body",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::Literal("{\"circuit\": [unterminated"),
                headers: &[],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "truncated JSON body (valid prefix of a real spec)",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::Literal("{\"circuit\":{\"dim\":3,\"width\":3,\"operations\":["),
                headers: &[],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "non-JSON body",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::Literal("GET / HTTP/1.0"),
                headers: &[],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "well-formed JSON, invalid spec (zero trials)",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::MutatedCleanJob("\"trials\":100", "\"trials\":0"),
                headers: &[],
            },
            expect_status: 422,
            expect_kind: "invalid_spec",
        },
        FaultCase {
            name: "well-formed JSON, unknown backend",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::MutatedCleanJob("\"backend\":\"trajectory\"", "\"backend\":\"abacus\""),
                headers: &[],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "well-formed JSON, out-of-range leakage rate",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::MutatedHeavyJob(
                    "\"name\":\"TEST\"",
                    "\"name\":\"TEST\",\"leak_rate\":1.5",
                ),
                headers: &[],
            },
            expect_status: 422,
            expect_kind: "invalid_spec",
        },
        FaultCase {
            name: "well-formed JSON, non-numeric crosstalk",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::MutatedHeavyJob(
                    "\"name\":\"TEST\"",
                    "\"name\":\"TEST\",\"crosstalk\":\"lots\"",
                ),
                headers: &[],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "deadline expires mid-simulation",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::HeavyJob,
                headers: &[("X-Deadline-Ms", "200")],
            },
            expect_status: 504,
            expect_kind: "deadline_exceeded",
        },
        FaultCase {
            name: "unparseable deadline header",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::CleanJob,
                headers: &[("X-Deadline-Ms", "soon")],
            },
            expect_status: 400,
            expect_kind: "bad_request",
        },
        FaultCase {
            name: "job panics inside the worker (chaos hook)",
            request: Request::Post {
                path: "/v1/jobs",
                body: Body::CleanJob,
                headers: &[("X-Chaos", "panic")],
            },
            expect_status: 500,
            expect_kind: "internal_panic",
        },
        FaultCase {
            name: "unknown path",
            request: Request::Get("/v2/jobs"),
            expect_status: 404,
            expect_kind: "not_found",
        },
        FaultCase {
            name: "wrong method on a known path",
            request: Request::Get("/v1/jobs"),
            expect_status: 405,
            expect_kind: "method_not_allowed",
        },
    ]
}

#[test]
fn every_fault_class_maps_to_its_typed_error_and_leaves_the_server_healthy() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        chaos_hooks: true,
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();
    let clean = clean_job_json();
    let heavy = heavy_job_json();

    for case in cases() {
        let (status, body) = match &case.request {
            Request::Get(path) => {
                let resp = client::get(addr, path, Duration::from_secs(10)).expect("get");
                (
                    resp.status,
                    String::from_utf8_lossy(&resp.body).into_owned(),
                )
            }
            Request::Post {
                path,
                body,
                headers,
            } => {
                assert_eq!(*path, "/v1/jobs");
                let payload = match body {
                    Body::Literal(text) => (*text).to_string(),
                    Body::MutatedCleanJob(from, to) => {
                        assert!(
                            clean.contains(from),
                            "{}: mutation anchor missing",
                            case.name
                        );
                        clean.replace(from, to)
                    }
                    Body::HeavyJob => heavy.clone(),
                    Body::MutatedHeavyJob(from, to) => {
                        assert!(
                            heavy.contains(from),
                            "{}: mutation anchor missing",
                            case.name
                        );
                        heavy.replace(from, to)
                    }
                    Body::CleanJob => clean.clone(),
                };
                post_job(addr, &payload, headers)
            }
        };
        assert_eq!(
            status, case.expect_status,
            "{}: wrong status, body={body}",
            case.name
        );
        assert_eq!(
            error_kind(&body),
            case.expect_kind,
            "{}: wrong error kind, body={body}",
            case.name
        );

        // The invariant the whole PR is about: the fault must not have
        // taken the service down or corrupted it.
        assert_clean_request_works(addr);
    }

    assert_eq!(server.jobs_panicked(), 1, "exactly the chaos case panicked");
    server.shutdown();
}

#[test]
fn chaos_header_is_inert_unless_hooks_are_enabled() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        chaos_hooks: false,
        ..ServerConfig::default()
    })
    .expect("server start");
    let (status, _) = post_job(server.addr(), &clean_job_json(), &[("X-Chaos", "panic")]);
    assert_eq!(status, 200, "X-Chaos must be ignored in production config");
    assert_eq!(server.jobs_panicked(), 0);
    server.shutdown();
}
