//! Routed jobs through the HTTP front end: a spec carrying a `topology`
//! field must run end to end — routing on the compile path, SWAP-charged
//! resources in the response — and topology/spec mismatches must map to
//! the 422 `invalid_spec` taxonomy class like every other builder error.

mod common;

use common::{error_kind, fig4_circuit, post_job};
use qudit_api::{BackendKind, Circuit, ExecutionResult, InputState, JobSpec, NoiseModel, Topology};
use qudit_circuit::{Control, Gate};
use qudit_server::{Server, ServerConfig};
use std::time::Duration;

fn quick_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .expect("server start")
}

/// A star interaction graph on 4 qutrits — unroutable without SWAPs on a
/// line, so a routed run through the server demonstrably routes.
fn star_circuit() -> Circuit {
    let mut c = Circuit::new(3, 4);
    for q in 1..4 {
        c.push_controlled(Gate::x(3), &[Control::on_one(0)], &[q])
            .unwrap();
    }
    c
}

#[test]
fn routed_noise_free_job_answers_with_logical_labels() {
    let server = quick_server();
    // |1000⟩ through the star flips qudits 1..3 to |1⟩. The response must
    // be in logical qudit order even though the routed circuit permuted
    // the physical wires.
    let job = JobSpec::builder(star_circuit())
        .input(InputState::Basis(vec![1, 0, 0, 0]))
        .topology(Topology::linear(4).unwrap())
        .build()
        .unwrap();
    let (status, body) = post_job(server.addr(), &job.to_json(), &[]);
    assert_eq!(status, 200, "routed job failed: {body}");
    let result = ExecutionResult::from_json(&body).expect("result JSON");
    let routed = result.resources.routed.expect("routed resource column");
    assert!(routed.inserted_swaps > 0, "the star must need SWAPs");
    let p = result.states().unwrap()[0]
        .probability(&[1, 1, 1, 1])
        .unwrap();
    assert!((p - 1.0).abs() < 1e-12, "wrong routed answer: p={p}");
}

#[test]
fn routed_noisy_job_runs_and_charges_the_swaps() {
    let server = quick_server();
    let model = NoiseModel {
        name: "TEST".to_string(),
        p1: 1e-4,
        p2: 1e-4,
        t1: Some(1e-3),
        gate_time_1q: 100e-9,
        gate_time_2q: 300e-9,
        leak_rate: None,
        overrotation: None,
        crosstalk: None,
    };
    let leg = |topology: Option<Topology>| {
        let mut builder = JobSpec::builder(star_circuit())
            .noise(model.clone())
            .backend(BackendKind::DensityMatrix)
            .trials(1)
            .input(InputState::AllOnes);
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        let (status, body) = post_job(server.addr(), &builder.build().unwrap().to_json(), &[]);
        assert_eq!(status, 200, "noisy job failed: {body}");
        ExecutionResult::from_json(&body).expect("result JSON")
    };
    let unrouted = leg(None);
    let routed = leg(Some(Topology::linear(4).unwrap()));
    assert!(routed.resources.routed.unwrap().inserted_swaps > 0);
    assert!(
        routed.fidelity().unwrap().mean < unrouted.fidelity().unwrap().mean,
        "SWAP error sites must lower the routed fidelity"
    );
}

#[test]
fn topology_width_mismatch_is_an_invalid_spec() {
    let server = quick_server();
    // Build a valid routed wire payload, then swap in a 5-site topology:
    // well-formed JSON, invalid job — the 422 taxonomy class.
    let job = JobSpec::builder(fig4_circuit())
        .input(InputState::Basis(vec![1, 1, 0]))
        .topology(Topology::linear(3).unwrap())
        .build()
        .unwrap();
    let tampered = job.to_json().replace(
        "\"topology\":{\"kind\":\"linear\",\"sites\":3}",
        "\"topology\":{\"kind\":\"linear\",\"sites\":5}",
    );
    assert_ne!(tampered, job.to_json(), "replacement anchor drifted");
    let (status, body) = post_job(server.addr(), &tampered, &[]);
    assert_eq!(status, 422, "{body}");
    assert_eq!(error_kind(&body), "invalid_spec");
}
