//! Shared helpers for the server integration suites.
// Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use qudit_api::{BackendKind, ExecutionResult, InputState, JobSpec};
use qudit_circuit::{Circuit, Control, Gate};
use std::net::SocketAddr;
use std::time::Duration;
use tiny_http::client;

/// The paper's Figure 4 Toffoli-via-qutrits — the well-formed job every
/// fault is followed by.
pub fn fig4_circuit() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
        .unwrap();
    c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
        .unwrap();
    c
}

/// A noise-free fig4 job with a known exact answer: input |1,1,0⟩ must
/// come out |1,1,1⟩ with probability 1.
pub fn clean_job_json() -> String {
    JobSpec::builder(fig4_circuit())
        .input(InputState::Basis(vec![1, 1, 0]))
        .build()
        .unwrap()
        .to_json()
}

/// A noisy job heavy enough to still be running when a short deadline
/// expires: fig4 repeated many times, many trials.
pub fn heavy_job_json() -> String {
    let mut c = Circuit::new(3, 3);
    for _ in 0..20 {
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
    }
    JobSpec::builder(c)
        .noise(qudit_api::NoiseModel {
            name: "TEST".to_string(),
            p1: 1e-4,
            p2: 1e-4,
            t1: Some(1e-3),
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        })
        .backend(BackendKind::Trajectory)
        .trials(500_000)
        .input(InputState::AllOnes)
        .build()
        .unwrap()
        .to_json()
}

/// POSTs a job, returning (status, body-as-text).
pub fn post_job(addr: SocketAddr, body: &str, headers: &[(&str, &str)]) -> (u16, String) {
    let resp = client::post(
        addr,
        "/v1/jobs",
        body.as_bytes(),
        headers,
        Duration::from_secs(60),
    )
    .expect("post /v1/jobs");
    (
        resp.status,
        String::from_utf8_lossy(&resp.body).into_owned(),
    )
}

/// The error kind string from an error body, or "" for non-error bodies.
pub fn error_kind(body: &str) -> String {
    serde::json::parse(body)
        .ok()
        .and_then(|v| {
            v.get("error")?
                .get("kind")?
                .as_str()
                .ok()
                .map(str::to_string)
        })
        .unwrap_or_default()
}

/// The post-fault invariant: the same server must answer a clean fig4 job
/// with the exactly correct result.
pub fn assert_clean_request_works(addr: SocketAddr) {
    let (status, body) = post_job(addr, &clean_job_json(), &[]);
    assert_eq!(status, 200, "clean request failed: {body}");
    let result = ExecutionResult::from_json(&body).expect("result JSON");
    let states = result.states().expect("noise-free outcome");
    let p = states[0].probability(&[1, 1, 1]).expect("probability");
    assert!((p - 1.0).abs() < 1e-12, "wrong answer after fault: p={p}");
}

/// GETs a path, returning (status, body).
pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let resp = client::get(addr, path, Duration::from_secs(10)).expect("get");
    (
        resp.status,
        String::from_utf8_lossy(&resp.body).into_owned(),
    )
}
