//! Fault-injection battery below the JSON layer: protocol abuse,
//! dropped connections, overload, deadline timing, and graceful
//! shutdown. After every fault the same server must keep answering.

mod common;

use common::{
    assert_clean_request_works, clean_job_json, error_kind, get, heavy_job_json, post_job,
};
use qudit_server::{Server, ServerConfig, DEADLINE_GRACE};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tiny_http::client;

fn quick_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .expect("server start")
}

fn send_bytes(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let resp = client::send_raw(addr, bytes, Duration::from_secs(10)).expect("send_raw");
    (
        resp.status,
        String::from_utf8_lossy(&resp.body).into_owned(),
    )
}

#[test]
fn protocol_faults_get_protocol_errors_and_the_server_survives() {
    let server = quick_server();
    let addr = server.addr();

    // Slow-loris: an incomplete request head that never finishes. The
    // read timeout must reclaim the connection with 408.
    let (status, _) = send_bytes(addr, b"POST /v1/jobs HTT");
    assert_eq!(status, 408, "slow-loris head");
    assert_clean_request_works(addr);

    // Declared body larger than the limit: refused up front with 413,
    // without reading the body.
    let huge = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\nx",
        64 * 1024 * 1024
    );
    let (status, _) = send_bytes(addr, huge.as_bytes());
    assert_eq!(status, 413, "oversized declared body");
    assert_clean_request_works(addr);

    // POST with no Content-Length at all.
    let (status, _) = send_bytes(
        addr,
        b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "missing Content-Length");
    assert_clean_request_works(addr);

    // A header block past the 16 KB head limit.
    let mut big_head = b"GET /healthz HTTP/1.1\r\nHost: x\r\n".to_vec();
    for i in 0..2048 {
        big_head.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(16)).as_bytes());
    }
    big_head.extend_from_slice(b"\r\n");
    let (status, _) = send_bytes(addr, &big_head);
    assert_eq!(status, 431, "oversized header block");
    assert_clean_request_works(addr);

    // Truncated body: fewer bytes than declared, then a half-close.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"cir")
        .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let resp = tiny_http::client::read_from(&mut stream).expect("response");
    assert_eq!(resp.status, 400, "truncated body");
    assert_clean_request_works(addr);

    server.shutdown();
}

#[test]
fn a_client_that_disconnects_mid_job_does_not_wedge_the_server() {
    let server = quick_server();
    let addr = server.addr();

    // Fire a full, valid job and slam the connection before the response
    // can be written. The worker still runs the job; the failed write is
    // swallowed.
    let body = clean_job_json();
    let request = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    client::send_and_abandon(addr, request.as_bytes(), Duration::from_secs(5)).expect("abandon");

    // Give the server a moment to trip over the dead socket, then prove
    // it still answers.
    std::thread::sleep(Duration::from_millis(300));
    assert_clean_request_works(addr);
    server.shutdown();
}

#[test]
fn overload_returns_typed_backpressure_and_recovers() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();
    let heavy = heavy_job_json();

    // Occupy the single worker...
    let h1 = {
        let heavy = heavy.clone();
        std::thread::spawn(move || post_job(addr, &heavy, &[("X-Deadline-Ms", "1500")]))
    };
    std::thread::sleep(Duration::from_millis(300));
    // ...fill the single queue slot...
    let h2 = {
        let heavy = heavy.clone();
        std::thread::spawn(move || post_job(addr, &heavy, &[("X-Deadline-Ms", "1500")]))
    };
    std::thread::sleep(Duration::from_millis(200));

    // ...and the next job must bounce with typed backpressure, not hang.
    let (status, body) = post_job(addr, &clean_job_json(), &[]);
    assert_eq!(status, 429, "expected overload, body={body}");
    assert_eq!(error_kind(&body), "overloaded");

    // The two heavy jobs die at their deadlines.
    for handle in [h1, h2] {
        let (status, body) = handle.join().expect("join");
        assert_eq!(status, 504, "heavy job should hit its deadline: {body}");
    }

    // Capacity is back: the same server answers correctly again.
    assert_clean_request_works(addr);
    server.shutdown();
}

#[test]
fn an_expired_deadline_is_enforced_server_side_within_the_grace_window() {
    let server = quick_server();
    let addr = server.addr();

    let deadline = Duration::from_millis(300);
    let start = Instant::now();
    let (status, body) = post_job(addr, &heavy_job_json(), &[("X-Deadline-Ms", "300")]);
    let elapsed = start.elapsed();

    assert_eq!(status, 504, "body={body}");
    assert_eq!(error_kind(&body), "deadline_exceeded");
    // The response must come from cooperative cancellation near the
    // deadline — not from a wedged worker discovered much later. Allow
    // the handler's grace window plus scheduling slack.
    assert!(
        elapsed < deadline + DEADLINE_GRACE + Duration::from_secs(2),
        "deadline response took {elapsed:?}"
    );

    // The worker actually freed itself: a clean job completes promptly.
    let start = Instant::now();
    assert_clean_request_works(addr);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "worker still busy after cancellation"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_deadline: Duration::from_secs(60),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();

    // A real job is in flight when shutdown begins.
    let inflight = std::thread::spawn(move || post_job(addr, &clean_job_json(), &[]));
    std::thread::sleep(Duration::from_millis(150));

    let report = server.shutdown();
    assert!(report.drained, "shutdown should finish the in-flight job");
    assert!(report.jobs_completed >= 1);
    assert_eq!(report.jobs_panicked, 0);

    // The in-flight client got its real answer, not an error.
    let (status, body) = inflight.join().expect("join");
    assert_eq!(status, 200, "drained job response: {body}");

    // And the listener is gone: new connections are refused.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        client::get(addr, "/healthz", Duration::from_secs(2)).is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn draining_server_refuses_new_jobs_but_reports_health() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_deadline: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();

    // Hold the worker with a heavy job so the drain window stays open.
    let inflight = {
        let heavy = heavy_job_json();
        std::thread::spawn(move || post_job(addr, &heavy, &[("X-Deadline-Ms", "10000")]))
    };
    std::thread::sleep(Duration::from_millis(300));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(300));

    // Mid-drain: health stays observable, readiness flips, new jobs are
    // refused with the typed drain error.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "healthz during drain: {body}");
    assert!(body.contains("\"draining\":true"), "body={body}");
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 503, "readyz must flip during drain");
    let (status, body) = post_job(addr, &clean_job_json(), &[]);
    assert_eq!(status, 503, "new jobs refused during drain: {body}");
    assert_eq!(error_kind(&body), "draining");

    // The drain deadline expires, the heavy job is cancelled, and both
    // the client and the shutdown report see a consistent story.
    let (status, body) = inflight.join().expect("join");
    assert_eq!(status, 504, "cancelled in-flight job: {body}");
    let report = shutdown.join().expect("join");
    assert!(!report.drained, "the heavy job cannot drain in time");
}

#[test]
fn health_endpoints_report_queue_and_job_counters() {
    let server = quick_server();
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = serde::json::parse(&body).expect("healthz JSON");
    assert_eq!(health.get("status").unwrap().as_str().unwrap(), "ok");
    let queue = health.get("queue").expect("queue block");
    assert_eq!(
        queue.get("capacity").unwrap().as_usize().unwrap(),
        server.queue_capacity()
    );
    let cache = health.get("result_cache").expect("result_cache block");
    assert_eq!(cache.get("hits").unwrap().as_usize().unwrap(), 0);
    assert!(cache.get("capacity").unwrap().as_usize().unwrap() > 0);

    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200, "readyz when idle: {body}");

    // Counters move when work happens.
    assert_clean_request_works(addr);
    let (_, body) = get(addr, "/healthz");
    let health = serde::json::parse(&body).expect("healthz JSON");
    let jobs = health.get("jobs").expect("jobs block");
    assert!(jobs.get("completed").unwrap().as_usize().unwrap() >= 1);
    server.shutdown();
}

#[test]
fn repeated_jobs_are_answered_from_the_result_cache() {
    let server = quick_server();
    let addr = server.addr();
    let job = clean_job_json();

    // First submission simulates; the repeat must answer from the cache —
    // bit-identical body, a hit on the counter, and no new simulation.
    let (status, first) = post_job(addr, &job, &[]);
    assert_eq!(status, 200, "first submission: {first}");
    let (status, second) = post_job(addr, &job, &[]);
    assert_eq!(status, 200, "cached submission: {second}");
    assert_eq!(first, second, "a cache hit must be bit-identical");

    let (_, body) = get(addr, "/healthz");
    let health = serde::json::parse(&body).expect("healthz JSON");
    let cache = health.get("result_cache").expect("result_cache block");
    assert!(
        cache.get("hits").unwrap().as_usize().unwrap() >= 1,
        "{body}"
    );
    assert_eq!(cache.get("entries").unwrap().as_usize().unwrap(), 1);
    let jobs = health.get("jobs").expect("jobs block");
    // Only the first submission entered the queue; the hit skipped it.
    assert_eq!(jobs.get("accepted").unwrap().as_usize().unwrap(), 1);
    assert_eq!(jobs.get("completed").unwrap().as_usize().unwrap(), 2);
    assert_eq!(
        jobs.get("deduped_simulations").unwrap().as_usize().unwrap(),
        1
    );
    server.shutdown();
}
