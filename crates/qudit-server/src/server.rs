//! The server proper: HTTP routing, deadline plumbing, backpressure,
//! health endpoints, and graceful drain.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::queue::{Job, JobOutcome, JobQueue, SubmitError};
use crate::worker;
use futures::channel::oneshot;
use futures::executor::block_on_deadline;
use qudit_api::{Executor, JobSpec};
use qudit_noise::CancelToken;
use serde::Value;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Extra wall-clock a connection handler waits past a job's deadline for
/// the worker's cancellation to land before answering `504` itself. The
/// cooperative checks fire every trial/frame, so in practice cancellation
/// lands within microseconds of the deadline; the grace only bounds the
/// pathological case.
pub const DEADLINE_GRACE: Duration = Duration::from_secs(1);

/// Shared server state: the compute stack plus every robustness mechanism.
pub(crate) struct ServerState {
    pub(crate) config: ServerConfig,
    pub(crate) executor: Executor,
    pub(crate) queue: JobQueue,
    http: tiny_http::Server,
    /// Set at shutdown: new jobs are refused while in-flight work drains.
    draining: AtomicBool,
    /// Jobs popped by a worker and not yet answered.
    pub(crate) active: AtomicUsize,
    /// Jobs accepted into the queue over the server's lifetime.
    pub(crate) accepted: AtomicUsize,
    /// Jobs answered (success or typed error) over the lifetime.
    pub(crate) completed: AtomicUsize,
    /// Jobs that panicked and were isolated.
    pub(crate) panicked: AtomicUsize,
    /// Cancel tokens of accepted-but-unanswered jobs, for shutdown.
    inflight: Mutex<HashMap<u64, CancelToken>>,
    next_job: AtomicU64,
}

impl ServerState {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn register(&self, token: &CancelToken) -> u64 {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, token.clone());
        id
    }

    fn unregister(&self, id: u64) {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    fn cancel_inflight(&self) {
        for token in self
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            token.cancel();
        }
    }
}

/// Outcome of a graceful shutdown.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// Whether all in-flight jobs finished inside the drain deadline
    /// (`false` means leftovers were cancelled).
    pub drained: bool,
    /// Jobs answered over the server's lifetime.
    pub jobs_completed: usize,
    /// Jobs that panicked and were isolated over the lifetime.
    pub jobs_panicked: usize,
}

/// A running service instance. Dropping without
/// [`shutdown`](Server::shutdown) aborts non-gracefully (threads are
/// detached); call `shutdown` to drain.
pub struct Server {
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the worker pool and connection threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let limits = tiny_http::Limits {
            read_timeout: config.read_timeout,
            write_timeout: config.read_timeout,
            max_body_bytes: config.max_body_bytes,
            ..tiny_http::Limits::default()
        };
        let http = tiny_http::Server::http_with_limits(&config.addr[..], limits)?;
        let queue = JobQueue::new(config.queue_depth);
        let state = Arc::new(ServerState {
            executor: Executor::new(),
            queue,
            http,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            inflight: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            config,
        });
        let mut threads = Vec::new();
        for i in 0..state.config.workers.max(1) {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qudit-worker-{i}"))
                    .spawn(move || worker::run(&state))?,
            );
        }
        for i in 0..state.config.http_threads.max(1) {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qudit-http-{i}"))
                    .spawn(move || http_loop(&state))?,
            );
        }
        Ok(Server { state, threads })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.http.server_addr()
    }

    /// Current queue depth (pending, not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.state.queue.len()
    }

    /// Configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.state.queue.capacity()
    }

    /// Jobs answered so far.
    pub fn jobs_completed(&self) -> usize {
        self.state.completed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked and were isolated so far.
    pub fn jobs_panicked(&self) -> usize {
        self.state.panicked.load(Ordering::Relaxed)
    }

    /// Graceful SIGTERM-style shutdown: stop accepting, drain in-flight
    /// jobs under the configured drain deadline, cancel whatever is left,
    /// then join every thread.
    pub fn shutdown(self) -> ShutdownReport {
        let state = &self.state;
        state.draining.store(true, Ordering::SeqCst);

        // Drain: queued work plus jobs currently on a worker.
        let deadline = Instant::now() + state.config.drain_deadline;
        while (!state.queue.is_empty() || state.active.load(Ordering::SeqCst) > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = state.queue.is_empty() && state.active.load(Ordering::SeqCst) == 0;

        // Past the deadline: cooperative cancellation stops the leftovers;
        // closing the queue lets workers run the (now cancelled) backlog
        // down — every accepted job still gets its typed reply.
        state.cancel_inflight();
        state.queue.close();
        for _ in 0..state.config.http_threads.max(1) {
            state.http.unblock();
        }
        for handle in self.threads {
            let _ = handle.join();
        }
        ShutdownReport {
            drained,
            jobs_completed: self.state.completed.load(Ordering::Relaxed),
            jobs_panicked: self.state.panicked.load(Ordering::Relaxed),
        }
    }
}

/// One connection thread: accept, route, respond, repeat until closed.
fn http_loop(state: &ServerState) {
    loop {
        match state.http.recv() {
            Ok(Some(request)) => handle(state, request),
            Ok(None) => return, // closed
            Err(_) => {
                if state.is_draining() {
                    return;
                }
                // Transient accept error; keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Routes one request. Mid-response disconnects surface as respond errors
/// and are deliberately ignored — the client is gone, the server is fine.
fn handle(state: &ServerState, request: tiny_http::Request) {
    let path = request.url().split('?').next().unwrap_or("").to_string();
    match (request.method(), path.as_str()) {
        (tiny_http::Method::Get, "/healthz") => {
            let _ = request.respond(json_response(200, &health_body(state, "ok")));
        }
        (tiny_http::Method::Get, "/readyz") => {
            if state.is_draining() {
                let _ = request.respond(json_response(503, &health_body(state, "draining")));
            } else {
                let _ = request.respond(json_response(200, &health_body(state, "ready")));
            }
        }
        (tiny_http::Method::Post, "/v1/jobs") => handle_job(state, request),
        (_, "/healthz" | "/readyz" | "/v1/jobs") => {
            let _ = request.respond(ServerError::MethodNotAllowed.to_response());
        }
        _ => {
            let _ = request.respond(ServerError::NotFound.to_response());
        }
    }
}

/// The job endpoint: parse → deadline → bounded submit → bounded wait.
fn handle_job(state: &ServerState, request: tiny_http::Request) {
    if state.is_draining() {
        let _ = request.respond(ServerError::Draining.to_response());
        return;
    }

    // Per-job deadline: the X-Deadline-Ms header, clamped to the
    // configured maximum; absent, the default applies.
    let deadline_header = request.header("X-Deadline-Ms").map(str::to_string);
    let deadline = match deadline_header {
        None => state.config.default_deadline,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms).min(state.config.max_deadline),
            _ => {
                let _ = request.respond(
                    ServerError::BadRequest {
                        reason: format!("X-Deadline-Ms must be a positive integer, got {raw:?}"),
                    }
                    .to_response(),
                );
                return;
            }
        },
    };

    let body = match std::str::from_utf8(request.body()) {
        Ok(text) => text,
        Err(_) => {
            let _ = request.respond(
                ServerError::BadRequest {
                    reason: "request body is not valid UTF-8".to_string(),
                }
                .to_response(),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => {
            let _ = request.respond(ServerError::from(e).to_response());
            return;
        }
    };

    let chaos_panic =
        state.config.chaos_hooks && request.header("X-Chaos").is_some_and(|v| v == "panic");

    // A cached result answers right here: no queue slot, no worker, no
    // simulation cost — determinism makes the cached payload bit-identical
    // to re-running the spec. The executor's probe counts the hit; a miss
    // charges nothing (the queued run pays it). Chaos jobs always take the
    // queue path — their point is to panic a worker.
    if !chaos_panic {
        if let Some(result) = state.executor.cached_result(&spec) {
            state.completed.fetch_add(1, Ordering::Relaxed);
            let _ = request.respond(json_response(200, &result.to_json()));
            return;
        }
    }

    let expires = Instant::now() + deadline;
    let cancel = CancelToken::with_deadline(expires);
    let job_id = state.register(&cancel);
    let (reply, result) = oneshot::channel();
    let job = Job {
        spec,
        cancel,
        chaos_panic,
        reply,
    };
    match state.queue.submit(job) {
        Ok(()) => {}
        Err(SubmitError::Full(_job)) => {
            state.unregister(job_id);
            let _ = request.respond(
                ServerError::Overloaded {
                    depth: state.queue.len(),
                    capacity: state.queue.capacity(),
                }
                .to_response(),
            );
            return;
        }
        Err(SubmitError::Closed(_job)) => {
            state.unregister(job_id);
            let _ = request.respond(ServerError::Draining.to_response());
            return;
        }
    }
    state.accepted.fetch_add(1, Ordering::Relaxed);

    // Bounded wait: the worker answers well inside deadline + grace
    // (cooperative cancellation); the timeout here only guards against a
    // wedged worker, so a connection can never hang past its deadline.
    let response = match block_on_deadline(result, expires + DEADLINE_GRACE) {
        None | Some(Err(oneshot::Canceled)) => ServerError::DeadlineExceeded.to_response(),
        Some(Ok(JobOutcome::Panicked(message))) => {
            ServerError::InternalPanic { message }.to_response()
        }
        Some(Ok(JobOutcome::Done(Err(e)))) => ServerError::from(e).to_response(),
        Some(Ok(JobOutcome::Done(Ok(result)))) => json_response(200, &result.to_json()),
    };
    state.unregister(job_id);
    let _ = request.respond(response);
}

fn json_response(status: u16, body: &str) -> tiny_http::Response {
    tiny_http::Response::from_string(body)
        .with_status_code(status)
        .with_header("Content-Type", "application/json")
}

/// The health/readiness body: status plus live queue and job counters.
fn health_body(state: &ServerState, status: &str) -> String {
    let body = Value::object(vec![
        ("status", Value::Str(status.to_string())),
        ("draining", Value::Bool(state.is_draining())),
        (
            "queue",
            Value::object(vec![
                ("depth", Value::UInt(state.queue.len() as u64)),
                ("capacity", Value::UInt(state.queue.capacity() as u64)),
                (
                    "active",
                    Value::UInt(state.active.load(Ordering::Relaxed) as u64),
                ),
            ]),
        ),
        (
            "jobs",
            Value::object(vec![
                (
                    "accepted",
                    Value::UInt(state.accepted.load(Ordering::Relaxed) as u64),
                ),
                (
                    "completed",
                    Value::UInt(state.completed.load(Ordering::Relaxed) as u64),
                ),
                (
                    "panicked",
                    Value::UInt(state.panicked.load(Ordering::Relaxed) as u64),
                ),
                (
                    "deduped_simulations",
                    Value::UInt(state.executor.jobs_simulated() as u64),
                ),
            ]),
        ),
        ("result_cache", {
            let stats = state.executor.result_cache_stats();
            Value::object(vec![
                ("hits", Value::UInt(stats.hits as u64)),
                ("misses", Value::UInt(stats.misses as u64)),
                ("trials_saved", Value::UInt(stats.trials_saved as u64)),
                ("entries", Value::UInt(stats.entries as u64)),
                ("capacity", Value::UInt(stats.capacity as u64)),
            ])
        }),
    ]);
    serde::json::to_string(&body)
}
