//! The simulation worker loop: panic isolation around every job.

use crate::queue::JobOutcome;
use crate::server::ServerState;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// Consumes the queue until it closes and drains. Every job runs under
/// `catch_unwind`, so one poisoned job maps to a typed `internal_panic`
/// outcome while the worker thread — and the shared executor with its
/// compile cache — keeps serving (the executor's cache mutex recovers from
/// poisoning; the poison-regression test in `qudit-api` pins that).
pub(crate) fn run(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        state.active.fetch_add(1, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if job.chaos_panic {
                panic!("chaos hook: deliberate job panic");
            }
            state.executor.run_with(&job.spec, &job.cancel)
        }));
        let outcome = match outcome {
            Ok(result) => JobOutcome::Done(result),
            Err(payload) => {
                state.panicked.fetch_add(1, Ordering::Relaxed);
                JobOutcome::Panicked(panic_message(payload))
            }
        };
        state.completed.fetch_add(1, Ordering::Relaxed);
        // Send may fail if the handler already timed out and dropped the
        // receiver; the job is done either way.
        let _ = job.reply.send(outcome);
        state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
