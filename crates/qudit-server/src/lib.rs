//! # qudit-server
//!
//! The fault-tolerant HTTP service front end of the qutrits workspace: it
//! accepts [`JobSpec`](qudit_api::JobSpec) JSON on `POST /v1/jobs`, runs it
//! through the `qudit-api` [`Executor`](qudit_api::Executor), and returns
//! [`ExecutionResult`](qudit_api::ExecutionResult) JSON — wrapped in four
//! robustness layers:
//!
//! 1. **Bounded queue with backpressure** — submissions beyond
//!    [`ServerConfig::queue_depth`] are refused immediately with a typed
//!    `429 overloaded` error. Load-shedding, not collapse.
//! 2. **Per-job deadlines with cooperative cancellation** — each job gets a
//!    [`CancelToken`](qudit_noise::CancelToken) (from the `X-Deadline-Ms`
//!    header, clamped to [`ServerConfig::max_deadline`]) that the
//!    trajectory-trial and density-frame loops check, so an expired job
//!    stops burning cores mid-simulation and answers `504
//!    deadline_exceeded`.
//! 3. **Panic isolation** — every job runs under `catch_unwind`; a
//!    poisoned job answers `500 internal_panic` while the worker pool and
//!    the executor's compile cache keep serving.
//! 4. **Graceful degradation and shutdown** — `GET /healthz` and
//!    `GET /readyz` report queue depth/capacity and job counters;
//!    [`Server::shutdown`] stops accepting, drains in-flight jobs under
//!    [`ServerConfig::drain_deadline`], cancels leftovers, and joins every
//!    thread.
//!
//! Below the application layer, the vendored `tiny_http` shim already
//! answers protocol faults (malformed heads `400`, slow-loris `408`,
//! oversized bodies `413`, oversized heads `431`) without involving any of
//! this crate's code. The full failure taxonomy lives in [`ServerError`].
//!
//! The fault-injection harness (`bench --bin chaos`), the load generator
//! (`bench --bin loadgen`), and this crate's integration tests drive a real
//! server through every failure class and assert it keeps answering clean
//! requests correctly afterwards.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod error;
mod queue;
mod server;
mod worker;

pub use config::ServerConfig;
pub use error::ServerError;
pub use queue::{Job, JobOutcome, JobQueue, SubmitError};
pub use server::{Server, ShutdownReport, DEADLINE_GRACE};
