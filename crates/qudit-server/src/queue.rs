//! The bounded job queue: the server's backpressure point.
//!
//! Submissions beyond the configured capacity are refused *immediately* —
//! the queue never grows without bound, so overload degrades into fast
//! typed `429` responses instead of ballooning latency and memory
//! (load-shedding, not collapse).

use futures::channel::oneshot;
use qudit_api::{ApiResult, ExecutionResult, JobSpec};
use qudit_noise::CancelToken;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One queued unit of work.
pub struct Job {
    /// The validated job description.
    pub spec: JobSpec,
    /// Cooperative cancellation handle (deadline and shutdown).
    pub cancel: CancelToken,
    /// Test-only hook: the worker panics instead of simulating. Only
    /// settable when [`ServerConfig::chaos_hooks`](crate::ServerConfig::chaos_hooks)
    /// is on.
    pub chaos_panic: bool,
    /// Completion channel back to the waiting connection handler.
    pub reply: oneshot::Sender<JobOutcome>,
}

/// What a worker reports back for one job.
pub enum JobOutcome {
    /// The job ran to an API-level result (success or typed error).
    Done(ApiResult<ExecutionResult>),
    /// The job panicked; the panic was caught and isolated.
    Panicked(String),
}

/// Why a submission was refused.
pub enum SubmitError {
    /// The queue is at capacity; the job is handed back.
    Full(Box<Job>),
    /// The queue is closed (server shutting down); the job is handed back.
    Closed(Box<Job>),
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPMC queue: handlers submit, workers pop, shutdown closes.
pub struct JobQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue refusing submissions beyond `capacity`.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current depth.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job, or refuses it without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity (backpressure),
    /// [`SubmitError::Closed`] once [`close`](JobQueue::close) was called —
    /// both return the job so the caller can answer its reply channel.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(SubmitError::Closed(Box::new(job)));
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full(Box::new(job)));
        }
        state.jobs.push_back(job);
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job. `None` once the queue is closed *and*
    /// drained — workers finish all accepted work before exiting (their
    /// cancel tokens make cancelled leftovers return quickly).
    pub fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: further submissions are refused, blocked `pop`s
    /// return once the backlog drains.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.cond.notify_all();
    }
}
