//! Server tuning knobs.

use std::time::Duration;

/// Configuration for [`Server::start`](crate::Server::start). Every limit
/// has a production-shaped default; tests shrink them to provoke the edges.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Connection-handling threads (each serves one request at a time).
    pub http_threads: usize,
    /// Simulation worker threads consuming the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity: submissions beyond this are refused
    /// immediately with a typed `overloaded` error (load-shedding).
    pub queue_depth: usize,
    /// Deadline applied to jobs that do not send an `X-Deadline-Ms` header.
    pub default_deadline: Duration,
    /// Upper clamp for client-requested deadlines.
    pub max_deadline: Duration,
    /// Largest accepted request body (bytes); beyond it the connection is
    /// answered `413` without buffering the payload.
    pub max_body_bytes: usize,
    /// Socket read timeout (slow-loris guard, per read).
    pub read_timeout: Duration,
    /// How long [`Server::shutdown`](crate::Server::shutdown) waits for
    /// queued + running jobs to finish before cancelling them.
    pub drain_deadline: Duration,
    /// Enables test-only fault hooks (the `X-Chaos: panic` header). Never
    /// enable in production configs; the chaos harness and tests use it to
    /// prove panic isolation.
    pub chaos_hooks: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            workers: 2,
            queue_depth: 64,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(120),
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
            chaos_hooks: false,
        }
    }
}
