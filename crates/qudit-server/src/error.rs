//! The service failure taxonomy: every way a request can fail, each with a
//! stable kind string and an HTTP status code.
//!
//! | variant | status | meaning |
//! |---|---|---|
//! | `BadRequest` | 400 | unreadable request (malformed JSON, bad header) |
//! | `InvalidSpec` | 422 | well-formed JSON describing an invalid job |
//! | `Overloaded` | 429 | bounded queue full — backpressure, retry later |
//! | `NotFound` | 404 | unknown path |
//! | `MethodNotAllowed` | 405 | known path, wrong method |
//! | `InternalPanic` | 500 | a job panicked; isolated, server still up |
//! | `Draining` | 503 | shutting down, not accepting new jobs |
//! | `DeadlineExceeded` | 504 | job cancelled mid-simulation at its deadline |

use qudit_api::ApiError;
use serde::Value;
use std::fmt;

/// A typed request failure; see the module table for the full taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// The request could not be read: malformed JSON, a bad header value.
    BadRequest {
        /// Human-readable description.
        reason: String,
    },
    /// The JSON parsed but describes an invalid job (bad trials count,
    /// noise at an optimizing level, infeasible density width, ...).
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// The bounded job queue is full; the request was shed immediately.
    Overloaded {
        /// Queue depth at refusal time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// Unknown path.
    NotFound,
    /// Known path, unsupported method.
    MethodNotAllowed,
    /// The job panicked. The panic was isolated to the job; the worker
    /// pool and caches keep serving.
    InternalPanic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The server is draining for shutdown and accepts no new jobs.
    Draining,
    /// The job's deadline expired; cooperative cancellation stopped the
    /// simulation mid-run.
    DeadlineExceeded,
}

impl ServerError {
    /// The HTTP status code this failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServerError::BadRequest { .. } => 400,
            ServerError::InvalidSpec { .. } => 422,
            ServerError::Overloaded { .. } => 429,
            ServerError::NotFound => 404,
            ServerError::MethodNotAllowed => 405,
            ServerError::InternalPanic { .. } => 500,
            ServerError::Draining => 503,
            ServerError::DeadlineExceeded => 504,
        }
    }

    /// The stable machine-readable kind string used in error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::BadRequest { .. } => "bad_request",
            ServerError::InvalidSpec { .. } => "invalid_spec",
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::NotFound => "not_found",
            ServerError::MethodNotAllowed => "method_not_allowed",
            ServerError::InternalPanic { .. } => "internal_panic",
            ServerError::Draining => "draining",
            ServerError::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// The JSON error body: `{"error":{"kind":...,"message":...}}`.
    pub fn to_json(&self) -> String {
        let body = Value::object(vec![(
            "error",
            Value::object(vec![
                ("kind", Value::Str(self.kind().to_string())),
                ("message", Value::Str(self.to_string())),
            ]),
        )]);
        serde::json::to_string(&body)
    }

    /// The full HTTP response for this failure.
    pub fn to_response(&self) -> tiny_http::Response {
        tiny_http::Response::from_string(self.to_json())
            .with_status_code(self.status())
            .with_header("Content-Type", "application/json")
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServerError::InvalidSpec { reason } => write!(f, "invalid job spec: {reason}"),
            ServerError::Overloaded { depth, capacity } => {
                write!(f, "job queue full ({depth}/{capacity}); retry later")
            }
            ServerError::NotFound => write!(f, "no such endpoint"),
            ServerError::MethodNotAllowed => write!(f, "method not allowed on this endpoint"),
            ServerError::InternalPanic { message } => {
                write!(f, "job panicked (isolated): {message}")
            }
            ServerError::Draining => write!(f, "server is draining for shutdown"),
            ServerError::DeadlineExceeded => {
                write!(f, "deadline exceeded; simulation cancelled mid-run")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ApiError> for ServerError {
    fn from(e: ApiError) -> Self {
        match e {
            ApiError::Wire { reason } => ServerError::BadRequest { reason },
            ApiError::DeadlineExceeded => ServerError::DeadlineExceeded,
            other => ServerError::InvalidSpec {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_kind_and_sane_status() {
        let all = [
            ServerError::BadRequest { reason: "x".into() },
            ServerError::InvalidSpec { reason: "x".into() },
            ServerError::Overloaded {
                depth: 8,
                capacity: 8,
            },
            ServerError::NotFound,
            ServerError::MethodNotAllowed,
            ServerError::InternalPanic {
                message: "x".into(),
            },
            ServerError::Draining,
            ServerError::DeadlineExceeded,
        ];
        let mut kinds: Vec<&str> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "kinds must be unique");
        for e in &all {
            assert!((400..=599).contains(&e.status()), "{e:?}");
            let body = e.to_json();
            assert!(body.contains(e.kind()), "{body}");
        }
    }

    #[test]
    fn wire_errors_map_to_400_and_spec_errors_to_422() {
        let wire = ApiError::Wire {
            reason: "bad json".into(),
        };
        assert_eq!(ServerError::from(wire).status(), 400);
        let spec = ApiError::Spec {
            reason: "trials".into(),
        };
        assert_eq!(ServerError::from(spec).status(), 422);
        assert_eq!(ServerError::from(ApiError::DeadlineExceeded).status(), 504);
    }

    #[test]
    fn error_body_escapes_hostile_messages() {
        let e = ServerError::BadRequest {
            reason: "quote \" backslash \\ newline \n".into(),
        };
        let body = e.to_json();
        // Must stay parseable JSON no matter what the reason contains.
        assert!(serde::json::parse(&body).is_ok(), "{body}");
    }
}
