//! The service entry point.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--http-threads N]
//!       [--queue-depth N] [--deadline-ms MS] [--max-deadline-ms MS]
//!       [--drain-ms MS] [--chaos-hooks]
//! ```
//!
//! Prints `listening on <addr>` once ready, then serves until stdin
//! reaches EOF or a line `shutdown` arrives — the SIGTERM stand-in
//! (`std` has no signal handling; process supervisors and the CI job close
//! the child's stdin to request a graceful drain). Exits 0 after a clean
//! drain.

use qudit_server::{Server, ServerConfig};
use std::io::BufRead;
use std::time::Duration;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8473".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--http-threads" => {
                config.http_threads = parse(&value("--http-threads"), "--http-threads");
            }
            "--queue-depth" => {
                config.queue_depth = parse(&value("--queue-depth"), "--queue-depth");
            }
            "--deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(parse(&value("--deadline-ms"), "--deadline-ms"));
            }
            "--max-deadline-ms" => {
                config.max_deadline =
                    Duration::from_millis(parse(&value("--max-deadline-ms"), "--max-deadline-ms"));
            }
            "--drain-ms" => {
                config.drain_deadline =
                    Duration::from_millis(parse(&value("--drain-ms"), "--drain-ms"));
            }
            "--chaos-hooks" => config.chaos_hooks = true,
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--http-threads N] \
                     [--queue-depth N] [--deadline-ms MS] [--max-deadline-ms MS] \
                     [--drain-ms MS] [--chaos-hooks]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => die(&format!("failed to start: {e}")),
    };
    println!("listening on {}", server.addr());

    // Serve until the supervisor closes stdin (or sends `shutdown`).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    eprintln!("draining...");
    let report = server.shutdown();
    eprintln!(
        "shutdown: drained={} completed={} panicked={}",
        report.drained, report.jobs_completed, report.jobs_panicked
    );
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {raw:?}")))
}

fn die(message: &str) -> ! {
    eprintln!("serve: {message}");
    std::process::exit(2);
}
