//! Operations: gates applied to specific qudits with optional control
//! conditions.
//!
//! A control is a `(qudit, activation level)` pair. The paper's circuits use
//! |1⟩-activated controls (drawn red), |2⟩-activated controls (blue) and, for
//! the incrementer, |0⟩-activated controls; the same machinery also covers
//! ordinary qubit controls.

use crate::error::{CircuitError, CircuitResult};
use crate::gate::Gate;
use qudit_core::{gates, CMatrix};
use std::fmt;

/// A control condition: activate when `qudit` is in basis state `level`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Control {
    /// The controlling qudit's index within the circuit register.
    pub qudit: usize,
    /// The basis level on which the control activates.
    pub level: usize,
}

impl Control {
    /// Creates a control activating on the given level.
    pub fn new(qudit: usize, level: usize) -> Self {
        Control { qudit, level }
    }

    /// A conventional qubit-style control activating on |1⟩.
    pub fn on_one(qudit: usize) -> Self {
        Control { qudit, level: 1 }
    }

    /// A qutrit control activating on |2⟩ (the paper's blue controls).
    pub fn on_two(qudit: usize) -> Self {
        Control { qudit, level: 2 }
    }

    /// A control activating on |0⟩.
    pub fn on_zero(qudit: usize) -> Self {
        Control { qudit, level: 0 }
    }
}

/// A gate applied to specific target qudits, conditioned on zero or more
/// controls.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    gate: Gate,
    controls: Vec<Control>,
    targets: Vec<usize>,
}

impl Operation {
    /// Creates an operation.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of targets does not match the gate, if
    /// any qudit appears twice (among targets and controls combined), or if a
    /// control level is not below the gate's qudit dimension.
    pub fn new(gate: Gate, controls: Vec<Control>, targets: Vec<usize>) -> CircuitResult<Self> {
        if targets.len() != gate.num_targets() {
            return Err(CircuitError::GateShapeMismatch {
                expected: gate.num_targets(),
                actual: targets.len(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for &t in &targets {
            if !seen.insert(t) {
                return Err(CircuitError::DuplicateQudit { qudit: t });
            }
        }
        for c in &controls {
            if !seen.insert(c.qudit) {
                return Err(CircuitError::DuplicateQudit { qudit: c.qudit });
            }
            if c.level >= gate.dim() {
                return Err(CircuitError::InvalidControlLevel {
                    level: c.level,
                    dimension: gate.dim(),
                });
            }
        }
        Ok(Operation {
            gate,
            controls,
            targets,
        })
    }

    /// Creates an uncontrolled operation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Operation::new`].
    pub fn uncontrolled(gate: Gate, targets: Vec<usize>) -> CircuitResult<Self> {
        Operation::new(gate, Vec::new(), targets)
    }

    /// The underlying gate.
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The control conditions.
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// The target qudits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// The control conditions as `(qudit, activation level)` pairs — the
    /// shape the simulator's apply-plan builder consumes.
    pub fn control_pairs(&self) -> Vec<(usize, usize)> {
        self.controls.iter().map(|c| (c.qudit, c.level)).collect()
    }

    /// All qudits touched by the operation: controls first (in order), then
    /// targets.
    pub fn qudits(&self) -> Vec<usize> {
        self.controls
            .iter()
            .map(|c| c.qudit)
            .chain(self.targets.iter().copied())
            .collect()
    }

    /// The number of qudits this operation touches (controls + targets).
    /// This is the operation's *arity* for cost and noise purposes.
    pub fn arity(&self) -> usize {
        self.controls.len() + self.targets.len()
    }

    /// Returns the inverse operation (same controls/targets, adjoint gate).
    pub fn inverse(&self) -> Operation {
        Operation {
            gate: self.gate.inverse(),
            controls: self.controls.clone(),
            targets: self.targets.clone(),
        }
    }

    /// The full unitary matrix of the operation over its touched qudits,
    /// ordered controls-then-targets (most significant first).
    pub fn full_matrix(&self) -> CMatrix {
        if self.controls.is_empty() {
            return self.gate.matrix().clone();
        }
        let control_spec: Vec<(usize, usize)> = self
            .controls
            .iter()
            .map(|c| (self.gate.dim(), c.level))
            .collect();
        gates::controlled_matrix_multi(&control_spec, self.gate.matrix())
    }

    /// Returns `true` if the operation is classical (its gate is a basis
    /// permutation); controlled permutations are still permutations.
    pub fn is_classical(&self) -> bool {
        self.gate.is_classical()
    }

    /// Applies the operation to a classical register of digits in place.
    ///
    /// Digits are indexed by qudit; only the targets can change, and only
    /// when every control matches its activation level.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotClassical`] if the gate is not a basis
    /// permutation, or [`CircuitError::InvalidClassicalInput`] if the
    /// register is too short or contains digits `>= dim`.
    pub fn apply_classical(&self, digits: &mut [usize]) -> CircuitResult<()> {
        let dim = self.gate.dim();
        for &q in self.qudits().iter() {
            if q >= digits.len() {
                return Err(CircuitError::InvalidClassicalInput {
                    reason: format!("register of length {} has no qudit {q}", digits.len()),
                });
            }
            if digits[q] >= dim {
                return Err(CircuitError::InvalidClassicalInput {
                    reason: format!("digit {} at qudit {q} exceeds dimension {dim}", digits[q]),
                });
            }
        }
        let perm = self
            .gate
            .as_permutation()
            .ok_or_else(|| CircuitError::NotClassical {
                gate: self.gate.name().to_string(),
            })?;
        if !self.controls.iter().all(|c| digits[c.qudit] == c.level) {
            return Ok(());
        }
        // Encode the target digits into a flat index, permute, decode.
        let mut idx = 0usize;
        for &t in &self.targets {
            idx = idx * dim + digits[t];
        }
        let mut out = perm[idx];
        for &t in self.targets.iter().rev() {
            digits[t] = out % dim;
            out /= dim;
        }
        Ok(())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.controls.is_empty() {
            write!(f, "C[")?;
            for (i, c) in self.controls.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "q{}={}", c.qudit, c.level)?;
            }
            write!(f, "] ")?;
        }
        write!(f, "{}(", self.gate.name())?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_counts_controls_and_targets() {
        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_one(0), Control::on_two(1)],
            vec![2],
        )
        .unwrap();
        assert_eq!(op.arity(), 3);
        assert_eq!(op.qudits(), vec![0, 1, 2]);
    }

    #[test]
    fn rejects_duplicate_qudits() {
        let err = Operation::new(Gate::x(3), vec![Control::on_one(1)], vec![1]).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQudit { qudit: 1 });
    }

    #[test]
    fn rejects_control_level_beyond_dimension() {
        let err = Operation::new(Gate::x(2), vec![Control::on_two(0)], vec![1]).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidControlLevel { .. }));
    }

    #[test]
    fn classical_application_respects_controls() {
        // |1>-controlled X+1 from Figure 4: elevates the target by 1 mod 3
        // only when the control is |1>.
        let op = Operation::new(Gate::increment(3), vec![Control::on_one(0)], vec![1]).unwrap();
        let mut reg = vec![1, 1];
        op.apply_classical(&mut reg).unwrap();
        assert_eq!(reg, vec![1, 2]);

        let mut reg = vec![0, 1];
        op.apply_classical(&mut reg).unwrap();
        assert_eq!(reg, vec![0, 1]);

        let mut reg = vec![2, 2];
        op.apply_classical(&mut reg).unwrap();
        assert_eq!(reg, vec![2, 2]);
    }

    #[test]
    fn classical_application_of_two_target_gate() {
        let op = Operation::uncontrolled(Gate::swap(3), vec![0, 2]).unwrap();
        let mut reg = vec![2, 1, 0];
        op.apply_classical(&mut reg).unwrap();
        assert_eq!(reg, vec![0, 1, 2]);
    }

    #[test]
    fn non_classical_gate_errors_in_classical_mode() {
        let op = Operation::uncontrolled(Gate::h(3), vec![0]).unwrap();
        let mut reg = vec![0];
        assert!(matches!(
            op.apply_classical(&mut reg),
            Err(CircuitError::NotClassical { .. })
        ));
    }

    #[test]
    fn full_matrix_of_controlled_op_is_unitary() {
        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_one(0), Control::on_two(1)],
            vec![2],
        )
        .unwrap();
        let m = op.full_matrix();
        assert_eq!(m.rows(), 27);
        assert!(m.is_unitary(1e-10));
    }

    #[test]
    fn inverse_of_inverse_is_original_matrix() {
        let op = Operation::new(Gate::increment(3), vec![Control::on_two(0)], vec![1]).unwrap();
        let back = op.inverse().inverse();
        assert!(back.full_matrix().approx_eq(&op.full_matrix(), 1e-12));
    }

    #[test]
    fn display_mentions_controls_and_targets() {
        let op = Operation::new(Gate::x(3), vec![Control::on_two(4)], vec![7]).unwrap();
        let s = op.to_string();
        assert!(s.contains("q4=2"));
        assert!(s.contains("q7"));
    }
}
