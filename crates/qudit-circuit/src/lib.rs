//! # qudit-circuit
//!
//! A circuit intermediate representation for `d`-level qudits, mirroring the
//! abstractions the paper builds on top of Google's Cirq: named gates,
//! operations with per-control activation levels, circuits, as-early-as-
//! possible moment scheduling, cost analysis, and fast classical
//! (basis-state) simulation for exhaustive verification.
//!
//! ## Example
//!
//! ```
//! use qudit_circuit::{classical, Circuit, Control, Gate, Schedule};
//!
//! // The paper's Figure 4: a Toffoli on qubit inputs, implemented with
//! // three two-qutrit gates by borrowing the |2⟩ state.
//! let mut toffoli = Circuit::new(3, 3);
//! toffoli.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
//! toffoli.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])?;
//! toffoli.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])?;
//!
//! assert_eq!(Schedule::asap(&toffoli).depth(), 3);
//! assert_eq!(classical::simulate_classical(&toffoli, &[1, 1, 0])?, vec![1, 1, 1]);
//! assert_eq!(classical::simulate_classical(&toffoli, &[1, 0, 0])?, vec![1, 0, 0]);
//! # Ok::<(), qudit_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod circuit;
pub mod classical;
pub mod cost;
pub mod decompose;
mod error;
mod gate;
mod operation;
pub mod passes;
pub mod routing;
mod schedule;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod topology;

pub use circuit::Circuit;
pub use cost::{analyze, analyze_default, CircuitCosts, CostWeights};
pub use decompose::decompose_operation;
pub use error::{CircuitError, CircuitResult};
pub use gate::Gate;
pub use operation::{Control, Operation};
pub use passes::{DecompositionPass, KernelClass, PassLevel, ResourceReport, RoutedCosts};
pub use routing::{RoutingPass, RoutingSummary};
pub use schedule::{
    circuit_depth, Frame, FrameDuration, FrameSchedule, Moment, MomentDuration, Schedule,
};
pub use topology::{Topology, TopologyKind};
