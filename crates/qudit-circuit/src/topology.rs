//! Device connectivity graphs for topology-constrained compilation.
//!
//! The paper's resource accounting (and everything downstream of it in this
//! workspace) implicitly assumes an all-to-all device: any two qudits can
//! interact directly. Real hardware is connectivity-constrained, so a
//! [`Topology`] describes which pairs of physical sites support a two-qudit
//! gate, and the [`RoutingPass`](crate::RoutingPass) maps logical qudits
//! onto sites and inserts qudit-SWAPs to make every interaction local.
//!
//! Four standard families are provided — linear chain, ring, 2-D grid and a
//! heavy-hex row (hexagon chain with a site on every edge, the degree-≤3
//! pattern of IBM's heavy-hex lattices) — plus the explicit all-to-all
//! graph, which routing treats as the identity. Each site may carry an
//! optional *quality* weight (a relative error-rate multiplier derived from
//! per-site noise-model parameters; 1.0 is nominal, larger is worse) that
//! noise-aware placement consults to steer hot qudits onto good sites.

use crate::error::{CircuitError, CircuitResult};
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Which constructor family a [`Topology`] came from. The kind (plus its
/// parameters) fully determines the adjacency structure, so equality and
/// hashing key on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Every pair of sites is connected (the implicit default device).
    AllToAll,
    /// A chain: site `i` neighbours `i±1`.
    Linear,
    /// A cycle: the chain with the ends joined.
    Ring,
    /// A `rows × cols` rectangular lattice, row-major site numbering.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A row of `cells` edge-sharing hexagons with an extra site on every
    /// edge ("heavy" hexagons): degree ≤ 3 everywhere, `12 + 9·(cells−1)`
    /// sites.
    HeavyHex {
        /// Number of hexagonal cells in the row.
        cells: usize,
    },
}

impl TopologyKind {
    /// The family's stable wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::AllToAll => "all-to-all",
            TopologyKind::Linear => "linear",
            TopologyKind::Ring => "ring",
            TopologyKind::Grid { .. } => "grid",
            TopologyKind::HeavyHex { .. } => "heavy-hex",
        }
    }
}

/// A device connectivity graph: `sites` physical qudits and the undirected
/// edges on which two-qudit gates are allowed, plus optional per-site
/// quality weights for noise-aware placement.
///
/// Construct through the family constructors ([`Topology::linear`],
/// [`Topology::ring`], [`Topology::grid`], [`Topology::heavy_hex`],
/// [`Topology::all_to_all`]); every constructed graph is connected, so
/// [`Topology::distance`] and [`Topology::shortest_path`] are total.
#[derive(Clone, Debug)]
pub struct Topology {
    kind: TopologyKind,
    sites: usize,
    /// Sorted neighbour lists, index = site.
    adjacency: Vec<Vec<usize>>,
    /// Per-site error-rate multipliers; empty = uniform (all 1.0).
    site_quality: Vec<f64>,
    /// Per-edge error-rate multipliers, aligned with [`Topology::edges`]
    /// order (each edge once, `u < v`, sorted by `u` then `v`); empty =
    /// uniform (all 1.0).
    edge_quality: Vec<f64>,
}

impl Topology {
    /// The fully connected device on `sites` qudits — routing on it is the
    /// identity.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when `sites` is zero.
    pub fn all_to_all(sites: usize) -> CircuitResult<Topology> {
        check_sites(sites)?;
        let adjacency = (0..sites)
            .map(|s| (0..sites).filter(|&t| t != s).collect())
            .collect();
        Ok(Topology {
            kind: TopologyKind::AllToAll,
            sites,
            adjacency,
            site_quality: Vec::new(),
            edge_quality: Vec::new(),
        })
    }

    /// A linear chain of `sites` qudits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when `sites` is zero.
    pub fn linear(sites: usize) -> CircuitResult<Topology> {
        check_sites(sites)?;
        let edges: Vec<(usize, usize)> = (1..sites).map(|s| (s - 1, s)).collect();
        Ok(Topology::from_edges(TopologyKind::Linear, sites, &edges))
    }

    /// A ring of `sites` qudits (the chain with the ends joined; for fewer
    /// than three sites this degenerates to the chain).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when `sites` is zero.
    pub fn ring(sites: usize) -> CircuitResult<Topology> {
        check_sites(sites)?;
        let mut edges: Vec<(usize, usize)> = (1..sites).map(|s| (s - 1, s)).collect();
        if sites > 2 {
            edges.push((sites - 1, 0));
        }
        Ok(Topology::from_edges(TopologyKind::Ring, sites, &edges))
    }

    /// A `rows × cols` rectangular grid, row-major site numbering: site
    /// `(r, c)` is `r * cols + c` and neighbours its horizontal and
    /// vertical lattice neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when either dimension
    /// is zero.
    pub fn grid(rows: usize, cols: usize) -> CircuitResult<Topology> {
        if rows == 0 || cols == 0 {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!("a {rows}x{cols} grid topology has no sites"),
            });
        }
        let site = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((site(r, c), site(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((site(r, c), site(r + 1, c)));
                }
            }
        }
        Ok(Topology::from_edges(
            TopologyKind::Grid { rows, cols },
            rows * cols,
            &edges,
        ))
    }

    /// A heavy-hex row of `cells` hexagons: a chain of edge-sharing
    /// hexagons with one extra site subdividing every edge, giving the
    /// degree-≤3 connectivity pattern of heavy-hex devices. Site count is
    /// `12 + 9·(cells − 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when `cells` is zero.
    pub fn heavy_hex(cells: usize) -> CircuitResult<Topology> {
        if cells == 0 {
            return Err(CircuitError::IncompatibleCircuits {
                reason: "a heavy-hex topology needs at least one cell".to_string(),
            });
        }
        // Corner graph: hexagon 0 is the 6-cycle 0–1–2–3–4–5; each later
        // cell attaches a 4-vertex path across the previous cell's shared
        // edge, forming the next 6-cycle.
        let mut corner_edges: Vec<(usize, usize)> =
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)];
        let mut corners = 6usize;
        let mut shared = (2, 3); // the rightmost edge of the previous cell
        for _ in 1..cells {
            let (top, bottom) = shared;
            let base = corners;
            corners += 4;
            corner_edges.push((top, base));
            corner_edges.push((base, base + 1));
            corner_edges.push((base + 1, base + 2));
            corner_edges.push((base + 2, base + 3));
            corner_edges.push((base + 3, bottom));
            shared = (base + 1, base + 2);
        }
        // "Heavy": subdivide every corner edge with a new site.
        let mut sites = corners;
        let mut edges = Vec::with_capacity(corner_edges.len() * 2);
        for (u, v) in corner_edges {
            let mid = sites;
            sites += 1;
            edges.push((u, mid));
            edges.push((mid, v));
        }
        Ok(Topology::from_edges(
            TopologyKind::HeavyHex { cells },
            sites,
            &edges,
        ))
    }

    fn from_edges(kind: TopologyKind, sites: usize, edges: &[(usize, usize)]) -> Topology {
        let mut adjacency = vec![Vec::new(); sites];
        for &(u, v) in edges {
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        for neighbours in &mut adjacency {
            neighbours.sort_unstable();
            neighbours.dedup();
        }
        Topology {
            kind,
            sites,
            adjacency,
            site_quality: Vec::new(),
            edge_quality: Vec::new(),
        }
    }

    /// Attaches per-site quality weights (relative error-rate multipliers;
    /// 1.0 is nominal, larger is worse). Noise-aware placement prefers
    /// low-weight sites for the most interaction-heavy logical qudits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when the weight count
    /// does not match the site count or a weight is non-finite or ≤ 0.
    pub fn with_site_quality(mut self, quality: Vec<f64>) -> CircuitResult<Topology> {
        if quality.len() != self.sites {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!(
                    "{} site-quality weight(s) for a {}-site topology",
                    quality.len(),
                    self.sites
                ),
            });
        }
        if let Some(&bad) = quality.iter().find(|q| !q.is_finite() || **q <= 0.0) {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!("site-quality weight {bad} is not a positive finite number"),
            });
        }
        self.site_quality = quality;
        Ok(self)
    }

    /// Attaches per-edge quality weights (relative error-rate multipliers
    /// for two-qudit gates executed on that edge; 1.0 is nominal, larger is
    /// worse), aligned with [`Topology::edges`] order. Noise-aware routing
    /// steers SWAP chains away from bad edges, and the noise backends scale
    /// the two-qudit depolarizing probability of gates on an edge by its
    /// weight.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] when the weight count
    /// does not match the edge count or a weight is non-finite or ≤ 0.
    pub fn with_edge_quality(mut self, quality: Vec<f64>) -> CircuitResult<Topology> {
        let edge_count = self.edges().len();
        if quality.len() != edge_count {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!(
                    "{} edge-quality weight(s) for a topology with {} edge(s)",
                    quality.len(),
                    edge_count
                ),
            });
        }
        if let Some(&bad) = quality.iter().find(|q| !q.is_finite() || **q <= 0.0) {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!("edge-quality weight {bad} is not a positive finite number"),
            });
        }
        self.edge_quality = quality;
        Ok(self)
    }

    /// Which constructor family this topology belongs to.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The number of physical sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Whether this is the fully connected device (routing is the identity).
    pub fn is_all_to_all(&self) -> bool {
        self.kind == TopologyKind::AllToAll
    }

    /// The per-site quality weights; empty means uniform.
    pub fn site_quality(&self) -> &[f64] {
        &self.site_quality
    }

    /// The quality weight of one site (1.0 when uniform).
    pub fn quality(&self, site: usize) -> f64 {
        self.site_quality.get(site).copied().unwrap_or(1.0)
    }

    /// The per-edge quality weights, aligned with [`Topology::edges`]
    /// order; empty means uniform.
    pub fn edge_quality(&self) -> &[f64] {
        &self.edge_quality
    }

    /// The quality weight of the edge between two adjacent sites (1.0 when
    /// uniform or the sites are not adjacent).
    pub fn edge_quality_between(&self, a: usize, b: usize) -> f64 {
        if self.edge_quality.is_empty() {
            return 1.0;
        }
        let (u, v) = (a.min(b), a.max(b));
        self.edges()
            .iter()
            .position(|&e| e == (u, v))
            .and_then(|i| self.edge_quality.get(i).copied())
            .unwrap_or(1.0)
    }

    /// The sorted neighbour list of `site`.
    pub fn neighbors(&self, site: usize) -> &[usize] {
        &self.adjacency[site]
    }

    /// Whether a two-qudit gate between `a` and `b` is directly allowed.
    pub fn is_adjacent(&self, a: usize, b: usize) -> bool {
        a != b && self.adjacency[a].binary_search(&b).is_ok()
    }

    /// The undirected edge list, each edge once with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (u, neighbours) in self.adjacency.iter().enumerate() {
            for &v in neighbours {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    /// The hop distance between two sites (0 for `a == b`). Total because
    /// every constructed topology is connected.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.bfs(a)[b].expect("constructed topologies are connected")
    }

    /// A shortest site path from `a` to `b`, inclusive of both endpoints.
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        if a == b {
            return vec![a];
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.sites];
        let mut seen = vec![false; self.sites];
        let mut queue = VecDeque::new();
        seen[a] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            if u == b {
                break;
            }
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        let mut path = vec![b];
        let mut cur = b;
        while let Some(p) = prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], a, "constructed topologies are connected");
        path
    }

    /// BFS distances from `from` to every site.
    pub(crate) fn bfs(&self, from: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.sites];
        let mut queue = VecDeque::new();
        dist[from] = Some(0);
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            let d = dist[u].expect("enqueued sites have a distance");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs hop distances (`sites` BFS sweeps) — the routing pass
    /// precomputes this once per circuit.
    pub(crate) fn all_distances(&self) -> Vec<Vec<usize>> {
        (0..self.sites)
            .map(|s| {
                self.bfs(s)
                    .into_iter()
                    .map(|d| d.expect("constructed topologies are connected"))
                    .collect()
            })
            .collect()
    }
}

fn check_sites(sites: usize) -> CircuitResult<()> {
    if sites == 0 {
        return Err(CircuitError::IncompatibleCircuits {
            reason: "a topology needs at least one site".to_string(),
        });
    }
    Ok(())
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TopologyKind::Grid { rows, cols } => write!(f, "grid-{rows}x{cols}"),
            TopologyKind::HeavyHex { cells } => write!(f, "heavy-hex-{cells}"),
            kind => write!(f, "{}-{}", kind.name(), self.sites),
        }
    }
}

// Equality and hashing key on the constructor parameters (which determine
// the adjacency) plus the quality weights by bit pattern, so a `Topology`
// can key the executor's compilation cache.
impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        let bitwise = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        self.kind == other.kind
            && self.sites == other.sites
            && bitwise(&self.site_quality, &other.site_quality)
            && bitwise(&self.edge_quality, &other.edge_quality)
    }
}

impl Eq for Topology {}

impl Hash for Topology {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
        self.sites.hash(state);
        for q in &self.site_quality {
            q.to_bits().hash(state);
        }
        // Length-prefix the edge weights so (site=[a], edge=[]) and
        // (site=[], edge=[a]) cannot collide.
        self.edge_quality.len().hash(state);
        for q in &self.edge_quality {
            q.to_bits().hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_adjacency_and_distance() {
        let t = Topology::linear(5).unwrap();
        assert_eq!(t.sites(), 5);
        assert!(t.is_adjacent(0, 1));
        assert!(!t.is_adjacent(0, 2));
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.shortest_path(0, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::ring(6).unwrap();
        assert!(t.is_adjacent(5, 0));
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.distance(0, 3), 3);
    }

    #[test]
    fn small_rings_degenerate_to_chains_without_duplicate_edges() {
        let t = Topology::ring(2).unwrap();
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.edges(), vec![(0, 1)]);
    }

    #[test]
    fn grid_connects_lattice_neighbours() {
        let t = Topology::grid(2, 3).unwrap();
        assert_eq!(t.sites(), 6);
        assert!(t.is_adjacent(0, 1)); // (0,0)-(0,1)
        assert!(t.is_adjacent(0, 3)); // (0,0)-(1,0)
        assert!(!t.is_adjacent(0, 4)); // no diagonals
        assert_eq!(t.distance(0, 5), 3);
    }

    #[test]
    fn heavy_hex_row_has_the_documented_size_and_degree_bound() {
        for cells in 1..4 {
            let t = Topology::heavy_hex(cells).unwrap();
            assert_eq!(t.sites(), 12 + 9 * (cells - 1), "cells={cells}");
            let max_degree = (0..t.sites()).map(|s| t.neighbors(s).len()).max().unwrap();
            assert!(max_degree <= 3, "cells={cells}: degree {max_degree}");
            // Connected: every distance is defined (distance() would panic
            // otherwise).
            for s in 0..t.sites() {
                let _ = t.distance(0, s);
            }
        }
    }

    #[test]
    fn all_to_all_has_unit_distances() {
        let t = Topology::all_to_all(4).unwrap();
        assert!(t.is_all_to_all());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.distance(a, b), usize::from(a != b));
            }
        }
    }

    #[test]
    fn shortest_paths_have_consistent_lengths() {
        for t in [
            Topology::linear(7).unwrap(),
            Topology::ring(7).unwrap(),
            Topology::grid(3, 3).unwrap(),
            Topology::heavy_hex(2).unwrap(),
        ] {
            for a in 0..t.sites() {
                for b in 0..t.sites() {
                    let path = t.shortest_path(a, b);
                    assert_eq!(path.len(), t.distance(a, b) + 1, "{t}: {a}->{b}");
                    assert_eq!(path[0], a);
                    assert_eq!(*path.last().unwrap(), b);
                    for pair in path.windows(2) {
                        assert!(t.is_adjacent(pair[0], pair[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn constructors_reject_empty_graphs() {
        assert!(Topology::linear(0).is_err());
        assert!(Topology::ring(0).is_err());
        assert!(Topology::grid(0, 3).is_err());
        assert!(Topology::grid(2, 0).is_err());
        assert!(Topology::heavy_hex(0).is_err());
        assert!(Topology::all_to_all(0).is_err());
    }

    #[test]
    fn site_quality_is_validated_and_keys_equality() {
        let t = Topology::linear(3).unwrap();
        assert!(t.clone().with_site_quality(vec![1.0, 2.0]).is_err());
        assert!(t
            .clone()
            .with_site_quality(vec![1.0, f64::NAN, 1.0])
            .is_err());
        assert!(t.clone().with_site_quality(vec![1.0, 0.0, 1.0]).is_err());
        let weighted = t.clone().with_site_quality(vec![1.0, 2.0, 1.0]).unwrap();
        assert_eq!(weighted.quality(1), 2.0);
        assert_ne!(weighted, t);
        assert_eq!(
            weighted,
            Topology::linear(3)
                .unwrap()
                .with_site_quality(vec![1.0, 2.0, 1.0])
                .unwrap()
        );
    }

    #[test]
    fn edge_quality_is_validated_and_keys_equality() {
        let t = Topology::linear(3).unwrap(); // edges (0,1), (1,2)
        assert!(t.clone().with_edge_quality(vec![1.0]).is_err());
        assert!(t.clone().with_edge_quality(vec![1.0, f64::NAN]).is_err());
        assert!(t.clone().with_edge_quality(vec![1.0, -2.0]).is_err());
        let weighted = t.clone().with_edge_quality(vec![1.0, 3.0]).unwrap();
        assert_eq!(weighted.edge_quality_between(1, 2), 3.0);
        assert_eq!(weighted.edge_quality_between(2, 1), 3.0);
        assert_eq!(weighted.edge_quality_between(0, 1), 1.0);
        assert_eq!(t.edge_quality_between(0, 1), 1.0, "uniform default");
        assert_ne!(weighted, t);
        assert_eq!(
            weighted,
            Topology::linear(3)
                .unwrap()
                .with_edge_quality(vec![1.0, 3.0])
                .unwrap()
        );
    }
}
