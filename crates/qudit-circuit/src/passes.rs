//! A pass-based circuit compiler: IR transformation pipeline feeding the
//! simulation backends.
//!
//! The paper's headline claims are *resource* claims — depth and two-qudit
//! gate count — and its simulations replay every gate of the raw op list as
//! one kernel invocation. This module turns the circuit into a compiler IR
//! and runs a configurable pipeline of transformation passes over it before
//! anything is compiled to kernels:
//!
//! * [`CancellationPass`] removes adjacent inverse pairs (`U` then `U†` with
//!   no intervening operation on the same qudits, e.g. an increment
//!   immediately undone by a decrement) and outright identity operations;
//! * [`FusionPass`] composes runs of adjacent same-support gates — identical
//!   targets and control conditions, one or two targets — into one gate
//!   (`H` then `X` becomes the single matrix `X·H`; a pair of controlled
//!   two-qudit gates becomes one controlled product), and drops the run
//!   entirely when the product is the identity;
//! * [`RepackPass`] re-derives the as-early-as-possible [`Schedule`] after
//!   removals, so the depth the analyzer reports is the depth of the
//!   *transformed* circuit;
//! * [`SpecializePass`] tags every operation with its [`KernelClass`]
//!   (identity / permutation / diagonal / dense), the structure the
//!   simulator's plan builder uses to pick the cheap kernel.
//!
//! ## Pass levels and noise semantics
//!
//! Fusing or cancelling gates changes how many error channels a noisy
//! simulation charges, so optimization must never silently leak into
//! fidelity results. Two explicit [`PassLevel`]s pin the semantics:
//!
//! * [`PassLevel::NoisePreserving`] — only transformations that leave the
//!   schedule *and* the operation list unchanged are allowed: fusion is
//!   restricted to operations sharing a moment (a moment touches each qudit
//!   at most once, so nothing ever fuses) and cancellation/repacking do not
//!   run. The output circuit is guaranteed operation-for-operation identical
//!   to the input, so noisy fidelities are bit-identical with and without
//!   the pipeline. Both noise backends compile through this level.
//! * [`PassLevel::Ideal`] — the full pipeline, valid for noise-free runs
//!   only, where unitary equivalence is the only obligation.
//!
//! [`ResourceReport`] measures gate counts, two-qudit counts and depth
//! before and after the pipeline; the bench binaries regenerating the
//! paper's figures produce their count columns through it.

use crate::circuit::Circuit;
use crate::cost::{analyze, CircuitCosts, CostWeights};
use crate::decompose::decompose_operation;
use crate::gate::Gate;
use crate::operation::Operation;
use crate::routing::{RoutingPass, RoutingSummary};
use crate::schedule::{Frame, FrameDuration, FrameSchedule, Schedule};
use crate::topology::Topology;
use std::fmt;

/// Tolerance for structural matrix classification (permutation / diagonal /
/// identity detection) and inverse-pair recognition. Shared with the
/// simulator's kernel selection so the compiler's tags and the kernels
/// actually dispatched can never disagree.
pub const KERNEL_CLASS_TOL: f64 = 1e-12;

/// The structural class of an operation's gate matrix, which determines the
/// cheapest kernel the simulator can apply it with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// The identity: applying the operation is a no-op.
    Identity,
    /// A basis permutation (classical gate): amplitudes move, never mix.
    Permutation,
    /// A diagonal matrix (phase-type gate): each amplitude is scaled
    /// independently, no gather/scatter.
    Diagonal,
    /// A general dense matrix.
    Dense,
}

impl KernelClass {
    /// Classifies a gate matrix. Controls do not change the class — the
    /// kernel applies control conditions by restricting which amplitude
    /// groups it visits, orthogonally to the matrix structure.
    pub fn of_matrix(matrix: &qudit_core::CMatrix) -> KernelClass {
        if let Some(perm) = matrix.as_permutation(KERNEL_CLASS_TOL) {
            if perm.iter().enumerate().all(|(i, &p)| i == p) {
                KernelClass::Identity
            } else {
                KernelClass::Permutation
            }
        } else if matrix.is_diagonal(KERNEL_CLASS_TOL) {
            KernelClass::Diagonal
        } else {
            KernelClass::Dense
        }
    }

    /// Classifies an operation by its gate matrix.
    pub fn of_operation(op: &Operation) -> KernelClass {
        KernelClass::of_matrix(op.gate().matrix())
    }
}

/// How aggressively the pipeline may transform the circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassLevel {
    /// Leave the operation list and schedule exactly as-is; only
    /// within-moment fusion (a provable no-op under the moment invariant)
    /// and specialization tagging run. Noisy fidelity results are
    /// bit-identical with and without the pipeline. This is the level the
    /// deprecated virtual-expansion noise shim compiles through.
    NoisePreserving,
    /// Physical lowering: every ≥3-qudit operation is expanded into its
    /// Di & Wei two-qudit realisation ([`DecompositionPass`]), and a
    /// [`FrameSchedule`] records which lowered operations belong to each
    /// original logical moment together with the frame's *measured*
    /// two-qudit layer count. No structural optimization runs — the frame
    /// partition is what makes the noise backends' uniform per-gate error
    /// accounting provably equal to the paper's published virtual
    /// accounting, and optimizing across decomposition boundaries would
    /// change which errors are charged. This is the level both noise
    /// backends compile through.
    Physical,
    /// Physical lowering followed by full optimization: cancellation (with
    /// commutation-aware lookthrough), cross-moment fusion and depth
    /// repacking run *across* decomposition boundaries. Valid for
    /// noise-free runs only.
    PhysicalIdeal,
    /// Full optimization at logical granularity: cancellation, cross-moment
    /// fusion and depth repacking, without lowering. Preserves the circuit
    /// unitary but not the gate count or schedule, so it is valid for
    /// noise-free runs only.
    Ideal,
}

impl PassLevel {
    /// The level's stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PassLevel::NoisePreserving => "noise-preserving",
            PassLevel::Physical => "physical",
            PassLevel::PhysicalIdeal => "physical-ideal",
            PassLevel::Ideal => "ideal",
        }
    }

    /// Parses a CLI flag or wire-format value. Accepts the stable names
    /// from [`PassLevel::name`] plus `logical` as an alias for
    /// `noise-preserving` (the ablation knob the noise backends map it to).
    pub fn from_flag(flag: &str) -> Option<PassLevel> {
        match flag.to_ascii_lowercase().as_str() {
            "noise-preserving" | "noisepreserving" | "logical" => Some(PassLevel::NoisePreserving),
            "physical" => Some(PassLevel::Physical),
            "physical-ideal" | "physicalideal" => Some(PassLevel::PhysicalIdeal),
            "ideal" => Some(PassLevel::Ideal),
            _ => None,
        }
    }

    /// Whether a noisy simulation can run at this level: only levels that
    /// preserve the error-site structure qualify (`Physical` — the lowered
    /// accounting — and `NoisePreserving` — the logical-granularity
    /// ablation). The optimizing levels change which errors would be
    /// charged, so they are noise-free only.
    pub fn supports_noise(self) -> bool {
        matches!(self, PassLevel::Physical | PassLevel::NoisePreserving)
    }
}

/// The mutable compilation state a [`Pass`] transforms.
///
/// Holds the current operation list (as a [`Circuit`]), the schedule when
/// one is known to be valid for that list, and the per-operation kernel
/// tags once [`SpecializePass`] has run. Mutating the operation list
/// invalidates both derived artifacts; [`RepackPass`] / [`SpecializePass`]
/// re-derive them.
#[derive(Clone, Debug)]
pub struct CircuitIr {
    pub(crate) circuit: Circuit,
    /// `None` after a transformation pass changed the op list ("stale").
    pub(crate) schedule: Option<Schedule>,
    /// Kernel tags per operation, in op order; `None` until specialization.
    pub(crate) kernel_tags: Option<Vec<KernelClass>>,
    /// The frame partition, once [`DecompositionPass`] has produced one.
    /// Invalidated (like the schedule) when a pass changes the op list.
    pub(crate) frames: Option<FrameSchedule>,
    /// What the [`RoutingPass`] did, once it has run. Deliberately survives
    /// [`CircuitIr::replace_ops`]: the placement permutations stay correct
    /// under later unitary-preserving transformations, and the pass keys its
    /// run-once behaviour on this being `Some`.
    pub(crate) routing: Option<RoutingSummary>,
}

impl CircuitIr {
    /// Builds the IR for a circuit, with its ASAP schedule attached.
    pub fn new(circuit: &Circuit) -> Self {
        CircuitIr {
            circuit: circuit.clone(),
            schedule: Some(Schedule::asap(circuit)),
            kernel_tags: None,
            frames: None,
            routing: None,
        }
    }

    /// The current operation list.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The current schedule, recomputing it if a transformation left it
    /// stale.
    pub fn schedule(&mut self) -> &Schedule {
        if self.schedule.is_none() {
            self.schedule = Some(Schedule::asap(&self.circuit));
        }
        self.schedule.as_ref().expect("just ensured")
    }

    /// Replaces the operation list, invalidating the schedule, tags and
    /// frame partition (but not the routing summary — see the field doc).
    pub(crate) fn replace_ops(&mut self, ops: Vec<Operation>) {
        self.circuit = Circuit::from_ops(self.circuit.dim(), self.circuit.width(), ops);
        self.schedule = None;
        self.kernel_tags = None;
        self.frames = None;
    }
}

/// What one pass invocation did, for the [`PassManager`]'s statistics.
///
/// The manager iterates its pipeline to a fixpoint, so the same pass can
/// appear in several rounds; `round` tells the invocations apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// The pass name.
    pub pass: &'static str,
    /// Which fixpoint round (1-based) this invocation ran in.
    pub round: usize,
    /// Operation count entering the pass.
    pub ops_before: usize,
    /// Operation count leaving the pass.
    pub ops_after: usize,
    /// Human-readable summary of the pass-specific effect (pairs fused,
    /// pairs cancelled, kernel-class histogram, …).
    pub detail: String,
    /// Whether the pass replaced the operation list *without* changing its
    /// length — routing that only relabels qudits onto sites does this.
    /// [`PassStats::changed`] folds it in, so the fixpoint loop still runs
    /// the follow-up round that re-derives the cleared frame partition.
    pub rewrote: bool,
}

impl PassStats {
    /// Whether the pass changed the operation list.
    pub fn changed(&self) -> bool {
        self.ops_before != self.ops_after || self.rewrote
    }
}

/// A circuit transformation pass.
pub trait Pass {
    /// The pass's stable name, used in statistics and reports.
    fn name(&self) -> &'static str;

    /// Transforms the IR in place and reports what happened.
    fn run(&self, ir: &mut CircuitIr) -> PassStats;

    /// Whether the pass only derives artifacts (schedule, tags) and never
    /// changes the operation list. Analysis passes run once after the
    /// transformation fixpoint instead of in every round.
    fn is_analysis(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Removes inverse pairs and identity operations.
///
/// Two operations cancel when they have identical controls and targets,
/// their gate matrices are mutual inverses, and the current operation can
/// be commuted back to its partner: every operation between them either
/// touches none of its qudits, or is diagonal while the cancelling pair is
/// diagonal too (diagonal operations commute regardless of how their
/// qudits overlap — controls are basis projectors, so a controlled
/// diagonal gate is diagonal as a whole). The wire-adjacent case of PR 3
/// is the special case with no lookthrough; the diagonal lookthrough is
/// what lets *lowered* circuits shrink, where a Di & Wei block ends in
/// diagonal phase gates that would otherwise fence off the mirror block.
///
/// A single pass catches the innermost pair of a nested `U V V† U†`
/// structure; the [`PassManager`] iterates the pipeline to a fixpoint,
/// unwrapping such nests completely.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancellationPass;

impl Pass for CancellationPass {
    fn name(&self) -> &'static str {
        "cancel"
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops_before = ir.circuit.len();
        let mut out: Vec<Option<Operation>> = Vec::with_capacity(ops_before);
        let mut pairs = 0usize;
        let mut identities = 0usize;
        let mut lookthroughs = 0usize;

        for op in ir.circuit.iter() {
            if op.gate().matrix().is_identity(KERNEL_CLASS_TOL) {
                identities += 1;
                continue;
            }
            let qudits = op.qudits();
            let diagonal = op.gate().matrix().is_diagonal(KERNEL_CLASS_TOL);
            // Walk backwards over the surviving operations. Disjoint ops
            // commute trivially; overlapping diagonal ops commute with a
            // diagonal `op`; the first overlapping op that is neither a
            // match nor commutable fences the search off.
            let mut cancelled = false;
            let mut skipped_overlap = false;
            for j in (0..out.len()).rev() {
                let Some(prev) = out[j].as_ref() else {
                    continue;
                };
                let overlaps = prev.qudits().iter().any(|q| qudits.contains(q));
                if !overlaps {
                    continue;
                }
                let matches = prev.controls() == op.controls()
                    && prev.targets() == op.targets()
                    && op
                        .gate()
                        .matrix()
                        .is_inverse_of(prev.gate().matrix(), KERNEL_CLASS_TOL);
                if matches {
                    out[j] = None;
                    pairs += 1;
                    if skipped_overlap {
                        lookthroughs += 1;
                    }
                    cancelled = true;
                    break;
                }
                if diagonal && prev.gate().matrix().is_diagonal(KERNEL_CLASS_TOL) {
                    skipped_overlap = true;
                    continue;
                }
                break;
            }
            if !cancelled {
                out.push(Some(op.clone()));
            }
        }

        let ops: Vec<Operation> = out.into_iter().flatten().collect();
        let ops_after = ops.len();
        if ops_after != ops_before {
            ir.replace_ops(ops);
        }
        PassStats {
            pass: self.name(),
            round: 0,
            ops_before,
            ops_after,
            detail: format!(
                "{pairs} inverse pair(s) ({lookthroughs} via commutation), {identities} identity op(s)"
            ),
            rewrote: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Physical decomposition
// ---------------------------------------------------------------------------

/// Lowers every ≥3-qudit operation into its exact Di & Wei two-qudit
/// realisation (see [`crate::decompose`]) and records the [`FrameSchedule`]:
/// one frame per pre-lowering logical moment, holding the lowered operation
/// indices and the frame's *measured* two-qudit layer count.
///
/// The frame partition is what downstream noise accounting consumes: gate
/// errors attach to the lowered gates themselves (one error per gate, on
/// the gate's own qudits — no arity dispatch), and idle durations are the
/// measured layer counts. Operations the decomposition cannot lower
/// (multi-target ops of arity ≥ 3) are passed through and counted in the
/// pass statistics; consumers that require a fully lowered circuit reject
/// them at program-construction time.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompositionPass;

impl Pass for DecompositionPass {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops_before = ir.circuit.len();
        let has_high_arity = ir.circuit.iter().any(|op| op.arity() >= 3);
        if !has_high_arity && ir.frames.is_some() {
            // Fixpoint round after the lowering: the frames recorded in the
            // first round are still valid — leave them alone.
            return PassStats {
                pass: self.name(),
                round: 0,
                ops_before,
                ops_after: ops_before,
                detail: "already lowered".to_string(),
                rewrote: false,
            };
        }

        let dim = ir.circuit.dim();
        let width = ir.circuit.width();
        let schedule = ir.schedule().clone();
        let mut new_ops: Vec<Operation> = Vec::with_capacity(ops_before);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(ops_before);
        let mut lowered = 0usize;
        let mut unsupported = 0usize;
        for op in ir.circuit.iter() {
            let start = new_ops.len();
            match decompose_operation(op) {
                Ok(seq) => {
                    if seq.len() > 1 {
                        lowered += 1;
                    }
                    new_ops.extend(seq);
                }
                Err(_) => {
                    unsupported += 1;
                    new_ops.push(op.clone());
                }
            }
            ranges.push((start, new_ops.len()));
        }

        let frames: Vec<Frame> = schedule
            .iter()
            .map(|(_, op_indices)| {
                let mut frame_ops: Vec<usize> = Vec::new();
                for &i in op_indices {
                    frame_ops.extend(ranges[i].0..ranges[i].1);
                }
                frame_ops.sort_unstable();
                let duration = measure_frame_duration(dim, width, &new_ops, &frame_ops);
                Frame::new(frame_ops, duration)
            })
            .collect();

        let ops_after = new_ops.len();
        if ops_after != ops_before {
            ir.replace_ops(new_ops);
        }
        ir.frames = Some(FrameSchedule::new(frames));
        PassStats {
            pass: self.name(),
            round: 0,
            ops_before,
            ops_after,
            detail: format!("{lowered} op(s) lowered, {unsupported} unsupported"),
            rewrote: false,
        }
    }
}

/// Measures one frame's duration: the number of two-qudit layers its
/// operations occupy under ASAP scheduling (single-qudit-only layers are
/// absorbed — the paper's "the single-qudit gates interleave" accounting).
pub(crate) fn measure_frame_duration(
    dim: usize,
    width: usize,
    ops: &[Operation],
    indices: &[usize],
) -> FrameDuration {
    let sub: Vec<Operation> = indices.iter().map(|&i| ops[i].clone()).collect();
    let sub_circuit = Circuit::from_ops(dim, width, sub);
    let layers = Schedule::asap(&sub_circuit)
        .moments()
        .iter()
        .filter(|m| m.max_arity() >= 2)
        .count();
    if layers == 0 {
        FrameDuration::SingleQudit
    } else {
        FrameDuration::TwoQuditLayers(layers)
    }
}

// ---------------------------------------------------------------------------
// Fusion
// ---------------------------------------------------------------------------

/// Fuses runs of adjacent same-support gates into one composed gate,
/// dropping the run entirely when the product is the identity (`H` then
/// `H`, or a gate followed by its inverse).
///
/// Two consecutive ops have the *same support* when their target lists and
/// control conditions are identical (same qudits, same order, same
/// activation levels) and no other op touches any of those wires in
/// between. Then `C(U₂)·C(U₁) = C(U₂·U₁)`, so the run collapses to one op
/// whose matrix is pre-multiplied at compile time — each fused matrix is
/// applied once per trial instead of k times, which pays off thousands of
/// times under Monte Carlo replay. Fusion covers one- and two-target gates
/// (`d²×d²` products at most); wider gates pass through untouched.
///
/// With `across_moments = false` the pass only fuses gates that share a
/// schedule moment. A moment touches every qudit at most once, so nothing
/// ever fuses and the schedule is provably preserved — this is the
/// [`PassLevel::NoisePreserving`] configuration, kept as a real pass so the
/// invariant is enforced by construction rather than by convention.
#[derive(Clone, Copy, Debug)]
pub struct FusionPass {
    /// Whether gates from different schedule moments may fuse.
    pub across_moments: bool,
}

/// Longest fused-gate display name before collapsing to `"fused"`.
const MAX_FUSED_NAME: usize = 24;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        if self.across_moments {
            "fuse"
        } else {
            "fuse(within-moment)"
        }
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops_before = ir.circuit.len();
        let dim = ir.circuit.dim();
        let width = ir.circuit.width();
        // Moment index per op, for the within-moment restriction.
        let moment_of: Vec<usize> = if self.across_moments {
            Vec::new()
        } else {
            let schedule = ir.schedule();
            let mut m = vec![0usize; ops_before];
            for (moment_idx, op_indices) in schedule.iter() {
                for &i in op_indices {
                    m[i] = moment_idx;
                }
            }
            m
        };

        let mut out: Vec<Option<Operation>> = Vec::with_capacity(ops_before);
        // Moment of the op currently held in each `out` slot (singles only).
        let mut out_moment: Vec<usize> = Vec::with_capacity(ops_before);
        let mut last_touch: Vec<Option<usize>> = vec![None; width];
        let mut fused = 0usize;
        let mut dropped = 0usize;

        for (op_idx, op) in ir.circuit.iter().enumerate() {
            let moment = if self.across_moments {
                0
            } else {
                moment_of[op_idx]
            };
            // Candidate ops: one or two targets (composed matrices stay at
            // most d²×d²). Every wire — targets and controls alike — must
            // have been last touched by the same held slot, and that slot's
            // op must have the identical support (targets in the same
            // order, identical control conditions), so the pair composes in
            // the same local basis.
            let wires = op.qudits();
            let prev_slot = (op.targets().len() <= 2)
                .then(|| {
                    let first = last_touch[wires[0]]?;
                    wires[1..]
                        .iter()
                        .all(|&w| last_touch[w] == Some(first))
                        .then_some(first)
                })
                .flatten()
                .filter(|&j| {
                    out[j].as_ref().is_some_and(|prev| {
                        prev.targets() == op.targets()
                            && prev.controls() == op.controls()
                            && (self.across_moments || out_moment[j] == moment)
                    })
                });

            if let Some(j) = prev_slot {
                let prev = out[j].as_ref().expect("filtered above");
                // `prev` runs first, so the composed matrix is op · prev.
                let composed = op.gate().matrix() * prev.gate().matrix();
                if composed.is_identity(KERNEL_CLASS_TOL) {
                    out[j] = None;
                    for &w in &wires {
                        last_touch[w] = None;
                    }
                    dropped += 1;
                } else {
                    let name = fused_name(prev.gate(), op.gate());
                    let gate = Gate::new(name, dim, op.targets().len(), composed)
                        .expect("product of same-shape matrices keeps the gate's shape");
                    out[j] = Some(
                        Operation::new(gate, op.controls().to_vec(), op.targets().to_vec())
                            .expect("support validated when the original ops were built"),
                    );
                    out_moment[j] = moment;
                    fused += 1;
                }
                continue;
            }

            out.push(Some(op.clone()));
            out_moment.push(moment);
            let idx = out.len() - 1;
            for q in op.qudits() {
                last_touch[q] = Some(idx);
            }
        }

        let ops: Vec<Operation> = out.into_iter().flatten().collect();
        let ops_after = ops.len();
        if ops_after != ops_before {
            ir.replace_ops(ops);
        }
        PassStats {
            pass: self.name(),
            round: 0,
            ops_before,
            ops_after,
            detail: format!("{fused} pair(s) fused, {dropped} identity product(s) dropped"),
            rewrote: false,
        }
    }
}

/// Display name for a fused gate, collapsing long chains.
fn fused_name(first: &Gate, second: &Gate) -> String {
    let name = format!("{}·{}", second.name(), first.name());
    if name.chars().count() > MAX_FUSED_NAME {
        "fused".to_string()
    } else {
        name
    }
}

// ---------------------------------------------------------------------------
// Repacking and specialization
// ---------------------------------------------------------------------------

/// Re-derives the ASAP schedule of the (possibly shrunken) operation list,
/// so downstream consumers see the post-removal depth.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepackPass;

impl Pass for RepackPass {
    fn name(&self) -> &'static str {
        "repack"
    }

    fn is_analysis(&self) -> bool {
        true
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops = ir.circuit.len();
        let depth = ir.schedule().depth();
        PassStats {
            pass: self.name(),
            round: 0,
            ops_before: ops,
            ops_after: ops,
            detail: format!("ASAP depth {depth}"),
            rewrote: false,
        }
    }
}

/// Tags every operation with its [`KernelClass`], the structure the
/// simulator's plan builder keys its kernel selection on.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpecializePass;

impl Pass for SpecializePass {
    fn name(&self) -> &'static str {
        "specialize"
    }

    fn is_analysis(&self) -> bool {
        true
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops = ir.circuit.len();
        let tags: Vec<KernelClass> = ir.circuit.iter().map(KernelClass::of_operation).collect();
        let counts = KernelCounts::from_tags(&tags);
        ir.kernel_tags = Some(tags);
        PassStats {
            pass: self.name(),
            round: 0,
            ops_before: ops,
            ops_after: ops,
            detail: counts.to_string(),
            rewrote: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Resource reporting
// ---------------------------------------------------------------------------

/// Histogram of operation kernel classes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Operations whose gate is the identity.
    pub identity: usize,
    /// Basis-permutation (classical) operations.
    pub permutation: usize,
    /// Diagonal (phase-type) operations.
    pub diagonal: usize,
    /// General dense operations.
    pub dense: usize,
}

impl KernelCounts {
    /// Builds the histogram from per-operation tags.
    pub fn from_tags(tags: &[KernelClass]) -> Self {
        let mut counts = KernelCounts::default();
        for tag in tags {
            match tag {
                KernelClass::Identity => counts.identity += 1,
                KernelClass::Permutation => counts.permutation += 1,
                KernelClass::Diagonal => counts.diagonal += 1,
                KernelClass::Dense => counts.dense += 1,
            }
        }
        counts
    }
}

impl fmt::Display for KernelCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} perm / {} diag / {} dense / {} id",
            self.permutation, self.diagonal, self.dense, self.identity
        )
    }
}

/// The routed-circuit count columns, present when compilation ran under a
/// connectivity [`Topology`] (see [`RoutingPass`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutedCosts {
    /// Qudit-SWAP operations the router inserted to make every two-qudit
    /// gate nearest-neighbour.
    pub inserted_swaps: usize,
    /// Two-qudit gate count of the routed circuit (original gates plus
    /// inserted SWAPs).
    pub routed_two_qudit_gates: usize,
    /// Depth of the routed circuit (physical moments, including SWAPs).
    pub routed_depth: usize,
}

/// The resource analysis of one circuit: the paper's count columns (gate
/// counts, two-qudit gate count, depth) at logical and physical (Di & Wei)
/// granularity, plus the kernel-class histogram and — when compilation ran
/// under a connectivity [`Topology`] — the routed columns.
///
/// This analyzer is the single producer of the resource numbers the bench
/// binaries print for Figures 9–10 and the constructions' cost tables; ad
/// hoc counting at call sites is what it replaces.
///
/// ## Inferred vs measured physical costs (lowering at high arity)
///
/// [`ResourceReport::measure`] *infers* the physical column from the flat
/// Di & Wei per-operation weights ([`CostWeights::di_wei`]): every ≥3-qudit
/// operation is charged the paper's fixed 6 two-qudit / 7 single-qudit
/// constants regardless of arity. That matches the actual lowering only for
/// arity 3. At arity ≥ 4 the decomposition recurses (a k-controlled gate
/// lowers through (k−1)-controlled pieces), so the faithful physical
/// numbers exceed the flat constants — at k = 4 the recursion emits 14
/// two-qudit gates where the flat weights charge 6.
/// [`ResourceReport::measure_physical`] counts the *actual* lowered
/// operation list and is the faithful physical accounting; prefer it
/// whenever circuits may contain arity-≥4 operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceReport {
    /// Costs with ≥3-qudit operations counted as single logical gates.
    pub logical: CircuitCosts,
    /// Costs under the paper's Di & Wei expansion of ≥3-qudit operations.
    pub physical: CircuitCosts,
    /// Kernel-class histogram of the operation list.
    pub kernels: KernelCounts,
    /// Routed count columns; `None` unless compilation ran under a
    /// connectivity topology.
    pub routed: Option<RoutedCosts>,
}

impl ResourceReport {
    /// Measures a circuit. The physical column is *inferred* from the flat
    /// Di & Wei cost weights ([`CostWeights::di_wei`]), which understate
    /// the recursive lowering of arity-≥4 operations; see
    /// [`ResourceReport::measure_physical`] for the measured (faithful)
    /// counterpart.
    pub fn measure(circuit: &Circuit) -> Self {
        let tags: Vec<KernelClass> = circuit.iter().map(KernelClass::of_operation).collect();
        ResourceReport::from_parts(circuit, &tags)
    }

    /// Measures a circuit with the physical column taken from the *actual*
    /// lowered circuit: the pipeline runs [`PassLevel::Physical`] and the
    /// two-qudit count, single-qudit count and physical depth are counted
    /// on the Di & Wei-expanded operation list and its frame schedule,
    /// rather than inferred from per-arity weights. The logical column and
    /// `total_ops` still describe the input circuit.
    ///
    /// These are the **faithful physical numbers**: for arity-≥4 operations
    /// the recursive lowering exceeds the flat Di & Wei constants that
    /// [`ResourceReport::measure`] charges (14 vs 6 two-qudit gates at
    /// k = 4), and this report reflects what is actually executed.
    pub fn measure_physical(circuit: &Circuit) -> Self {
        let ir = compile(circuit, PassLevel::Physical);
        ResourceReport {
            logical: analyze(circuit, CostWeights::logical()),
            physical: ir.report().post.physical,
            kernels: ir.report().post.kernels,
            routed: None,
        }
    }

    /// Builds the report from already-computed kernel tags (the pipeline
    /// reuses the specialization pass's tags rather than reclassifying).
    fn from_parts(circuit: &Circuit, tags: &[KernelClass]) -> Self {
        ResourceReport {
            logical: analyze(circuit, CostWeights::logical()),
            physical: analyze(circuit, CostWeights::di_wei()),
            kernels: KernelCounts::from_tags(tags),
            routed: None,
        }
    }

    /// Total operation count (logical granularity) — the number of kernel
    /// invocations a compiled replay performs.
    pub fn total_ops(&self) -> usize {
        self.logical.total_ops
    }

    /// The paper's two-qudit gate-count column (Di & Wei expansion).
    pub fn two_qudit_gates(&self) -> usize {
        self.physical.two_qudit_gates
    }

    /// The paper's circuit-depth column (physical moments, Di & Wei
    /// expansion).
    pub fn depth(&self) -> usize {
        self.physical.physical_depth
    }

    /// The logical depth (ASAP moments, no expansion).
    pub fn logical_depth(&self) -> usize {
        self.logical.logical_depth
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops ({} two-qudit), depth {} (logical {}), kernels: {}",
            self.total_ops(),
            self.two_qudit_gates(),
            self.depth(),
            self.logical_depth(),
            self.kernels
        )?;
        if let Some(routed) = &self.routed {
            write!(
                f,
                ", routed: {} SWAPs / {} two-qudit / depth {}",
                routed.inserted_swaps, routed.routed_two_qudit_gates, routed.routed_depth
            )?;
        }
        Ok(())
    }
}

/// Everything the pipeline did to one circuit: resources before and after,
/// and per-pass statistics in execution order.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// The level the pipeline ran at.
    pub level: PassLevel,
    /// Resources of the input circuit.
    pub pre: ResourceReport,
    /// Resources of the transformed circuit.
    pub post: ResourceReport,
    /// Statistics of every pass invocation, in order.
    pub passes: Vec<PassStats>,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pass pipeline ({} level):", self.level.name())?;
        writeln!(f, "  pre:  {}", self.pre)?;
        writeln!(f, "  post: {}", self.post)?;
        // Show every invocation that changed the circuit, plus the final
        // (informational) invocation of each pass.
        for (i, stats) in self.passes.iter().enumerate() {
            let is_last_of_pass = self.passes[i + 1..].iter().all(|s| s.pass != stats.pass);
            if !stats.changed() && !is_last_of_pass {
                continue;
            }
            writeln!(
                f,
                "  round {} {:<20} {:>4} -> {:<4} ops  ({})",
                stats.round, stats.pass, stats.ops_before, stats.ops_after, stats.detail
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pass manager
// ---------------------------------------------------------------------------

/// Runs an ordered list of passes over a circuit, iterating to a fixpoint,
/// and collects per-pass statistics.
pub struct PassManager {
    level: PassLevel,
    passes: Vec<Box<dyn Pass>>,
    topology: Option<Topology>,
}

impl PassManager {
    /// The standard pipeline for a level:
    ///
    /// * `NoisePreserving` — within-moment fusion + specialization (no
    ///   structural change possible by construction);
    /// * `Physical` — Di & Wei decomposition + within-moment fusion +
    ///   repacking + specialization (structure-preserving after lowering,
    ///   so the recorded frame partition stays valid);
    /// * `PhysicalIdeal` — decomposition, then full optimization across
    ///   the decomposition boundaries;
    /// * `Ideal` — cancellation, cross-moment fusion, repacking,
    ///   specialization.
    pub fn standard(level: PassLevel) -> Self {
        PassManager::standard_with_topology(level, None)
    }

    /// The standard pipeline for a level, optionally constrained to a
    /// device [`Topology`]. With a topology, a [`RoutingPass`] joins the
    /// pipeline: *after* lowering on the `Physical` levels (so the
    /// interaction graph and SWAP insertion see the two-qudit gates that
    /// actually execute — triangle-free topologies cannot host a ≥3-qudit
    /// clique), and first on the logical-granularity levels. `None`
    /// topology is the implicit all-to-all device and yields exactly
    /// [`PassManager::standard`].
    pub fn standard_with_topology(level: PassLevel, topology: Option<Topology>) -> Self {
        let route = |passes: &mut Vec<Box<dyn Pass>>| {
            if let Some(t) = topology.clone() {
                passes.push(Box::new(RoutingPass::new(t)));
            }
        };
        let mut passes: Vec<Box<dyn Pass>> = Vec::new();
        match level {
            PassLevel::NoisePreserving => {
                route(&mut passes);
                passes.push(Box::new(FusionPass {
                    across_moments: false,
                }));
                passes.push(Box::new(SpecializePass));
            }
            PassLevel::Physical => {
                passes.push(Box::new(DecompositionPass));
                route(&mut passes);
                passes.push(Box::new(FusionPass {
                    across_moments: false,
                }));
                passes.push(Box::new(RepackPass));
                passes.push(Box::new(SpecializePass));
            }
            PassLevel::PhysicalIdeal => {
                passes.push(Box::new(DecompositionPass));
                route(&mut passes);
                passes.push(Box::new(CancellationPass));
                passes.push(Box::new(FusionPass {
                    across_moments: true,
                }));
                passes.push(Box::new(RepackPass));
                passes.push(Box::new(SpecializePass));
            }
            PassLevel::Ideal => {
                route(&mut passes);
                passes.push(Box::new(CancellationPass));
                passes.push(Box::new(FusionPass {
                    across_moments: true,
                }));
                passes.push(Box::new(RepackPass));
                passes.push(Box::new(SpecializePass));
            }
        }
        PassManager {
            level,
            passes,
            topology,
        }
    }

    /// A manager with no passes, for building custom pipelines with
    /// [`PassManager::push`].
    pub fn empty(level: PassLevel) -> Self {
        PassManager {
            level,
            passes: Vec::new(),
            topology: None,
        }
    }

    /// Appends a pass to the pipeline.
    pub fn push(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The level this manager runs at.
    pub fn level(&self) -> PassLevel {
        self.level
    }

    /// Runs the pipeline over `circuit` until no pass changes the operation
    /// list any more (cancellation exposes new fusion opportunities and vice
    /// versa — nested `U V V† U†` structures unwrap one layer per round).
    pub fn compile(&self, circuit: &Circuit) -> CompiledIr {
        let pre = ResourceReport::measure(circuit);
        let mut ir = CircuitIr::new(circuit);
        let mut all_stats: Vec<PassStats> = Vec::new();
        // Transformation passes iterate to a fixpoint (each round either
        // strictly shrinks the op list or is the last, so this terminates
        // after at most `len/2 + 1` rounds); analysis passes — which never
        // change the op list — run once afterwards.
        let mut round = 0usize;
        loop {
            round += 1;
            let mut changed = false;
            for pass in self.passes.iter().filter(|p| !p.is_analysis()) {
                let mut stats = pass.run(&mut ir);
                stats.round = round;
                changed |= stats.changed();
                all_stats.push(stats);
            }
            if !changed {
                break;
            }
        }
        for pass in self.passes.iter().filter(|p| p.is_analysis()) {
            let mut stats = pass.run(&mut ir);
            stats.round = round;
            all_stats.push(stats);
        }
        ir.schedule(); // ensure the final schedule is materialised
        let kernel_tags = ir
            .kernel_tags
            .take()
            .unwrap_or_else(|| ir.circuit.iter().map(KernelClass::of_operation).collect());
        let frames = ir.frames.take();
        let routing = ir.routing.take();
        // The post report reuses the tags the pipeline just computed
        // instead of reclassifying every matrix. When a frame partition
        // exists, the physical depth is the measured frame depth (the raw
        // ASAP depth of a lowered circuit both understates it — blocks can
        // stagger — and overstates it — padding singles spill a layer).
        let mut post = ResourceReport::from_parts(&ir.circuit, &kernel_tags);
        if let Some(frames) = &frames {
            post.physical.physical_depth = frames.physical_depth();
        }
        if let Some(summary) = &routing {
            post.routed = Some(RoutedCosts {
                inserted_swaps: summary.inserted_swaps,
                routed_two_qudit_gates: post.physical.two_qudit_gates,
                routed_depth: post.physical.physical_depth,
            });
        }
        CompiledIr {
            schedule: ir.schedule.take().expect("materialised above"),
            circuit: ir.circuit,
            kernel_tags,
            frames,
            routing,
            topology: self.topology.clone(),
            report: PipelineReport {
                level: self.level,
                pre,
                post,
                passes: all_stats,
            },
        }
    }
}

/// The pipeline's output: the transformed circuit, its schedule, the
/// per-operation kernel tags and the full [`PipelineReport`].
///
/// This is what the simulation layer compiles: `CompiledCircuit` /
/// `CompiledDensityCircuit` in `qudit-sim` build their per-operation plans
/// from `circuit()` (in op order, index-aligned with `schedule()`), and the
/// noise simulators drive their moment replay and idle-error accounting off
/// `schedule()`.
#[derive(Clone, Debug)]
pub struct CompiledIr {
    circuit: Circuit,
    schedule: Schedule,
    kernel_tags: Vec<KernelClass>,
    frames: Option<FrameSchedule>,
    routing: Option<RoutingSummary>,
    topology: Option<Topology>,
    report: PipelineReport,
}

impl CompiledIr {
    /// The transformed circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The schedule of the transformed circuit (op indices refer to
    /// [`CompiledIr::circuit`]).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The frame partition, when the pipeline contained a
    /// [`DecompositionPass`] (the `Physical` levels). Frames reference
    /// operations of [`CompiledIr::circuit`] and carry measured durations —
    /// the noise backends replay and account by frame.
    pub fn frames(&self) -> Option<&FrameSchedule> {
        self.frames.as_ref()
    }

    /// The kernel class of every operation, in op order.
    pub fn kernel_tags(&self) -> &[KernelClass] {
        &self.kernel_tags
    }

    /// The connectivity [`Topology`] the pipeline compiled under, when one
    /// was given — the noise backends consult it for schedule-adjacency
    /// (crosstalk pairing) and per-edge error weights. `None` means the
    /// implicit all-to-all device.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// What the router did, when the pipeline ran under a connectivity
    /// [`Topology`]: initial placement, final mapping and SWAP counts.
    /// Operations of [`CompiledIr::circuit`] then act on *sites*; undoing
    /// the recorded permutations recovers the logical-register semantics.
    pub fn routing(&self) -> Option<&RoutingSummary> {
        self.routing.as_ref()
    }

    /// The pipeline report (pre/post resources, per-pass statistics).
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Decomposes into the owned circuit, schedule and report.
    pub fn into_parts(self) -> (Circuit, Schedule, PipelineReport) {
        (self.circuit, self.schedule, self.report)
    }
}

/// Runs the standard pipeline for `level` over a circuit.
///
/// This is the compile path the simulation backends use: noise-free
/// compilation goes through [`PassLevel::Ideal`], both noise backends
/// through [`PassLevel::NoisePreserving`].
pub fn compile(circuit: &Circuit, level: PassLevel) -> CompiledIr {
    PassManager::standard(level).compile(circuit)
}

/// Runs the standard pipeline for `level` under an optional connectivity
/// [`Topology`]. `None` is the implicit all-to-all device and is exactly
/// [`compile`]. The topology's site count must equal the circuit width
/// (the job layer validates this before compiling).
///
/// # Panics
///
/// Panics when a topology is given and its site count differs from the
/// circuit width.
pub fn compile_with_topology(
    circuit: &Circuit,
    level: PassLevel,
    topology: Option<&Topology>,
) -> CompiledIr {
    if let Some(t) = topology {
        assert_eq!(
            t.sites(),
            circuit.width(),
            "topology site count must match circuit width"
        );
    }
    PassManager::standard_with_topology(level, topology.cloned()).compile(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Control;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn noise_preserving_is_the_identity_transformation() {
        let mut c = toffoli_fig4();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::x(3), &[0]).unwrap(); // fusable at Ideal only
        let ir = compile(&c, PassLevel::NoisePreserving);
        assert_eq!(ir.circuit(), &c, "op list must be untouched");
        assert_eq!(ir.schedule(), &Schedule::asap(&c));
        assert_eq!(ir.report().post.total_ops(), c.len());
    }

    #[test]
    fn cancellation_removes_circuit_times_inverse_completely() {
        let mut c = toffoli_fig4();
        c.extend(&toffoli_fig4().inverse()).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(
            ir.circuit().len(),
            0,
            "U·U† must cancel to the empty circuit:\n{}",
            ir.report()
        );
        assert_eq!(ir.schedule().depth(), 0);
    }

    #[test]
    fn cancellation_requires_adjacency_on_every_wire() {
        // increment(0→1), CX(1→2), decrement(0→1): the CX touches qudit 1,
        // so the increment/decrement pair is *not* adjacent and must stay.
        let c = toffoli_fig4();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 3);
    }

    #[test]
    fn cancellation_commutes_through_diagonal_neighbours() {
        // Z(0), C[q0=1] Z(1), Z†(0): the middle op touches qudit 0 but is
        // diagonal (controls are projectors), so the Z/Z† pair commutes
        // through it and cancels — the ROADMAP follow-up PR 3 left open.
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::z(3), &[0]).unwrap();
        c.push_controlled(Gate::z(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_gate(Gate::z(3).inverse(), &[0]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(
            ir.circuit().len(),
            1,
            "diagonal pair must cancel through the diagonal CZ:\n{}",
            ir.report()
        );
        assert_eq!(ir.circuit().operations()[0].targets(), &[1]);
    }

    #[test]
    fn cancellation_does_not_commute_diagonals_through_dense_ops() {
        // Z(0), H(0), Z†(0): H is not diagonal, so the pair must stay.
        let mut c = Circuit::new(3, 1);
        c.push_gate(Gate::z(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::z(3).inverse(), &[0]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        // Fusion may still merge the run into fewer dense gates, so assert
        // on the unitary instead of the count: the composed product is not
        // the identity, hence something survives.
        assert!(!ir.circuit().is_empty());
    }

    #[test]
    fn cancellation_does_not_commute_dense_pairs_through_diagonals() {
        // H(0), C[q0=1] Z(1), H(0): H·H = I only if the pair is adjacent;
        // H is dense so the diagonal lookthrough must not apply.
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_controlled(Gate::z(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let manager = PassManager::standard(PassLevel::Ideal);
        let ir = manager.compile(&c);
        assert_eq!(ir.circuit().len(), 3);
    }

    #[test]
    fn fusion_composes_adjacent_single_qudit_gates() {
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_gate(Gate::z(3), &[1]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 2, "H·X fuse, Z(1) stays");
        let fused = &ir.circuit().operations()[0];
        let expected = Gate::x(3).matrix() * Gate::h(3).matrix();
        assert!(fused.gate().matrix().approx_eq(&expected, 1e-12));
        assert_eq!(fused.gate().name(), "X·H");
    }

    #[test]
    fn fusion_drops_self_inverse_pairs_entirely() {
        let mut c = Circuit::new(3, 1);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 0, "H·H = I must vanish");
    }

    #[test]
    fn fusion_respects_intervening_multi_qudit_ops() {
        // H(0), CX(0→1), H(0): the CX touches qudit 0, so the Hs must not
        // fuse across it.
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 3);
    }

    #[test]
    fn fusion_chains_runs_longer_than_two() {
        let mut c = Circuit::new(3, 1);
        for _ in 0..5 {
            c.push_gate(Gate::h(3), &[0]).unwrap();
        }
        let ir = compile(&c, PassLevel::Ideal);
        // H^5 = H: four gates' worth of products collapse into one.
        assert_eq!(ir.circuit().len(), 1);
        assert!(ir.circuit().operations()[0]
            .gate()
            .matrix()
            .approx_eq(Gate::h(3).matrix(), 1e-10));
    }

    #[test]
    fn fusion_composes_same_support_controlled_pairs() {
        // Two controlled gates with identical control condition and target:
        // C(X)·C(inc) = C(X·inc), one op.
        let mut c = Circuit::new(3, 2);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(0)], &[1])
            .unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 1, "same-support controlled pair fuses");
        let fused = &ir.circuit().operations()[0];
        assert_eq!(fused.targets(), &[1]);
        assert_eq!(fused.controls(), c.operations()[0].controls());
        let expected = Gate::x(3).matrix() * Gate::increment(3).matrix();
        assert!(fused.gate().matrix().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn fusion_drops_controlled_inverse_pairs() {
        let mut c = Circuit::new(3, 2);
        c.push_controlled(Gate::increment(3), &[Control::on_two(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_two(0)], &[1])
            .unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 0, "C(inc)·C(dec) = I must vanish");
    }

    #[test]
    fn fusion_requires_identical_control_conditions() {
        // Same wires, different activation level: C₁(U₂)·C₂(U₁) is NOT
        // C(U₂·U₁) — the pair must survive unfused (and uncancelled).
        let mut c = Circuit::new(3, 2);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_two(0)], &[1])
            .unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 2);

        // Swapped roles (control↔target) must not fuse either.
        let mut c = Circuit::new(3, 2);
        c.push_controlled(Gate::x(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(1)], &[0])
            .unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 2);
    }

    #[test]
    fn fusion_requires_no_intervening_touch_on_control_wires() {
        // A gate on the *control* qudit between two same-support controlled
        // ops changes what the control sees — no fusion allowed.
        let mut c = Circuit::new(3, 2);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 3);
    }

    #[test]
    fn repacking_shrinks_depth_after_removal() {
        // X(0), H(1), H(1), X(0): the Hs vanish, leaving two X ops on the
        // same qudit... which then fuse to identity too. Use distinct gates:
        // X(0), H(1), H(1), Z(0) → Z·X fused on qudit 0, depth 2 → 1.
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[1]).unwrap();
        c.push_gate(Gate::h(3), &[1]).unwrap();
        c.push_gate(Gate::z(3), &[0]).unwrap();
        let pre_depth = Schedule::asap(&c).depth();
        assert_eq!(pre_depth, 2);
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 1);
        assert_eq!(ir.schedule().depth(), 1);
        assert!(ir.report().post.depth() < ir.report().pre.depth());
    }

    #[test]
    fn nested_inverse_structures_unwrap_via_fixpoint() {
        // A B B† A† with overlapping qudits: only the inner pair is
        // adjacent at first; the second round catches the outer pair.
        let mut c = Circuit::new(3, 2);
        let a = Operation::new(Gate::increment(3), vec![Control::on_one(0)], vec![1]).unwrap();
        let b = Operation::new(Gate::fourier(3), vec![Control::on_two(0)], vec![1]).unwrap();
        c.push(a.clone()).unwrap();
        c.push(b.clone()).unwrap();
        c.push(b.inverse()).unwrap();
        c.push(a.inverse()).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        assert_eq!(ir.circuit().len(), 0, "{}", ir.report());
    }

    #[test]
    fn kernel_classification_matches_gate_structure() {
        assert_eq!(
            KernelClass::of_matrix(&qudit_core::CMatrix::identity(3)),
            KernelClass::Identity
        );
        assert_eq!(
            KernelClass::of_matrix(Gate::increment(3).matrix()),
            KernelClass::Permutation
        );
        assert_eq!(
            KernelClass::of_matrix(Gate::z(3).matrix()),
            KernelClass::Diagonal
        );
        assert_eq!(
            KernelClass::of_matrix(Gate::clock(3).matrix()),
            KernelClass::Diagonal
        );
        assert_eq!(
            KernelClass::of_matrix(Gate::h(3).matrix()),
            KernelClass::Dense
        );
    }

    #[test]
    fn specialize_tags_every_operation() {
        let mut c = toffoli_fig4();
        c.push_controlled(Gate::z(3), &[Control::on_one(0)], &[2])
            .unwrap();
        let ir = compile(&c, PassLevel::NoisePreserving);
        assert_eq!(
            ir.kernel_tags(),
            &[
                KernelClass::Permutation,
                KernelClass::Permutation,
                KernelClass::Permutation,
                KernelClass::Diagonal
            ]
        );
        assert_eq!(ir.report().post.kernels.permutation, 3);
        assert_eq!(ir.report().post.kernels.diagonal, 1);
    }

    #[test]
    fn resource_report_measures_the_fig4_toffoli() {
        let report = ResourceReport::measure(&toffoli_fig4());
        assert_eq!(report.total_ops(), 3);
        assert_eq!(report.two_qudit_gates(), 3);
        assert_eq!(report.depth(), 3);
        assert_eq!(report.logical_depth(), 3);
    }

    #[test]
    fn report_display_mentions_passes_and_counts() {
        let mut c = Circuit::new(3, 1);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let ir = compile(&c, PassLevel::Ideal);
        let text = ir.report().to_string();
        assert!(text.contains("fuse"), "{text}");
        assert!(text.contains("ideal"), "{text}");
    }

    #[test]
    fn custom_pipelines_run_pushed_passes() {
        let mut c = Circuit::new(3, 1);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap();
        let mut manager = PassManager::empty(PassLevel::Ideal);
        manager.push(Box::new(CancellationPass));
        let ir = manager.compile(&c);
        // H then H is an adjacent self-inverse pair: cancellation alone
        // removes it (round 1 changes, round 2 confirms the fixpoint).
        assert_eq!(ir.circuit().len(), 0);
        assert_eq!(ir.report().passes.iter().filter(|s| s.changed()).count(), 1);
    }
}
