//! The circuit container.

use crate::error::{CircuitError, CircuitResult};
use crate::gate::Gate;
use crate::operation::{Control, Operation};
use std::fmt;

/// An ordered sequence of operations on a register of `width` qudits of
/// dimension `dim`.
///
/// # Examples
///
/// ```
/// use qudit_circuit::{Circuit, Control, Gate};
///
/// // The paper's Figure 4 Toffoli-via-qutrits (3 qutrits).
/// let mut c = Circuit::new(3, 3);
/// c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
/// c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])?;
/// c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])?;
/// assert_eq!(c.len(), 3);
/// # Ok::<(), qudit_circuit::CircuitError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    dim: usize,
    width: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit over `width` qudits of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn new(dim: usize, width: usize) -> Self {
        assert!(dim >= 2, "qudit dimension must be at least 2");
        Circuit {
            dim,
            width,
            ops: Vec::new(),
        }
    }

    /// Rebuilds a circuit from an already-validated operation list — the
    /// compiler passes transform operations that came out of a valid
    /// circuit, so re-validating every index on each pass would be wasted
    /// work.
    pub(crate) fn from_ops(dim: usize, width: usize, ops: Vec<Operation>) -> Self {
        Circuit { dim, width, ops }
    }

    /// The qudit dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The register width (number of qudits).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over the operations in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends an operation after validating its qudit indices.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QuditOutOfRange`] if the operation touches a
    /// qudit outside the register, or [`CircuitError::IncompatibleCircuits`]
    /// if the gate dimension differs from the circuit's.
    pub fn push(&mut self, op: Operation) -> CircuitResult<()> {
        if op.gate().dim() != self.dim {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!(
                    "gate dimension {} does not match circuit dimension {}",
                    op.gate().dim(),
                    self.dim
                ),
            });
        }
        for q in op.qudits() {
            if q >= self.width {
                return Err(CircuitError::QuditOutOfRange {
                    qudit: q,
                    width: self.width,
                });
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Builds and appends an uncontrolled operation.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`] and [`Operation::new`].
    pub fn push_gate(&mut self, gate: Gate, targets: &[usize]) -> CircuitResult<()> {
        let op = Operation::uncontrolled(gate, targets.to_vec())?;
        self.push(op)
    }

    /// Builds and appends a controlled operation.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`] and [`Operation::new`].
    pub fn push_controlled(
        &mut self,
        gate: Gate,
        controls: &[Control],
        targets: &[usize],
    ) -> CircuitResult<()> {
        let op = Operation::new(gate, controls.to_vec(), targets.to_vec())?;
        self.push(op)
    }

    /// Appends all operations of another circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IncompatibleCircuits`] if the dimensions or
    /// widths differ.
    pub fn extend(&mut self, other: &Circuit) -> CircuitResult<()> {
        if other.dim != self.dim || other.width > self.width {
            return Err(CircuitError::IncompatibleCircuits {
                reason: format!(
                    "cannot extend a dim-{} width-{} circuit with a dim-{} width-{} circuit",
                    self.dim, self.width, other.dim, other.width
                ),
            });
        }
        for op in &other.ops {
            self.ops.push(op.clone());
        }
        Ok(())
    }

    /// Returns the inverse circuit: operations reversed, each inverted.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            dim: self.dim,
            width: self.width,
            ops: self.ops.iter().rev().map(Operation::inverse).collect(),
        }
    }

    /// Remaps every qudit index through `mapping` (old index → new index),
    /// producing a circuit of width `new_width`.
    ///
    /// # Errors
    ///
    /// Returns an error if a mapped index is out of range for `new_width` or
    /// the mapping is shorter than the current width.
    pub fn remap(&self, mapping: &[usize], new_width: usize) -> CircuitResult<Circuit> {
        if mapping.len() < self.width {
            return Err(CircuitError::IncompatibleCircuits {
                reason: "mapping shorter than circuit width".to_string(),
            });
        }
        let mut out = Circuit::new(self.dim, new_width);
        for op in &self.ops {
            let controls: Vec<Control> = op
                .controls()
                .iter()
                .map(|c| Control::new(mapping[c.qudit], c.level))
                .collect();
            let targets: Vec<usize> = op.targets().iter().map(|&t| mapping[t]).collect();
            let new_op = Operation::new(op.gate().clone(), controls, targets)?;
            out.push(new_op)?;
        }
        Ok(out)
    }

    /// Counts operations by arity (number of touched qudits). Index 0 of the
    /// returned vector is unused; index `k` holds the number of `k`-qudit
    /// operations.
    pub fn arity_histogram(&self) -> Vec<usize> {
        let max_arity = self.ops.iter().map(Operation::arity).max().unwrap_or(0);
        let mut hist = vec![0usize; max_arity + 1];
        for op in &self.ops {
            hist[op.arity()] += 1;
        }
        hist
    }

    /// The number of operations touching exactly one qudit.
    pub fn single_qudit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.arity() == 1).count()
    }

    /// The number of operations touching exactly two qudits.
    pub fn two_qudit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.arity() == 2).count()
    }

    /// The number of operations touching three or more qudits.
    pub fn multi_qudit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.arity() >= 3).count()
    }

    /// Returns `true` if every gate in the circuit is a classical basis
    /// permutation.
    pub fn is_classical(&self) -> bool {
        self.ops.iter().all(Operation::is_classical)
    }

    /// Returns the set of qudits touched by at least one operation.
    pub fn touched_qudits(&self) -> Vec<usize> {
        let mut touched = vec![false; self.width];
        for op in &self.ops {
            for q in op.qudits() {
                touched[q] = true;
            }
        }
        (0..self.width).filter(|&q| touched[q]).collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit(d={}, width={}, {} ops)",
            self.dim,
            self.width,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn push_validates_width_and_dimension() {
        let mut c = Circuit::new(3, 2);
        assert!(c.push_gate(Gate::x(3), &[5]).is_err());
        assert!(c.push_gate(Gate::x(2), &[0]).is_err());
        assert!(c.push_gate(Gate::x(3), &[1]).is_ok());
    }

    #[test]
    fn arity_histogram_counts_correctly() {
        let c = toffoli_fig4();
        let hist = c.arity_histogram();
        assert_eq!(hist[2], 3);
        assert_eq!(c.two_qudit_gate_count(), 3);
        assert_eq!(c.single_qudit_gate_count(), 0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let c = toffoli_fig4();
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        // First gate of the inverse should be the inverse of the last gate.
        assert_eq!(inv.operations()[0].gate().name(), "X-1†");
    }

    #[test]
    fn extend_concatenates() {
        let mut c = toffoli_fig4();
        let other = toffoli_fig4();
        c.extend(&other).unwrap();
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn extend_rejects_mismatched_dimension() {
        let mut c = Circuit::new(2, 3);
        let other = toffoli_fig4();
        assert!(c.extend(&other).is_err());
    }

    #[test]
    fn remap_moves_qudits() {
        let c = toffoli_fig4();
        let remapped = c.remap(&[4, 3, 0], 5).unwrap();
        assert_eq!(remapped.width(), 5);
        let op0 = &remapped.operations()[0];
        assert_eq!(op0.controls()[0].qudit, 4);
        assert_eq!(op0.targets(), &[3]);
    }

    #[test]
    fn classical_detection_for_whole_circuit() {
        assert!(toffoli_fig4().is_classical());
        let mut c = Circuit::new(3, 1);
        c.push_gate(Gate::h(3), &[0]).unwrap();
        assert!(!c.is_classical());
    }

    #[test]
    fn touched_qudits_reports_used_lines() {
        let mut c = Circuit::new(3, 5);
        c.push_gate(Gate::x(3), &[3]).unwrap();
        assert_eq!(c.touched_qudits(), vec![3]);
    }
}
