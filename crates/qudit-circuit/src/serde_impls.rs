//! Hand-written `serde` implementations for the circuit IR — the circuit
//! layer of the workspace's JSON wire format.
//!
//! Deserialization always goes back through the validating constructors
//! ([`Gate::new`], [`Operation::new`], [`Circuit::push`]), so a parsed
//! circuit satisfies exactly the invariants a programmatically built one
//! does: matrix shapes match the target count, qudit indices are in range
//! and distinct, control levels fit the dimension.

use crate::circuit::Circuit;
use crate::cost::CircuitCosts;
use crate::gate::Gate;
use crate::operation::{Control, Operation};
use crate::passes::{KernelCounts, PassLevel, ResourceReport, RoutedCosts};
use crate::topology::{Topology, TopologyKind};
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for Gate {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("name", self.name().to_value()),
            ("dim", self.dim().to_value()),
            ("targets", self.num_targets().to_value()),
            ("matrix", self.matrix().to_value()),
        ])
    }
}

impl Deserialize for Gate {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let name = String::from_value(value.field("name")?)?;
        let dim = value.field("dim")?.as_usize()?;
        let targets = value.field("targets")?.as_usize()?;
        let matrix = qudit_core::CMatrix::from_value(value.field("matrix")?)?;
        Gate::new(name, dim, targets, matrix).map_err(|e| Error::custom(e.to_string()))
    }
}

impl Serialize for Control {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("qudit", self.qudit.to_value()),
            ("level", self.level.to_value()),
        ])
    }
}

impl Deserialize for Control {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Control::new(
            value.field("qudit")?.as_usize()?,
            value.field("level")?.as_usize()?,
        ))
    }
}

impl Serialize for Operation {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("gate", self.gate().to_value()),
            ("controls", self.controls().to_vec().to_value()),
            ("targets", self.targets().to_vec().to_value()),
        ])
    }
}

impl Deserialize for Operation {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let gate = Gate::from_value(value.field("gate")?)?;
        let controls = Vec::<Control>::from_value(value.field("controls")?)?;
        let targets = Vec::<usize>::from_value(value.field("targets")?)?;
        Operation::new(gate, controls, targets).map_err(|e| Error::custom(e.to_string()))
    }
}

impl Serialize for Circuit {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("dim", self.dim().to_value()),
            ("width", self.width().to_value()),
            ("operations", self.operations().to_vec().to_value()),
        ])
    }
}

impl Deserialize for Circuit {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let dim = value.field("dim")?.as_usize()?;
        let width = value.field("width")?.as_usize()?;
        if dim < 2 {
            return Err(Error::custom(format!("qudit dimension {dim} is below 2")));
        }
        let mut circuit = Circuit::new(dim, width);
        for op in value.field("operations")?.as_array()? {
            let op = Operation::from_value(op)?;
            circuit.push(op).map_err(|e| Error::custom(e.to_string()))?;
        }
        Ok(circuit)
    }
}

impl Serialize for PassLevel {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for PassLevel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let name = value.as_str()?;
        PassLevel::from_flag(name)
            .ok_or_else(|| Error::custom(format!("unknown pass level {name:?}")))
    }
}

impl Serialize for CircuitCosts {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("width", self.width.to_value()),
            ("total_ops", self.total_ops.to_value()),
            ("one_qudit_gates", self.one_qudit_gates.to_value()),
            ("two_qudit_gates", self.two_qudit_gates.to_value()),
            ("three_plus_qudit_ops", self.three_plus_qudit_ops.to_value()),
            ("logical_depth", self.logical_depth.to_value()),
            ("physical_depth", self.physical_depth.to_value()),
        ])
    }
}

impl Deserialize for CircuitCosts {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(CircuitCosts {
            width: value.field("width")?.as_usize()?,
            total_ops: value.field("total_ops")?.as_usize()?,
            one_qudit_gates: value.field("one_qudit_gates")?.as_usize()?,
            two_qudit_gates: value.field("two_qudit_gates")?.as_usize()?,
            three_plus_qudit_ops: value.field("three_plus_qudit_ops")?.as_usize()?,
            logical_depth: value.field("logical_depth")?.as_usize()?,
            physical_depth: value.field("physical_depth")?.as_usize()?,
        })
    }
}

impl Serialize for KernelCounts {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("identity", self.identity.to_value()),
            ("permutation", self.permutation.to_value()),
            ("diagonal", self.diagonal.to_value()),
            ("dense", self.dense.to_value()),
        ])
    }
}

impl Deserialize for KernelCounts {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(KernelCounts {
            identity: value.field("identity")?.as_usize()?,
            permutation: value.field("permutation")?.as_usize()?,
            diagonal: value.field("diagonal")?.as_usize()?,
            dense: value.field("dense")?.as_usize()?,
        })
    }
}

impl Serialize for RoutedCosts {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("inserted_swaps", self.inserted_swaps.to_value()),
            (
                "routed_two_qudit_gates",
                self.routed_two_qudit_gates.to_value(),
            ),
            ("routed_depth", self.routed_depth.to_value()),
        ])
    }
}

impl Deserialize for RoutedCosts {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(RoutedCosts {
            inserted_swaps: value.field("inserted_swaps")?.as_usize()?,
            routed_two_qudit_gates: value.field("routed_two_qudit_gates")?.as_usize()?,
            routed_depth: value.field("routed_depth")?.as_usize()?,
        })
    }
}

impl Serialize for ResourceReport {
    fn to_value(&self) -> Value {
        // The `routed` column is emitted only when present, so reports from
        // topology-free jobs keep their pre-routing byte layout.
        let mut fields = vec![
            ("logical", self.logical.to_value()),
            ("physical", self.physical.to_value()),
            ("kernels", self.kernels.to_value()),
        ];
        if let Some(routed) = &self.routed {
            fields.push(("routed", routed.to_value()));
        }
        Value::object(fields)
    }
}

impl Deserialize for ResourceReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(ResourceReport {
            logical: CircuitCosts::from_value(value.field("logical")?)?,
            physical: CircuitCosts::from_value(value.field("physical")?)?,
            kernels: KernelCounts::from_value(value.field("kernels")?)?,
            routed: value
                .get("routed")
                .map(RoutedCosts::from_value)
                .transpose()?,
        })
    }
}

/// Largest site count accepted from the wire. Deserialization materialises
/// adjacency lists, so untrusted payloads must not be able to request
/// arbitrarily large graphs (simulable registers are far smaller anyway).
const MAX_WIRE_SITES: usize = 1024;

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(&str, Value)> =
            vec![("kind", Value::Str(self.kind().name().to_string()))];
        match self.kind() {
            TopologyKind::Grid { rows, cols } => {
                fields.push(("rows", rows.to_value()));
                fields.push(("cols", cols.to_value()));
            }
            TopologyKind::HeavyHex { cells } => {
                fields.push(("cells", cells.to_value()));
            }
            _ => fields.push(("sites", self.sites().to_value())),
        }
        if !self.site_quality().is_empty() {
            fields.push(("site_quality", self.site_quality().to_vec().to_value()));
        }
        if !self.edge_quality().is_empty() {
            fields.push(("edge_quality", self.edge_quality().to_vec().to_value()));
        }
        Value::object(fields)
    }
}

impl Deserialize for Topology {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let kind = value.field("kind")?.as_str()?;
        let bounded = |n: usize, what: &str| -> Result<usize, Error> {
            if n > MAX_WIRE_SITES {
                return Err(Error::custom(format!(
                    "topology {what} {n} exceeds the wire limit {MAX_WIRE_SITES}"
                )));
            }
            Ok(n)
        };
        let circuit_err = |e: crate::CircuitError| Error::custom(e.to_string());
        let base = match kind {
            "all-to-all" => {
                Topology::all_to_all(bounded(value.field("sites")?.as_usize()?, "site count")?)
            }
            "linear" => Topology::linear(bounded(value.field("sites")?.as_usize()?, "site count")?),
            "ring" => Topology::ring(bounded(value.field("sites")?.as_usize()?, "site count")?),
            "grid" => {
                let rows = bounded(value.field("rows")?.as_usize()?, "row count")?;
                let cols = bounded(value.field("cols")?.as_usize()?, "column count")?;
                bounded(rows.saturating_mul(cols), "site count")?;
                Topology::grid(rows, cols)
            }
            "heavy-hex" => {
                let cells = bounded(value.field("cells")?.as_usize()?, "cell count")?;
                bounded(
                    12usize.saturating_add(cells.saturating_sub(1).saturating_mul(9)),
                    "site count",
                )?;
                Topology::heavy_hex(cells)
            }
            other => return Err(Error::custom(format!("unknown topology kind {other:?}"))),
        }
        .map_err(circuit_err)?;
        let base = match value.get("site_quality") {
            Some(q) => base
                .with_site_quality(Vec::<f64>::from_value(q)?)
                .map_err(circuit_err)?,
            None => base,
        };
        match value.get("edge_quality") {
            Some(q) => base
                .with_edge_quality(Vec::<f64>::from_value(q)?)
                .map_err(circuit_err),
            None => Ok(base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn circuit_round_trips() {
        let c = toffoli_fig4();
        let back: Circuit = json::from_str(&json::to_string(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn topology_round_trips_every_family() {
        for t in [
            Topology::all_to_all(4).unwrap(),
            Topology::linear(5).unwrap(),
            Topology::ring(6).unwrap(),
            Topology::grid(2, 3).unwrap(),
            Topology::heavy_hex(2).unwrap(),
            Topology::linear(3)
                .unwrap()
                .with_site_quality(vec![1.0, 2.5, 1.0])
                .unwrap(),
            Topology::linear(3)
                .unwrap()
                .with_edge_quality(vec![1.5, 1.0])
                .unwrap(),
            Topology::ring(4)
                .unwrap()
                .with_site_quality(vec![1.0, 1.0, 3.0, 1.0])
                .unwrap()
                .with_edge_quality(vec![1.0, 2.0, 1.0, 1.0])
                .unwrap(),
        ] {
            let back: Topology = json::from_str(&json::to_string(&t)).unwrap();
            assert_eq!(back, t, "{t}");
        }
    }

    #[test]
    fn topology_deserialization_rejects_bad_payloads() {
        for bad in [
            r#"{"kind":"moebius","sites":4}"#,
            r#"{"kind":"linear","sites":0}"#,
            r#"{"kind":"linear","sites":1000000000}"#,
            r#"{"kind":"grid","rows":100000,"cols":100000}"#,
            r#"{"kind":"heavy-hex","cells":100000000}"#,
            r#"{"kind":"linear","sites":3,"site_quality":[1.0,-1.0,1.0]}"#,
            r#"{"kind":"linear","sites":3,"site_quality":[1.0]}"#,
            // Hostile edge-quality payloads: wrong count, non-positive,
            // non-finite, and a non-numeric element.
            r#"{"kind":"linear","sites":3,"edge_quality":[1.0]}"#,
            r#"{"kind":"linear","sites":3,"edge_quality":[1.0,0.0]}"#,
            r#"{"kind":"linear","sites":3,"edge_quality":[1.0,-3.0]}"#,
            r#"{"kind":"linear","sites":3,"edge_quality":[1e999,1.0]}"#,
            r#"{"kind":"linear","sites":3,"edge_quality":[1.0,"bad"]}"#,
        ] {
            assert!(json::from_str::<Topology>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn deserialization_revalidates_indices() {
        let mut value = match toffoli_fig4().to_value() {
            Value::Object(fields) => fields,
            _ => unreachable!(),
        };
        // Shrink the register below the ops' indices: push must reject.
        for (k, v) in value.iter_mut() {
            if k == "width" {
                *v = Value::UInt(1);
            }
        }
        let text = json::to_string(&CircuitValue(Value::Object(value)));
        assert!(json::from_str::<Circuit>(&text).is_err());
    }

    #[test]
    fn pass_level_round_trips() {
        for level in [
            PassLevel::NoisePreserving,
            PassLevel::Physical,
            PassLevel::PhysicalIdeal,
            PassLevel::Ideal,
        ] {
            let back: PassLevel = json::from_str(&json::to_string(&level)).unwrap();
            assert_eq!(back, level);
        }
        assert!(json::from_str::<PassLevel>("\"turbo\"").is_err());
    }

    #[test]
    fn resource_report_round_trips() {
        let report = ResourceReport::measure_physical(&toffoli_fig4());
        let back: ResourceReport = json::from_str(&json::to_string(&report)).unwrap();
        assert_eq!(back, report);
    }

    struct CircuitValue(Value);
    impl Serialize for CircuitValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
