//! Circuit cost analysis.
//!
//! The paper evaluates constructions by two costs (Section 2): the circuit
//! *depth* (critical path length, i.e. number of moments) and the gate
//! counts, in particular the number of two-qudit gates (Figure 10). The
//! paper's tree construction is expressed in three-qutrit gates which are
//! each implemented as 6 two-qutrit + 7 single-qutrit physical gates; the
//! [`CostWeights`] type captures that expansion so costs can be reported at
//! physical-gate granularity.

use crate::circuit::Circuit;
use crate::schedule::Schedule;

/// How to expand operations of each arity into physical one- and two-qudit
/// gates when accounting costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Physical two-qudit gates charged per three-qudit operation.
    pub two_qudit_per_three_qudit_op: usize,
    /// Physical single-qudit gates charged per three-qudit operation.
    pub one_qudit_per_three_qudit_op: usize,
    /// Depth (in physical moments) charged per three-qudit operation.
    pub depth_per_three_qudit_op: usize,
}

impl CostWeights {
    /// The paper's accounting: each three-qutrit gate is decomposed into
    /// 6 two-qutrit and 7 single-qutrit gates (Di & Wei \[15\]); we charge the
    /// decomposition a depth of 6 two-qudit layers (the single-qudit gates
    /// interleave with them).
    pub fn di_wei() -> Self {
        CostWeights {
            two_qudit_per_three_qudit_op: 6,
            one_qudit_per_three_qudit_op: 7,
            depth_per_three_qudit_op: 6,
        }
    }

    /// No expansion: three-qudit operations are counted as single gates of
    /// depth 1 (useful for reasoning about the logical circuit itself).
    pub fn logical() -> Self {
        CostWeights {
            two_qudit_per_three_qudit_op: 1,
            one_qudit_per_three_qudit_op: 0,
            depth_per_three_qudit_op: 1,
        }
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights::di_wei()
    }
}

/// A summary of a circuit's resource costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitCosts {
    /// Register width (number of qudits).
    pub width: usize,
    /// Total operation count at logical granularity.
    pub total_ops: usize,
    /// Number of single-qudit physical gates after expansion.
    pub one_qudit_gates: usize,
    /// Number of two-qudit physical gates after expansion.
    pub two_qudit_gates: usize,
    /// Number of logical operations touching three or more qudits (before
    /// expansion).
    pub three_plus_qudit_ops: usize,
    /// Logical depth: number of moments with operations counted as-is.
    pub logical_depth: usize,
    /// Physical depth: logical depth with each ≥3-qudit moment expanded by
    /// the configured weight.
    pub physical_depth: usize,
}

/// Computes the costs of a circuit under the given expansion weights.
pub fn analyze(circuit: &Circuit, weights: CostWeights) -> CircuitCosts {
    let schedule = Schedule::asap(circuit);
    let logical_depth = schedule.depth();

    let mut one_q = 0usize;
    let mut two_q = 0usize;
    let mut three_plus = 0usize;
    for op in circuit.iter() {
        match op.arity() {
            0 => {}
            1 => one_q += 1,
            2 => two_q += 1,
            _ => {
                three_plus += 1;
                two_q += weights.two_qudit_per_three_qudit_op;
                one_q += weights.one_qudit_per_three_qudit_op;
            }
        }
    }

    // Physical depth: each moment contributes 1 if it only has 1- or 2-qudit
    // gates, or the expansion depth if it contains a ≥3-qudit operation.
    let mut physical_depth = 0usize;
    for (m, op_indices) in schedule.iter() {
        let _ = m;
        let has_three = op_indices
            .iter()
            .any(|&i| circuit.operations()[i].arity() >= 3);
        physical_depth += if has_three {
            weights.depth_per_three_qudit_op
        } else {
            1
        };
    }

    CircuitCosts {
        width: circuit.width(),
        total_ops: circuit.len(),
        one_qudit_gates: one_q,
        two_qudit_gates: two_q,
        three_plus_qudit_ops: three_plus,
        logical_depth,
        physical_depth,
    }
}

/// Computes costs with the paper's Di & Wei expansion (the default).
pub fn analyze_default(circuit: &Circuit) -> CircuitCosts {
    analyze(circuit, CostWeights::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::operation::Control;

    fn three_qutrit_op_circuit() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        c
    }

    #[test]
    fn logical_weights_do_not_expand() {
        let c = three_qutrit_op_circuit();
        let costs = analyze(&c, CostWeights::logical());
        assert_eq!(costs.two_qudit_gates, 1);
        assert_eq!(costs.one_qudit_gates, 0);
        assert_eq!(costs.physical_depth, 1);
        assert_eq!(costs.three_plus_qudit_ops, 1);
    }

    #[test]
    fn di_wei_weights_expand_three_qutrit_ops() {
        let c = three_qutrit_op_circuit();
        let costs = analyze_default(&c);
        assert_eq!(costs.two_qudit_gates, 6);
        assert_eq!(costs.one_qudit_gates, 7);
        assert_eq!(costs.physical_depth, 6);
    }

    #[test]
    fn mixed_circuit_counts() {
        let mut c = three_qutrit_op_circuit();
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(1)], &[2])
            .unwrap();
        let costs = analyze_default(&c);
        assert_eq!(costs.total_ops, 3);
        assert_eq!(costs.one_qudit_gates, 7 + 1);
        assert_eq!(costs.two_qudit_gates, 6 + 1);
        // Moment 1: the 3-qutrit op (depth 6). Moment 2: X(0) and C X(1;2)
        // run in parallel (depth 1).
        assert_eq!(costs.logical_depth, 2);
        assert_eq!(costs.physical_depth, 7);
    }

    #[test]
    fn empty_circuit_has_zero_costs() {
        let c = Circuit::new(3, 4);
        let costs = analyze_default(&c);
        assert_eq!(costs.total_ops, 0);
        assert_eq!(costs.physical_depth, 0);
        assert_eq!(costs.two_qudit_gates, 0);
    }

    #[test]
    fn default_weights_are_di_wei() {
        assert_eq!(CostWeights::default(), CostWeights::di_wei());
    }
}
