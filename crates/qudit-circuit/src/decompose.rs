//! Physical lowering of multiply-controlled operations (Di & Wei).
//!
//! The paper's noise accounting assumes every three-input gate is executed
//! as the Di & Wei decomposition: **6 two-qudit gates and 7 single-qudit
//! gates, 6 two-qudit layers deep**. This module synthesises that
//! realisation *exactly* (as a unitary identity, for any qudit dimension
//! and any control levels), so the compiler can lower `≥ 3`-qudit
//! operations in the IR instead of the noise backends charging synthetic
//! error sites per high-arity operation.
//!
//! ## Construction
//!
//! For a doubly-controlled gate `C_a^{la} C_b^{lb}(U)` the block is built
//! from the group-commutator identity. Diagonalise the phase-normalised
//! target `U₀ = e^{-iφ}·U` (with `φ = arg(det U)/d`, so `det U₀ = 1`) as
//! `U₀ = Q·D·Q†`, and telescope `D = S·Λ·S⁻¹·Λ⁻¹` where `S` is the cyclic
//! shift `|k⟩ → |k+1⟩` and `Λ` is diagonal (`λ₀ = 1`, `λⱼ = λⱼ₋₁/dⱼ` —
//! consistent around the cycle precisely because `det U₀ = 1`). Then, with
//! every gate below acting on the target qudit `t`,
//!
//! ```text
//!   C_b(Λ⁻¹) · C_a(S⁻¹) · C_b(Λ) · C_a(S)   (first applied on the right)
//! ```
//!
//! multiplies to `D` exactly when both controls are active and to the
//! identity in every other branch (the `a`-gates alone telescope to `I`,
//! as do the `b`-gates alone). Conjugating the chain by the single-qudit
//! gates `Q†`/`Q` turns `D` into `U₀`, and the residual global phase
//! `e^{iφ}` — which no arrangement of `(a,t)/(b,t)` gates can produce,
//! since each branch determinant is forced to 1 — is restored by two
//! controlled-phase gates on the `(a, b)` pair. Identity padding gates
//! bring the single-qudit count to the 7 sites the paper's accounting
//! charges (3 on `a`, 2 on `b`, 2 on `t`), giving a block of exactly
//! **6 two-qudit + 7 single-qudit gates whose ASAP schedule has 6
//! two-qudit layers** — the numbers `CostWeights::di_wei` has always
//! inferred, now realised by a concrete circuit.
//!
//! Operations with more than two controls (they only arise from degenerate
//! all-`|2⟩` control subtrees) are lowered by the same commutator identity
//! recursively: split off one control, recurse on the rest. Multi-target
//! operations of arity ≥ 3 are not supported (none of the paper's
//! constructions produce one).

use crate::error::{CircuitError, CircuitResult};
use crate::gate::Gate;
use crate::operation::{Control, Operation};
use qudit_core::{eig_unitary, CMatrix, Complex};

/// Tolerance for the spectral decomposition of target gates.
const DECOMP_TOL: f64 = 1e-11;

/// The number of two-qudit gates a lowered doubly-controlled block
/// contains — the paper's Di & Wei count.
pub const DI_WEI_TWO_QUDIT_GATES: usize = 6;

/// The number of single-qudit gates a lowered doubly-controlled block
/// contains — the paper's Di & Wei count.
pub const DI_WEI_ONE_QUDIT_GATES: usize = 7;

/// Spectral data shared by the two- and many-control lowerings.
struct Spectral {
    /// Eigenvector basis of the target gate.
    q: CMatrix,
    /// `Λ` of the telescoped commutator (diagonal entries).
    lambda: Vec<Complex>,
    /// The residual global phase `φ = arg(det U)/d`.
    phi: f64,
}

fn spectral(gate: &Gate) -> CircuitResult<Spectral> {
    let dim = gate.dim();
    let (evals, q) = eig_unitary(gate.matrix(), DECOMP_TOL).ok_or_else(|| {
        CircuitError::UnsupportedOperation {
            reason: format!("gate {} is not unitary enough to diagonalise", gate.name()),
        }
    })?;
    let det = evals.iter().fold(Complex::ONE, |acc, &lambda| acc * lambda);
    let phi = det.arg() / dim as f64;
    let back = Complex::cis(-phi);
    // det(U₀) = 1, so λ telescopes consistently around the cycle.
    let mut lambda = vec![Complex::ONE; dim];
    for j in 1..dim {
        let d0 = evals[j] * back;
        lambda[j] = lambda[j - 1] * d0.conj();
    }
    Ok(Spectral { q, lambda, phi })
}

/// The cyclic shift matrix `S |k⟩ = |k+1 mod d⟩`.
fn shift(dim: usize) -> CMatrix {
    let mut m = CMatrix::zeros(dim, dim);
    for k in 0..dim {
        m.set((k + 1) % dim, k, Complex::ONE);
    }
    m
}

/// A single-qudit phase gate `diag(1, …, e^{iφ} at `level`, …, 1)`.
fn phase_gate(dim: usize, level: usize, phi: f64) -> Gate {
    let mut diag = vec![Complex::ONE; dim];
    diag[level] = Complex::cis(phi);
    Gate::new("DWph", dim, 1, CMatrix::diagonal(&diag)).expect("diagonal is square")
}

/// The identity padding gate.
fn pad_gate(dim: usize) -> Gate {
    Gate::new("DWpad", dim, 1, CMatrix::identity(dim)).expect("identity is square")
}

fn single(gate: Gate, qudit: usize) -> Operation {
    Operation::uncontrolled(gate, vec![qudit]).expect("one fresh target cannot collide")
}

fn controlled(gate: Gate, control: Control, target: usize) -> Operation {
    Operation::new(gate, vec![control], vec![target])
        .expect("control and target are distinct by construction")
}

/// Lowers a doubly-controlled single-target operation into the padded
/// Di & Wei block: 6 two-qudit gates (pair multiset `{ab, ab, bt, at, bt,
/// at}`) and 7 single-qudit gates (3 on `a`, 2 on `b`, 2 on `t`), exactly
/// 6 two-qudit layers deep.
fn lower_two_controls(op: &Operation) -> CircuitResult<Vec<Operation>> {
    let dim = op.gate().dim();
    let a = op.controls()[0];
    let b = op.controls()[1];
    let t = op.targets()[0];
    let sp = spectral(op.gate())?;

    let s = shift(dim);
    let lam = CMatrix::diagonal(&sp.lambda);
    let q_gate = Gate::new("DWq", dim, 1, sp.q.clone()).expect("square");
    let lam_gate = Gate::new("DWl", dim, 1, lam.clone()).expect("square");
    let s_gate = Gate::new("DWs", dim, 1, s.clone()).expect("square");
    let half_phase = phase_gate(dim, b.level, sp.phi / 2.0);
    let pad = pad_gate(dim);

    Ok(vec![
        // Global-phase restoration, first so the block's two-qudit layers
        // open on the (a, b) pair the later gates never revisit.
        controlled(half_phase.clone(), a, b.qudit),
        controlled(half_phase, a, b.qudit),
        // Q† … Q conjugation of the commutator chain on the target.
        single(q_gate.inverse(), t),
        controlled(lam_gate.inverse(), b, t),
        single(pad.clone(), a.qudit),
        controlled(s_gate.inverse(), a, t),
        single(pad.clone(), b.qudit),
        controlled(lam_gate, b, t),
        single(pad.clone(), a.qudit),
        controlled(s_gate, a, t),
        single(q_gate, t),
        single(pad.clone(), a.qudit),
        single(pad, b.qudit),
    ])
}

/// Lowers an operation with `m ≥ 3` controls by one commutator level:
/// `C_{c₀}C_R(U) = C_{c₀}(B⁻¹)·C_R(A⁻¹)·C_{c₀}(B)·C_R(A)·phase`, each
/// factor of arity `m` (recursed on) or 2.
fn lower_many_controls(op: &Operation) -> CircuitResult<Vec<Operation>> {
    let dim = op.gate().dim();
    let t = op.targets()[0];
    let first = op.controls()[0];
    let rest: Vec<Control> = op.controls()[1..].to_vec();
    let sp = spectral(op.gate())?;

    let lam = CMatrix::diagonal(&sp.lambda);
    let qdag = sp.q.adjoint();
    // A = Q Λ⁻¹ Q†, B = Q S⁻¹ Q† (conjugation kept inside the gates: the
    // recursion re-diagonalises them anyway).
    let a_mat = &(&sp.q * &lam.adjoint()) * &qdag;
    let b_mat = &(&sp.q * &shift(dim).adjoint()) * &qdag;
    let a_gate = Gate::new("DWa", dim, 1, a_mat).expect("square");
    let b_gate = Gate::new("DWb", dim, 1, b_mat).expect("square");

    let mut ops = vec![
        Operation::new(a_gate.clone(), rest.clone(), vec![t])?,
        controlled(b_gate.clone(), first, t),
        Operation::new(a_gate.inverse(), rest.clone(), vec![t])?,
        controlled(b_gate.inverse(), first, t),
    ];
    // The phase correction rides on the control register: e^{iφ} when
    // every control is active — an (m−1)-controlled phase, recursed on.
    // Compared against a tolerance, not zero: for a det-1 gate the
    // eigenvalue product carries ~1e-16 rounding noise, and an exact-zero
    // test would emit a whole spurious correction block for it.
    let phase = sp.phi;
    if phase.abs() > DECOMP_TOL {
        let (last, others) = rest.split_last().expect("m ≥ 3 controls");
        let mut phase_controls = vec![first];
        phase_controls.extend(others.iter().copied());
        ops.push(Operation::new(
            phase_gate(dim, last.level, phase),
            phase_controls,
            vec![last.qudit],
        )?);
    }
    Ok(ops)
}

/// Lowers one operation into an equivalent sequence of arity ≤ 2
/// operations. Operations already of arity ≤ 2 pass through unchanged.
///
/// # Errors
///
/// Returns [`CircuitError::UnsupportedOperation`] for multi-target
/// operations of arity ≥ 3 (no paper construction produces one) and for
/// gates whose matrix cannot be diagonalised as a unitary.
pub fn decompose_operation(op: &Operation) -> CircuitResult<Vec<Operation>> {
    if op.arity() <= 2 {
        return Ok(vec![op.clone()]);
    }
    if op.targets().len() != 1 {
        return Err(CircuitError::UnsupportedOperation {
            reason: format!(
                "cannot lower a {}-target operation of arity {}",
                op.targets().len(),
                op.arity()
            ),
        });
    }
    if op.controls().len() == 2 {
        return lower_two_controls(op);
    }
    let mut out = Vec::new();
    for factor in lower_many_controls(op)? {
        out.extend(decompose_operation(&factor)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::gates::controlled_matrix_multi;

    /// The full register unitary of an op sequence over `width` qudits —
    /// small widths only (test oracle).
    fn sequence_matrix(ops: &[Operation], dim: usize, width: usize) -> CMatrix {
        let n = dim.pow(width as u32);
        let mut total = CMatrix::identity(n);
        for op in ops {
            let mut local = op.full_matrix();
            // Embed into the full register: build the permutation of qudits
            // (op qudits in their order, then the rest).
            let qudits = op.qudits();
            let mut order: Vec<usize> = qudits.clone();
            for q in 0..width {
                if !qudits.contains(&q) {
                    order.push(q);
                }
            }
            let pad = width - qudits.len();
            for _ in 0..pad {
                local = local.kron(&CMatrix::identity(dim));
            }
            // Permute register axes: full[i] with digits in `order` space.
            let mut perm = vec![0usize; n];
            for (idx, slot) in perm.iter_mut().enumerate() {
                // digits of idx in circuit order (q0 most significant).
                let mut digits = vec![0usize; width];
                let mut rem = idx;
                for d_slot in (0..width).rev() {
                    digits[d_slot] = rem % dim;
                    rem /= dim;
                }
                let mut reordered = 0usize;
                for &q in &order {
                    reordered = reordered * dim + digits[q];
                }
                *slot = reordered;
            }
            let p = {
                let mut m = CMatrix::zeros(n, n);
                for (i, &j) in perm.iter().enumerate() {
                    m.set(j, i, Complex::ONE);
                }
                m
            };
            let embedded = &(&p.adjoint() * &local) * &p;
            total = &embedded * &total;
        }
        total
    }

    fn assert_lowering_exact(op: &Operation, dim: usize, width: usize) {
        let lowered = decompose_operation(op).expect("lowering");
        assert!(lowered.iter().all(|o| o.arity() <= 2));
        let want = sequence_matrix(std::slice::from_ref(op), dim, width);
        let got = sequence_matrix(&lowered, dim, width);
        assert!(
            got.approx_eq(&want, 1e-9),
            "lowering of {op} drifted: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn two_controlled_increment_lowers_exactly() {
        for dim in [2usize, 3, 4] {
            let op = Operation::new(
                Gate::increment(dim),
                vec![Control::on_one(0), Control::new(1, dim - 1)],
                vec![2],
            )
            .unwrap();
            assert_lowering_exact(&op, dim, 3);
        }
    }

    #[test]
    fn two_controlled_swap_levels_lowers_exactly() {
        // X02 has determinant −1: exercises the phase-correction pair.
        let op = Operation::new(
            Gate::swap_levels(3, 0, 2),
            vec![Control::on_two(0), Control::on_zero(1)],
            vec![2],
        )
        .unwrap();
        assert_lowering_exact(&op, 3, 3);
    }

    #[test]
    fn two_controlled_dense_gate_lowers_exactly() {
        let op = Operation::new(
            Gate::fourier(3),
            vec![Control::on_one(0), Control::on_two(1)],
            vec![2],
        )
        .unwrap();
        assert_lowering_exact(&op, 3, 3);
    }

    #[test]
    fn block_has_di_wei_counts_and_six_two_qudit_layers() {
        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_one(0), Control::on_two(1)],
            vec![2],
        )
        .unwrap();
        let lowered = decompose_operation(&op).unwrap();
        let two_q = lowered.iter().filter(|o| o.arity() == 2).count();
        let one_q = lowered.iter().filter(|o| o.arity() == 1).count();
        assert_eq!(two_q, DI_WEI_TWO_QUDIT_GATES);
        assert_eq!(one_q, DI_WEI_ONE_QUDIT_GATES);
        // Pair multiset {01, 01, 12, 02, 12, 02}; singles {0×3, 1×2, 2×2}.
        let mut pairs: Vec<Vec<usize>> = lowered
            .iter()
            .filter(|o| o.arity() == 2)
            .map(|o| o.qudits())
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                vec![0, 1],
                vec![0, 1],
                vec![0, 2],
                vec![0, 2],
                vec![1, 2],
                vec![1, 2]
            ]
        );
        // ASAP layers containing a two-qudit gate: exactly 6.
        let mut circuit = crate::circuit::Circuit::new(3, 3);
        for o in &lowered {
            circuit.push(o.clone()).unwrap();
        }
        let schedule = crate::schedule::Schedule::asap(&circuit);
        let layers = schedule
            .moments()
            .iter()
            .filter(|m| m.max_arity() >= 2)
            .count();
        assert_eq!(layers, 6);
    }

    #[test]
    fn three_controlled_gate_lowers_recursively_and_exactly() {
        let op = Operation::new(
            Gate::x(2),
            vec![Control::on_one(0), Control::on_one(1), Control::on_one(2)],
            vec![3],
        )
        .unwrap();
        assert_lowering_exact(&op, 2, 4);
    }

    #[test]
    fn det_one_recursive_lowering_emits_no_spurious_phase_block() {
        // increment(3) is a 3-cycle (det exactly 1): the recursion must not
        // let ~1e-16 rounding in arg(det) grow a full extra phase-correction
        // block. Expected: 4 commutator factors — two arity-3 (13 ops each)
        // and two arity-2 — and nothing else.
        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_one(0), Control::on_one(1), Control::on_one(2)],
            vec![3],
        )
        .unwrap();
        let lowered = decompose_operation(&op).unwrap();
        assert_eq!(lowered.len(), 2 * 13 + 2, "no spurious phase block");
        assert_eq!(lowered.iter().filter(|o| o.arity() == 2).count(), 14);
        assert_lowering_exact(&op, 3, 4);
    }

    #[test]
    fn multi_target_high_arity_is_rejected() {
        let op = Operation::new(Gate::swap(3), vec![Control::on_one(0)], vec![1, 2]).unwrap();
        assert!(matches!(
            decompose_operation(&op),
            Err(CircuitError::UnsupportedOperation { .. })
        ));
    }

    #[test]
    fn low_arity_ops_pass_through() {
        let op = Operation::new(Gate::x(3), vec![Control::on_one(0)], vec![1]).unwrap();
        assert_eq!(decompose_operation(&op).unwrap(), vec![op]);
    }

    #[test]
    fn full_matrix_against_controlled_matrix_multi() {
        // Cross-check the test oracle itself on a plain controlled op.
        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_one(0), Control::on_two(1)],
            vec![2],
        )
        .unwrap();
        let spec: Vec<(usize, usize)> = vec![(3, 1), (3, 2)];
        let want = controlled_matrix_multi(&spec, Gate::increment(3).matrix());
        let got = sequence_matrix(std::slice::from_ref(&op), 3, 3);
        assert!(got.approx_eq(&want, 1e-12));
    }
}
