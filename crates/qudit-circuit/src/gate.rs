//! Gate definitions.
//!
//! A [`Gate`] is a named unitary acting on one or more target qudits of a
//! common dimension. Control structure is *not* part of the gate — it is
//! attached by [`Operation`](crate::Operation) — mirroring how the paper's
//! circuits condition the same base gates (`X`, `X+1`, `X−1`, `Z`, `U`) on
//! different control levels.

use crate::error::{CircuitError, CircuitResult};
use qudit_core::{gates, CMatrix, Complex};
use std::f64::consts::TAU;
use std::fmt;
use std::sync::Arc;

/// A named unitary gate acting on `num_targets` qudits of dimension `dim`.
///
/// Gates are cheap to clone: the matrix is reference counted.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    name: String,
    dim: usize,
    num_targets: usize,
    matrix: Arc<CMatrix>,
}

impl Gate {
    /// Creates a gate from its unitary matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::GateShapeMismatch`] if the matrix is not
    /// `dim^num_targets × dim^num_targets`.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        num_targets: usize,
        matrix: CMatrix,
    ) -> CircuitResult<Self> {
        let expected = dim.pow(num_targets as u32);
        if matrix.rows() != expected || matrix.cols() != expected {
            return Err(CircuitError::GateShapeMismatch {
                expected,
                actual: matrix.rows(),
            });
        }
        Ok(Gate {
            name: name.into(),
            dim,
            num_targets,
            matrix: Arc::new(matrix),
        })
    }

    /// Creates a single-target gate from its matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::GateShapeMismatch`] if the matrix is not
    /// `dim × dim`.
    pub fn single(name: impl Into<String>, dim: usize, matrix: CMatrix) -> CircuitResult<Self> {
        Gate::new(name, dim, 1, matrix)
    }

    /// The gate's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The qudit dimension the gate acts on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of target qudits.
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// The gate's unitary matrix (over the target space only).
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// A reference-counted handle to the gate's matrix, for callers that
    /// need to share the matrix without cloning its storage.
    pub fn matrix_arc(&self) -> Arc<CMatrix> {
        Arc::clone(&self.matrix)
    }

    /// Returns the inverse gate (adjoint matrix).
    pub fn inverse(&self) -> Gate {
        let name = if let Some(stripped) = self.name.strip_suffix('†') {
            stripped.to_string()
        } else {
            format!("{}†", self.name)
        };
        Gate {
            name,
            dim: self.dim,
            num_targets: self.num_targets,
            matrix: Arc::new(self.matrix.adjoint()),
        }
    }

    /// Returns the classical permutation implemented by this gate, if it is
    /// a basis permutation.
    pub fn as_permutation(&self) -> Option<Vec<usize>> {
        self.matrix.as_permutation(1e-9)
    }

    /// Returns `true` if the gate is a classical basis permutation.
    pub fn is_classical(&self) -> bool {
        self.matrix.is_permutation(1e-9)
    }

    // ------------------------------------------------------------------
    // Standard qubit gates (valid for any dim >= 2: they act on levels 0/1).
    // ------------------------------------------------------------------

    /// The X (NOT) gate on levels |0⟩,|1⟩ of a `dim`-level qudit.
    pub fn x(dim: usize) -> Gate {
        let m = if dim == 2 {
            gates::qubit::x()
        } else {
            gates::qubit::x().embed(dim, &[0, 1])
        };
        Gate::new("X", dim, 1, m).expect("shape is correct by construction")
    }

    /// The Z gate on levels |0⟩,|1⟩ of a `dim`-level qudit.
    pub fn z(dim: usize) -> Gate {
        let m = if dim == 2 {
            gates::qubit::z()
        } else {
            gates::qubit::z().embed(dim, &[0, 1])
        };
        Gate::new("Z", dim, 1, m).expect("shape is correct by construction")
    }

    /// The Hadamard gate on levels |0⟩,|1⟩ of a `dim`-level qudit.
    pub fn h(dim: usize) -> Gate {
        let m = if dim == 2 {
            gates::qubit::h()
        } else {
            gates::qubit::h().embed(dim, &[0, 1])
        };
        Gate::new("H", dim, 1, m).expect("shape is correct by construction")
    }

    /// The fractional NOT `X^t` on levels |0⟩,|1⟩ of a `dim`-level qudit.
    ///
    /// Small-angle controlled roots of X appear in the qubit-only baselines.
    pub fn x_pow(dim: usize, t: f64) -> Gate {
        let m = if dim == 2 {
            gates::qubit::x_pow(t)
        } else {
            gates::qubit::x_pow(t).embed(dim, &[0, 1])
        };
        Gate::new(format!("X^{t:.4}"), dim, 1, m).expect("shape is correct by construction")
    }

    // ------------------------------------------------------------------
    // Qutrit / qudit gates.
    // ------------------------------------------------------------------

    /// The level-swap gate exchanging basis states `a` and `b`.
    ///
    /// For qutrits these are the paper's `X01`, `X02` and `X12` gates.
    ///
    /// # Panics
    ///
    /// Panics if the levels are invalid for `dim`.
    pub fn swap_levels(dim: usize, a: usize, b: usize) -> Gate {
        let m = gates::qudit::level_swap(dim, a, b);
        Gate::new(format!("X{}{}", a.min(b), a.max(b)), dim, 1, m)
            .expect("shape is correct by construction")
    }

    /// The cyclic increment `|k⟩ → |k+1 mod dim⟩` (the paper's `X+1` for
    /// qutrits).
    pub fn increment(dim: usize) -> Gate {
        Gate::new("X+1", dim, 1, gates::qudit::shift(dim)).expect("shape is correct")
    }

    /// The cyclic decrement `|k⟩ → |k−1 mod dim⟩` (the paper's `X−1` for
    /// qutrits).
    pub fn decrement(dim: usize) -> Gate {
        Gate::new("X-1", dim, 1, gates::qudit::shift_by(dim, dim - 1)).expect("shape is correct")
    }

    /// The generalised clock gate `Z_d`.
    pub fn clock(dim: usize) -> Gate {
        Gate::new("Zd", dim, 1, gates::qudit::clock(dim)).expect("shape is correct")
    }

    /// The generalised Fourier (Hadamard) gate `F_d`.
    pub fn fourier(dim: usize) -> Gate {
        Gate::new("Fd", dim, 1, gates::qudit::fourier(dim)).expect("shape is correct")
    }

    /// The QFT controlled-phase gate `CP[k]`: the symmetric two-qudit
    /// diagonal unitary `|a,b⟩ → e^{2πi·a·b/dim^k} |a,b⟩`, the qudit
    /// generalisation of the qubit QFT's controlled `R_k` rotation. `k ≥ 2`
    /// in QFT circuits (the `k = 1` case is covered by the Fourier gate on
    /// each digit).
    pub fn controlled_phase(dim: usize, k: u32) -> Gate {
        let denom = (dim as f64).powi(k as i32);
        let mut diag = vec![Complex::ONE; dim * dim];
        for a in 0..dim {
            for b in 0..dim {
                diag[a * dim + b] = Complex::cis(TAU * (a * b) as f64 / denom);
            }
        }
        Gate::new(format!("CP[{k}]"), dim, 2, CMatrix::diagonal(&diag))
            .expect("shape is correct by construction")
    }

    /// The qudit CSUM gate `|a,b⟩ → |a, a+b mod dim⟩`: the modular-sum
    /// generalisation of CNOT, the entangler of qudit GHZ preparation.
    pub fn csum(dim: usize) -> Gate {
        let mut perm = vec![0usize; dim * dim];
        for a in 0..dim {
            for b in 0..dim {
                perm[a * dim + b] = a * dim + (a + b) % dim;
            }
        }
        Gate::new("CSUM", dim, 2, CMatrix::permutation(&perm))
            .expect("shape is correct by construction")
    }

    /// The phase-ramp gate `|l⟩ → e^{2πi·l·turns} |l⟩`: a phase linear in
    /// the level index. Controlled on another qudit's levels it builds the
    /// doubly-conditioned phase accumulations of the QFT multiplier.
    pub fn phase_ramp(dim: usize, turns: f64) -> Gate {
        let diag: Vec<Complex> = (0..dim)
            .map(|l| Complex::cis(TAU * l as f64 * turns))
            .collect();
        Gate::new(format!("PR[{turns:.6}]"), dim, 1, CMatrix::diagonal(&diag))
            .expect("shape is correct by construction")
    }

    /// A rotation by `theta` in the |0⟩/|1⟩ subspace of a `dim`-level qudit
    /// (levels ≥ 2 untouched) — the partial-swap primitive of W-state
    /// preparation.
    pub fn ry01(dim: usize, theta: f64) -> Gate {
        let m = if dim == 2 {
            gates::qubit::ry(theta)
        } else {
            gates::qubit::ry(theta).embed(dim, &[0, 1])
        };
        Gate::new(format!("RY01[{theta:.4}]"), dim, 1, m).expect("shape is correct by construction")
    }

    /// A two-qudit SWAP gate.
    pub fn swap(dim: usize) -> Gate {
        let n = dim * dim;
        let mut perm = vec![0usize; n];
        for a in 0..dim {
            for b in 0..dim {
                perm[a * dim + b] = b * dim + a;
            }
        }
        Gate::new("SWAP", dim, 2, CMatrix::permutation(&perm)).expect("shape is correct")
    }

    /// An arbitrary named single-qudit gate from a matrix. Alias of
    /// [`Gate::single`] kept for readability at call sites.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::GateShapeMismatch`] if the matrix has the
    /// wrong shape.
    pub fn from_matrix(
        name: impl Into<String>,
        dim: usize,
        matrix: CMatrix,
    ) -> CircuitResult<Gate> {
        Gate::single(name, dim, matrix)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gates_have_correct_shapes() {
        assert_eq!(Gate::x(2).matrix().rows(), 2);
        assert_eq!(Gate::x(3).matrix().rows(), 3);
        assert_eq!(Gate::swap(3).matrix().rows(), 9);
        assert_eq!(Gate::swap(3).num_targets(), 2);
    }

    #[test]
    fn x_on_qutrit_fixes_level_two() {
        let g = Gate::x(3);
        let perm = g.as_permutation().unwrap();
        assert_eq!(perm, vec![1, 0, 2]);
    }

    #[test]
    fn increment_decrement_are_inverses() {
        let inc = Gate::increment(3);
        let dec = Gate::decrement(3);
        let product = inc.matrix() * dec.matrix();
        assert!(product.approx_eq(&CMatrix::identity(3), 1e-12));
    }

    #[test]
    fn inverse_flips_dagger_suffix() {
        let h = Gate::h(3);
        let hd = h.inverse();
        assert_eq!(hd.name(), "H†");
        assert_eq!(hd.inverse().name(), "H");
    }

    #[test]
    fn classical_detection() {
        assert!(Gate::x(3).is_classical());
        assert!(Gate::increment(3).is_classical());
        assert!(!Gate::h(3).is_classical());
        assert!(!Gate::fourier(3).is_classical());
    }

    #[test]
    fn rejects_wrong_shape() {
        let m = CMatrix::identity(2);
        assert!(Gate::new("bad", 3, 1, m).is_err());
    }

    #[test]
    fn swap_gate_swaps() {
        let g = Gate::swap(2);
        let perm = g.as_permutation().unwrap();
        assert_eq!(perm, vec![0, 2, 1, 3]);
    }

    #[test]
    fn controlled_phase_is_symmetric_and_diagonal() {
        let g = Gate::controlled_phase(3, 2);
        assert!(g.matrix().is_diagonal(1e-12));
        // |2,2⟩ picks up e^{2πi·4/9}; symmetric in the two digits.
        let expected = Complex::cis(TAU * 4.0 / 9.0);
        let got = g.matrix().get(8, 8);
        assert!((got - expected).abs() < 1e-12);
        for a in 0..3 {
            for b in 0..3 {
                let ab = g.matrix().get(a * 3 + b, a * 3 + b);
                let ba = g.matrix().get(b * 3 + a, b * 3 + a);
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn csum_adds_control_into_target() {
        let g = Gate::csum(3);
        let perm = g.as_permutation().unwrap();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(perm[a * 3 + b], a * 3 + (a + b) % 3);
            }
        }
    }

    #[test]
    fn phase_ramp_phases_scale_with_level() {
        let g = Gate::phase_ramp(3, 0.25);
        assert!(g.matrix().is_diagonal(1e-12));
        for l in 0..3 {
            let expected = Complex::cis(TAU * l as f64 * 0.25);
            assert!((g.matrix().get(l, l) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn ry01_rotates_only_the_qubit_subspace() {
        let g = Gate::ry01(3, std::f64::consts::PI);
        // θ = π maps |0⟩ → |1⟩ (up to sign) and fixes |2⟩.
        assert!((g.matrix().get(1, 0).abs() - 1.0).abs() < 1e-12);
        assert!((g.matrix().get(2, 2) - Complex::ONE).abs() < 1e-12);
        assert!(g.matrix().is_unitary(1e-12));
    }

    #[test]
    fn x_pow_half_squares_to_x() {
        let v = Gate::x_pow(3, 0.5);
        let vv = v.matrix() * v.matrix();
        assert!(vv.approx_eq(Gate::x(3).matrix(), 1e-10));
    }
}
