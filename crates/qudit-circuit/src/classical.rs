//! Classical (basis-state) simulation of permutation circuits.
//!
//! The paper (Section 6) extends Cirq to let gates "specify their action on
//! classical non-superposition input states without considering full state
//! vectors", reducing verification cost from exponential to linear in the
//! circuit width. All of the paper's constructions are classical reversible
//! circuits (possibly up to the final target gate), so every classical input
//! can be verified in `O(width)` space and `O(gates)` time.

use crate::circuit::Circuit;
use crate::error::{CircuitError, CircuitResult};

/// Applies a classical (permutation) circuit to a basis-state input and
/// returns the output digits.
///
/// # Errors
///
/// Returns an error if the input length does not match the circuit width, a
/// digit is out of range, or the circuit contains a non-classical gate.
pub fn simulate_classical(circuit: &Circuit, input: &[usize]) -> CircuitResult<Vec<usize>> {
    if input.len() != circuit.width() {
        return Err(CircuitError::InvalidClassicalInput {
            reason: format!(
                "input has {} digits but the circuit has width {}",
                input.len(),
                circuit.width()
            ),
        });
    }
    for (i, &d) in input.iter().enumerate() {
        if d >= circuit.dim() {
            return Err(CircuitError::InvalidClassicalInput {
                reason: format!(
                    "digit {d} at position {i} exceeds dimension {}",
                    circuit.dim()
                ),
            });
        }
    }
    let mut digits = input.to_vec();
    for op in circuit.iter() {
        op.apply_classical(&mut digits)?;
    }
    Ok(digits)
}

/// Enumerates all basis states of the given width and dimension.
///
/// The iteration order is lexicographic with qudit 0 most significant,
/// matching [`qudit_core::StateVector`] index order.
pub fn all_basis_states(dim: usize, width: usize) -> impl Iterator<Item = Vec<usize>> {
    let total = dim.pow(width as u32);
    (0..total).map(move |mut idx| {
        let mut digits = vec![0usize; width];
        for slot in digits.iter_mut().rev() {
            *slot = idx % dim;
            idx /= dim;
        }
        digits
    })
}

/// Enumerates only the basis states whose digits are all 0 or 1 — the qubit
/// subspace inputs relevant for the paper's constructions (inputs and
/// outputs are qubits even though intermediate states may occupy |2⟩).
pub fn all_binary_basis_states(width: usize) -> impl Iterator<Item = Vec<usize>> {
    (0..(1usize << width)).map(move |idx| {
        (0..width)
            .map(|bit| (idx >> (width - 1 - bit)) & 1)
            .collect()
    })
}

/// A verification counterexample: `(input, expected output, actual output)`.
pub type Mismatch = (Vec<usize>, Vec<usize>, Vec<usize>);

/// Exhaustively checks that `circuit` implements the classical function
/// `expected` on every binary input, returning the first counterexample if
/// one exists.
///
/// `expected` receives the input digits and returns the expected output
/// digits.
///
/// # Errors
///
/// Propagates simulation errors (e.g. non-classical gates).
pub fn verify_classical_function<F>(
    circuit: &Circuit,
    expected: F,
) -> CircuitResult<Option<Mismatch>>
where
    F: Fn(&[usize]) -> Vec<usize>,
{
    for input in all_binary_basis_states(circuit.width()) {
        let actual = simulate_classical(circuit, &input)?;
        let want = expected(&input);
        if actual != want {
            return Ok(Some((input, want, actual)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::operation::Control;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn toffoli_truth_table_via_classical_sim() {
        let c = toffoli_fig4();
        let mismatch = verify_classical_function(&c, |input| {
            let mut out = input.to_vec();
            if input[0] == 1 && input[1] == 1 {
                out[2] = 1 - out[2];
            }
            out
        })
        .unwrap();
        assert!(mismatch.is_none(), "counterexample: {mismatch:?}");
    }

    #[test]
    fn classical_sim_rejects_bad_inputs() {
        let c = toffoli_fig4();
        assert!(simulate_classical(&c, &[0, 1]).is_err());
        assert!(simulate_classical(&c, &[0, 1, 7]).is_err());
    }

    #[test]
    fn all_basis_states_count_and_order() {
        let states: Vec<_> = all_basis_states(3, 2).collect();
        assert_eq!(states.len(), 9);
        assert_eq!(states[0], vec![0, 0]);
        assert_eq!(states[1], vec![0, 1]);
        assert_eq!(states[3], vec![1, 0]);
        assert_eq!(states[8], vec![2, 2]);
    }

    #[test]
    fn binary_basis_states_are_binary() {
        let states: Vec<_> = all_binary_basis_states(3).collect();
        assert_eq!(states.len(), 8);
        assert!(states.iter().all(|s| s.iter().all(|&d| d < 2)));
        assert_eq!(states[5], vec![1, 0, 1]);
    }

    #[test]
    fn verify_reports_counterexample() {
        // An intentionally wrong expectation: Toffoli never flips when the
        // controls are 0.
        let c = toffoli_fig4();
        let mismatch = verify_classical_function(&c, |input| {
            let mut out = input.to_vec();
            out[2] = 1 - out[2]; // expect an unconditional flip — wrong
            out
        })
        .unwrap();
        assert!(mismatch.is_some());
        let (input, want, got) = mismatch.unwrap();
        assert_ne!(want, got);
        assert_eq!(input.len(), 3);
    }

    #[test]
    fn classical_sim_runs_in_linear_space_for_wide_circuits() {
        // A width-20 circuit would need 3^20 ≈ 3.5e9 amplitudes for a state
        // vector; classical simulation handles it instantly.
        let width = 20;
        let mut c = Circuit::new(3, width);
        for q in 0..width - 1 {
            c.push_controlled(Gate::increment(3), &[Control::on_one(q)], &[q + 1])
                .unwrap();
        }
        let mut input = vec![1usize; width];
        input[width - 1] = 0;
        let out = simulate_classical(&c, &input).unwrap();
        // Each control is 1, so each target gets incremented once in turn,
        // but incrementing turns the qudit to 2, breaking later controls?
        // No: gate q controls on qudit q being 1 and increments qudit q+1.
        // After the first gate qudit 1 becomes 2, so the second gate (control
        // on qudit 1 == 1) does not fire.
        assert_eq!(out[1], 2);
        assert_eq!(out[2], 1);
    }
}
