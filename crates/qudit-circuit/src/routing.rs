//! Connectivity-constrained routing: initial placement plus qudit-SWAP
//! insertion.
//!
//! Devices are not all-to-all connected, but every circuit in this IR is
//! written against a fully connected logical register. The [`RoutingPass`]
//! closes the gap for a given [`Topology`]: it picks an initial *placement*
//! of logical qudits onto physical sites by greedy interaction-graph
//! mapping (optionally steered by per-site and per-edge quality weights, so
//! the hottest qudits land on the least noisy sites and away from the worst
//! links), then walks the operation list and inserts qudit-SWAPs — chosen
//! with a decaying-lookahead cost heuristic that also penalises executing a
//! SWAP on a poor-quality edge — whenever a two-qudit gate's endpoints are
//! not adjacent.
//!
//! The routed circuit acts on *sites*. The pass records the initial
//! placement and the final (post-SWAP) logical→site mapping in a
//! [`RoutingSummary`]; composing the routed circuit with those
//! permutations recovers the original unitary exactly, which is what the
//! differential test harness checks:
//!
//! ```text
//! routed ∘ embed(placement) = embed(final_mapping) ∘ unrouted
//! ```
//!
//! Inserted SWAPs are full `d²`-permutations ([`Gate::swap`]) named
//! `"RSWAP"` so router-inserted operations remain distinguishable from the
//! circuit's own gates. Routing runs once per compilation (it keys on the
//! summary already being present) and leaves the operation list completely
//! untouched when every multi-qudit gate is already nearest-neighbour — in
//! particular on an all-to-all topology it is the identity on the op list.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::operation::{Control, Operation};
use crate::passes::{CircuitIr, Pass, PassStats};
use crate::topology::Topology;

/// How many upcoming two-qudit interactions the SWAP heuristic scores.
const LOOKAHEAD_WINDOW: usize = 8;
/// Geometric decay applied to each successive lookahead interaction.
const LOOKAHEAD_DECAY: f64 = 0.5;

/// What one [`RoutingPass`] invocation did: the placement permutations and
/// the SWAP/unroutable counts the routed resource columns are built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingSummary {
    /// Initial placement: `placement[q]` is the site logical qudit `q`
    /// starts on.
    pub placement: Vec<usize>,
    /// Final mapping after all inserted SWAPs: `final_mapping[q]` is the
    /// site logical qudit `q`'s state ends on.
    pub final_mapping: Vec<usize>,
    /// Number of qudit-SWAP operations inserted.
    pub inserted_swaps: usize,
    /// Operations of arity ≥ 3 whose qudits could not be made mutually
    /// adjacent (most topologies cannot host a 3-clique); they pass
    /// through remapped but un-localised.
    pub unrouted: usize,
}

impl RoutingSummary {
    /// An identity summary for `width` qudits: trivial placement, no SWAPs.
    pub(crate) fn identity(width: usize) -> Self {
        RoutingSummary {
            placement: (0..width).collect(),
            final_mapping: (0..width).collect(),
            inserted_swaps: 0,
            unrouted: 0,
        }
    }

    /// Whether routing left the circuit untouched (identity placement and
    /// no inserted SWAPs).
    pub fn is_identity(&self) -> bool {
        self.inserted_swaps == 0
            && self.placement.iter().enumerate().all(|(q, &s)| q == s)
            && self.final_mapping.iter().enumerate().all(|(q, &s)| q == s)
    }
}

/// The routing/mapping pass. See the module docs for the algorithm.
#[derive(Clone, Debug)]
pub struct RoutingPass {
    topology: Topology,
}

impl RoutingPass {
    /// A routing pass targeting `topology`. The topology's site count must
    /// equal the width of the circuits it runs on; mismatched invocations
    /// are recorded in the pass statistics and leave the circuit untouched
    /// (the job layer rejects mismatches before compilation).
    pub fn new(topology: Topology) -> Self {
        RoutingPass { topology }
    }

    /// The topology this pass routes for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl Pass for RoutingPass {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, ir: &mut CircuitIr) -> PassStats {
        let ops_before = ir.circuit().len();
        let stats = |ops_after: usize, detail: String| PassStats {
            pass: "route",
            round: 0,
            ops_before,
            ops_after,
            detail,
            rewrote: false,
        };

        if ir.routing.is_some() {
            return stats(ops_before, "already routed".to_string());
        }
        let width = ir.circuit().width();
        if self.topology.sites() != width {
            return stats(
                ops_before,
                format!(
                    "skipped: {} site(s) for width {width}",
                    self.topology.sites()
                ),
            );
        }

        // Fast path: every multi-qudit gate is already nearest-neighbour
        // under the identity mapping (always true on all-to-all). The op
        // list — and any frame partition — stays untouched, so routing is
        // provably the identity here.
        let legal_as_is = self.topology.is_all_to_all()
            || ir.circuit().iter().all(|op| {
                let qs = op.qudits();
                let local = pairs(&qs).all(|(a, b)| self.topology.is_adjacent(a, b));
                local
            });
        if legal_as_is {
            ir.routing = Some(RoutingSummary::identity(width));
            return stats(ops_before, "already nearest-neighbour, 0 SWAPs".to_string());
        }

        let (ops, summary) = route(ir.circuit(), &self.topology);
        let detail = format!(
            "{} SWAP(s) inserted, {} unroutable op(s)",
            summary.inserted_swaps, summary.unrouted
        );
        let ops_after = ops.len();
        ir.replace_ops(ops);
        ir.routing = Some(summary);
        // Routing rewrites the op list (logical qudits → sites) even when
        // it inserts zero SWAPs, so the count can come back unchanged.
        // Report the rewrite explicitly: `replace_ops` cleared the frame
        // partition, and only a follow-up fixpoint round re-derives it.
        let mut stats = stats(ops_after, detail);
        stats.rewrote = true;
        stats
    }
}

/// All unordered qudit pairs of one operation's support.
fn pairs(qudits: &[usize]) -> impl Iterator<Item = (usize, usize)> + '_ {
    qudits
        .iter()
        .enumerate()
        .flat_map(move |(i, &a)| qudits[i + 1..].iter().map(move |&b| (a, b)))
}

/// Routes `circuit` onto `topology`: greedy placement, then SWAP insertion.
fn route(circuit: &Circuit, topology: &Topology) -> (Vec<Operation>, RoutingSummary) {
    let width = circuit.width();
    let dim = circuit.dim();
    let dist = topology.all_distances();

    // Interaction graph: how often each logical pair interacts.
    let mut weight = vec![vec![0usize; width]; width];
    for op in circuit.iter() {
        let qs = op.qudits();
        for (a, b) in pairs(&qs) {
            weight[a][b] += 1;
            weight[b][a] += 1;
        }
    }
    let hotness: Vec<usize> = weight.iter().map(|row| row.iter().sum()).collect();

    let placement = greedy_placement(topology, &dist, &weight, &hotness);
    let mut l2p = placement.clone();
    let mut p2l = invert(&l2p);

    // The flat sequence of logical interaction pairs, in op order, for the
    // lookahead heuristic; `pair_start[i]` is where op `i`'s pairs begin.
    let mut pair_seq: Vec<(usize, usize)> = Vec::new();
    let mut pair_start: Vec<usize> = Vec::with_capacity(circuit.len());
    for op in circuit.iter() {
        pair_start.push(pair_seq.len());
        pair_seq.extend(pairs(&op.qudits()));
    }

    let rswap = Gate::new("RSWAP", dim, 2, Gate::swap(dim).matrix().clone())
        .expect("the SWAP matrix is d²×d²");
    let mut out: Vec<Operation> = Vec::with_capacity(circuit.len());
    let mut inserted_swaps = 0usize;
    let mut unrouted = 0usize;

    for (i, op) in circuit.iter().enumerate() {
        let qs = op.qudits();
        if qs.len() == 2 {
            // Insert SWAPs until the endpoints are adjacent. Candidates
            // always move an endpoint strictly closer, so this terminates.
            while dist[l2p[qs[0]]][l2p[qs[1]]] > 1 {
                let (u, v) = best_swap(
                    topology,
                    &dist,
                    &l2p,
                    &p2l,
                    &pair_seq[pair_start[i]..],
                    (qs[0], qs[1]),
                );
                out.push(
                    Operation::new(rswap.clone(), Vec::new(), vec![u.min(v), u.max(v)])
                        .expect("swap sites are distinct and in range"),
                );
                inserted_swaps += 1;
                apply_swap(&mut l2p, &mut p2l, u, v);
            }
        } else if qs.len() > 2 && !pairs(&qs).all(|(a, b)| topology.is_adjacent(l2p[a], l2p[b])) {
            // A ≥3-qudit gate needs its whole support mutually adjacent — a
            // clique most topologies don't have. Pass it through remapped
            // and let the caller's statistics surface the count; lowering
            // first (the `Physical` levels) avoids this entirely.
            unrouted += 1;
        }
        out.push(remap_op(op, &l2p));
    }

    let summary = RoutingSummary {
        placement,
        final_mapping: l2p,
        inserted_swaps,
        unrouted,
    };
    (out, summary)
}

/// Greedy interaction-graph placement: logical qudits in decreasing-hotness
/// order each take the free site minimizing the distance-weighted
/// interaction cost to already-placed partners plus a quality penalty
/// (hot qudits avoid high-error sites). Ties break toward central sites,
/// then the lowest site index, so placement is deterministic.
fn greedy_placement(
    topology: &Topology,
    dist: &[Vec<usize>],
    weight: &[Vec<usize>],
    hotness: &[usize],
) -> Vec<usize> {
    let width = hotness.len();
    let mut order: Vec<usize> = (0..width).collect();
    order.sort_by_key(|&q| (std::cmp::Reverse(hotness[q]), q));

    let closeness: Vec<usize> = (0..width).map(|s| dist[s].iter().sum()).collect();
    // Mean incident edge-quality excess per site: hot qudits are steered
    // away from sites whose links are poor, not just from poor sites.
    let edge_excess: Vec<f64> = (0..width)
        .map(|s| {
            let neighbours = topology.neighbors(s);
            if neighbours.is_empty() {
                return 0.0;
            }
            let total: f64 = neighbours
                .iter()
                .map(|&t| topology.edge_quality_between(s, t))
                .sum();
            total / neighbours.len() as f64 - 1.0
        })
        .collect();
    let mut l2p = vec![usize::MAX; width];
    let mut used = vec![false; width];
    for &q in &order {
        let mut best: Option<(f64, usize, usize)> = None;
        for s in (0..width).filter(|&s| !used[s]) {
            let interaction: f64 = (0..width)
                .filter(|&p| l2p[p] != usize::MAX)
                .map(|p| (weight[q][p] * dist[s][l2p[p]]) as f64)
                .sum();
            let quality_penalty = hotness[q] as f64 * (topology.quality(s) - 1.0 + edge_excess[s]);
            let key = (interaction + quality_penalty, closeness[s], s);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, site) = best.expect("free site exists: one per logical qudit");
        l2p[q] = site;
        used[site] = true;
    }
    l2p
}

/// Picks the SWAP (as a pair of adjacent sites) that moves the current
/// interaction's endpoints closer with the best decayed-lookahead score
/// over the upcoming interaction pairs. Deterministic: score ties break on
/// the site pair.
fn best_swap(
    topology: &Topology,
    dist: &[Vec<usize>],
    l2p: &[usize],
    p2l: &[usize],
    upcoming: &[(usize, usize)],
    current: (usize, usize),
) -> (usize, usize) {
    let (sa, sb) = (l2p[current.0], l2p[current.1]);
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for &x in topology.neighbors(sa) {
        if dist[x][sb] < dist[sa][sb] {
            candidates.push((sa, x));
        }
    }
    for &y in topology.neighbors(sb) {
        if dist[sa][y] < dist[sa][sb] {
            candidates.push((sb, y));
        }
    }

    // Score key: (decayed lookahead distance, low site, high site).
    type ScoreKey = (f64, usize, usize);
    let mut best: Option<(ScoreKey, (usize, usize))> = None;
    for &(u, v) in &candidates {
        let mut trial_l2p = l2p.to_vec();
        let (lu, lv) = (p2l[u], p2l[v]);
        trial_l2p[lu] = v;
        trial_l2p[lv] = u;
        let mut score = 0.0;
        let mut decay = 1.0;
        for &(a, b) in upcoming.iter().take(LOOKAHEAD_WINDOW) {
            score += decay * dist[trial_l2p[a]][trial_l2p[b]] as f64;
            decay *= LOOKAHEAD_DECAY;
        }
        // The SWAP itself executes on edge (u, v): a poor edge costs extra,
        // so routing prefers an equally short path over good links.
        score += topology.edge_quality_between(u, v) - 1.0;
        let key = (score, u.min(v), u.max(v));
        if best.is_none_or(|(b, _)| key < b) {
            best = Some((key, (u, v)));
        }
    }
    best.expect("a distance-reducing neighbour always exists on a shortest path")
        .1
}

/// Swaps the logical contents of sites `u` and `v` in both mapping tables.
fn apply_swap(l2p: &mut [usize], p2l: &mut [usize], u: usize, v: usize) {
    let (lu, lv) = (p2l[u], p2l[v]);
    l2p[lu] = v;
    l2p[lv] = u;
    p2l.swap(u, v);
}

/// The inverse of a logical→site bijection.
fn invert(l2p: &[usize]) -> Vec<usize> {
    let mut p2l = vec![usize::MAX; l2p.len()];
    for (q, &s) in l2p.iter().enumerate() {
        p2l[s] = q;
    }
    p2l
}

/// Rewrites one operation's wires through the current logical→site mapping.
fn remap_op(op: &Operation, l2p: &[usize]) -> Operation {
    let controls: Vec<Control> = op
        .controls()
        .iter()
        .map(|c| Control::new(l2p[c.qudit], c.level))
        .collect();
    let targets: Vec<usize> = op.targets().iter().map(|&t| l2p[t]).collect();
    Operation::new(op.gate().clone(), controls, targets)
        .expect("a bijective wire remap preserves operation validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{compile_with_topology, PassLevel};

    /// CX chain touching non-adjacent qudits on a line.
    fn long_range_circuit(width: usize) -> Circuit {
        let mut c = Circuit::new(2, width);
        c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[width - 1])
            .unwrap();
        c
    }

    /// Qudit 0 interacts with every other qudit — a star no degree-2
    /// topology can host without SWAPs.
    fn star_circuit(width: usize) -> Circuit {
        let mut c = Circuit::new(2, width);
        for t in 1..width {
            c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[t])
                .unwrap();
        }
        c
    }

    #[test]
    fn all_to_all_routing_is_an_op_list_identity() {
        let c = long_range_circuit(5);
        let topology = Topology::all_to_all(5).unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&topology));
        assert_eq!(ir.circuit(), &c);
        let summary = ir.routing().expect("summary recorded");
        assert!(summary.is_identity());
        assert_eq!(summary.inserted_swaps, 0);
    }

    #[test]
    fn nearest_neighbour_circuits_get_zero_swaps() {
        let mut c = Circuit::new(3, 4);
        for q in 0..3 {
            c.push_controlled(Gate::x(3), &[Control::on_one(q)], &[q + 1])
                .unwrap();
        }
        let topology = Topology::linear(4).unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&topology));
        assert_eq!(
            ir.circuit(),
            &c,
            "already-routable op list must be untouched"
        );
        assert_eq!(ir.routing().unwrap().inserted_swaps, 0);
    }

    #[test]
    fn long_range_interactions_get_swaps_on_a_line() {
        let c = star_circuit(5);
        let topology = Topology::linear(5).unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&topology));
        let summary = ir.routing().unwrap();
        assert!(summary.inserted_swaps > 0, "{summary:?}");
        let swaps = ir
            .circuit()
            .iter()
            .filter(|op| op.gate().name() == "RSWAP")
            .count();
        assert_eq!(swaps, summary.inserted_swaps);
        // Every multi-qudit op in the routed circuit is nearest-neighbour.
        for op in ir.circuit().iter() {
            let qs = op.qudits();
            for (a, b) in pairs(&qs) {
                assert!(topology.is_adjacent(a, b), "{op:?} not local");
            }
        }
        assert_eq!(
            ir.report().post.routed.unwrap().inserted_swaps,
            summary.inserted_swaps
        );
    }

    #[test]
    fn placement_prefers_high_quality_sites_for_hot_qudits() {
        // Qudits 0 and 1 interact heavily, and one 0↔2 gate forces full
        // routing (the identity mapping is not nearest-neighbour, so the
        // fast path cannot trigger). With the chain's centre site poisoned,
        // the hot qudits must both land on the good end sites.
        let mut c = Circuit::new(2, 3);
        for _ in 0..4 {
            c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[1])
                .unwrap();
        }
        c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[2])
            .unwrap();
        let bad_centre = Topology::linear(3)
            .unwrap()
            .with_site_quality(vec![1.0, 50.0, 1.0])
            .unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&bad_centre));
        let summary = ir.routing().unwrap();
        assert!(
            summary.placement[0] != 1 && summary.placement[1] != 1,
            "{summary:?}"
        );
    }

    #[test]
    fn placement_steers_hot_pairs_away_from_bad_edges() {
        // Qudits 0 and 1 interact heavily; one 0↔2 gate forces full routing
        // (identity mapping is not nearest-neighbour on the chain). With
        // edge (0,1) poisoned, the hot pair must land on the good (1,2)
        // link — without edge weights greedy placement puts it on (0,1).
        let mut c = Circuit::new(2, 3);
        for _ in 0..4 {
            c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[1])
                .unwrap();
        }
        c.push_controlled(Gate::x(2), &[Control::on_one(0)], &[2])
            .unwrap();
        let uniform = Topology::linear(3).unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&uniform));
        let placement = &ir.routing().unwrap().placement;
        let mut hot = [placement[0], placement[1]];
        hot.sort_unstable();
        assert_eq!(hot, [0, 1], "uniform baseline places the hot pair on (0,1)");

        let bad_first_edge = Topology::linear(3)
            .unwrap()
            .with_edge_quality(vec![50.0, 1.0])
            .unwrap();
        let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(&bad_first_edge));
        let placement = &ir.routing().unwrap().placement;
        let mut hot = [placement[0], placement[1]];
        hot.sort_unstable();
        assert_eq!(hot, [1, 2], "hot pair must avoid the poisoned (0,1) edge");
    }

    #[test]
    fn swap_insertion_avoids_poisoned_edges_when_paths_tie() {
        // On a ring two equally short SWAP routes exist between opposite
        // sites; poisoning one side's edges must push the router to the
        // other. Compare total charged edge quality of the inserted SWAPs.
        let c = star_circuit(6);
        let ring = Topology::ring(6).unwrap();
        // Edges of ring(6): (0,1),(1,2),(2,3),(3,4),(4,5),(0,5).
        let weights = vec![1.0, 8.0, 8.0, 1.0, 1.0, 1.0];
        let weighted = ring.clone().with_edge_quality(weights).unwrap();
        let charged = |t: &Topology| -> f64 {
            let ir = compile_with_topology(&c, PassLevel::NoisePreserving, Some(t));
            ir.circuit()
                .iter()
                .filter(|op| op.gate().name() == "RSWAP")
                .map(|op| {
                    let qs = op.qudits();
                    weighted.edge_quality_between(qs[0], qs[1])
                })
                .sum()
        };
        assert!(
            charged(&weighted) < charged(&ring),
            "edge-aware routing must charge less poisoned-edge weight"
        );
    }
}
