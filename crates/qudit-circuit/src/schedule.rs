//! Moment scheduling.
//!
//! The paper's noise model is applied per *Moment* — a set of gates that
//! execute simultaneously (Cirq terminology). We reproduce Cirq's
//! as-early-as-possible scheduler: each operation is placed into the first
//! moment after the last moment that touches any of its qudits. The circuit
//! depth (critical path length) is the number of moments.

use crate::circuit::Circuit;
use crate::operation::Operation;

/// The duration class of one schedule moment — the quantity the paper's
/// idle-error accounting is driven by (a moment lasts as long as its
/// slowest gate).
///
/// This is the *single source of truth* shared by the compiler passes and
/// the noise accounting in `qudit-noise`: both ask the [`Moment`] directly
/// instead of re-deriving the class from gate arities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MomentDuration {
    /// Only single-qudit gates: one single-qudit gate time.
    SingleQudit,
    /// Contains a gate touching ≥ 2 qudits: one two-qudit gate time.
    MultiQudit,
    /// Contains an operation touching ≥ 3 qudits *and* the caller accounts
    /// such operations by their Di & Wei decomposition: six two-qudit gate
    /// times.
    ExpandedMultiQudit,
}

/// A set of operation indices that execute simultaneously.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Moment {
    /// Indices into the source circuit's operation list.
    pub op_indices: Vec<usize>,
    /// The largest arity (touched-qudit count) among the moment's
    /// operations; 0 for an empty moment.
    max_arity: usize,
}

impl Moment {
    /// The number of operations in the moment.
    pub fn len(&self) -> usize {
        self.op_indices.len()
    }

    /// Returns `true` if the moment contains no operations.
    pub fn is_empty(&self) -> bool {
        self.op_indices.is_empty()
    }

    /// The largest arity among the moment's operations (0 when empty).
    pub fn max_arity(&self) -> usize {
        self.max_arity
    }

    /// The moment's duration class. `expand_three_qudit` selects whether
    /// ≥ 3-qudit operations are accounted at their Di & Wei decomposition
    /// length (six two-qudit gate times) or as a single two-qudit slot.
    pub fn duration(&self, expand_three_qudit: bool) -> MomentDuration {
        if expand_three_qudit && self.max_arity >= 3 {
            MomentDuration::ExpandedMultiQudit
        } else if self.max_arity >= 2 {
            MomentDuration::MultiQudit
        } else {
            MomentDuration::SingleQudit
        }
    }

    /// Records an operation in the moment.
    fn push(&mut self, op_idx: usize, arity: usize) {
        self.op_indices.push(op_idx);
        self.max_arity = self.max_arity.max(arity);
    }
}

/// An as-early-as-possible schedule of a circuit into moments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    moments: Vec<Moment>,
}

impl Schedule {
    /// Schedules the circuit's operations as early as possible.
    pub fn asap(circuit: &Circuit) -> Self {
        let mut frontier = vec![0usize; circuit.width()];
        let mut moments: Vec<Moment> = Vec::new();

        for (idx, op) in circuit.iter().enumerate() {
            let qudits = op.qudits();
            let slot = qudits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            while moments.len() <= slot {
                moments.push(Moment::default());
            }
            moments[slot].push(idx, op.arity());
            for &q in &qudits {
                frontier[q] = slot + 1;
            }
        }

        Schedule { moments }
    }

    /// Schedules the circuit serially: one operation per moment.
    ///
    /// Used as an ablation baseline — it maximises idle time and therefore
    /// idle errors.
    pub fn serial(circuit: &Circuit) -> Self {
        let moments: Vec<Moment> = circuit
            .iter()
            .enumerate()
            .map(|(idx, op)| {
                let mut m = Moment::default();
                m.push(idx, op.arity());
                m
            })
            .collect();
        Schedule { moments }
    }

    /// The scheduled moments in execution order.
    pub fn moments(&self) -> &[Moment] {
        &self.moments
    }

    /// The circuit depth: number of moments on the critical path.
    pub fn depth(&self) -> usize {
        self.moments.len()
    }

    /// Whether the given moment contains a multi-qudit (≥ 2 qudits)
    /// operation. Shorthand for `moments()[moment].max_arity() >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `moment` is out of range.
    pub fn moment_has_multi_qudit_gate(&self, moment: usize) -> bool {
        self.moments[moment].max_arity() >= 2
    }

    /// Iterates over `(moment index, &[operation index])` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.moments
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.op_indices.as_slice()))
    }

    /// Resolves a moment's operations against the source circuit.
    ///
    /// # Panics
    ///
    /// Panics if `moment` is out of range or the circuit is not the one this
    /// schedule was built from (index out of bounds).
    pub fn operations_in<'c>(&self, circuit: &'c Circuit, moment: usize) -> Vec<&'c Operation> {
        self.moments[moment]
            .op_indices
            .iter()
            .map(|&i| &circuit.operations()[i])
            .collect()
    }
}

/// The duration of one execution frame, in gate-time units.
///
/// A *frame* is the noise-accounting unit of a compiled circuit: one
/// logical moment of the pre-lowering schedule, together with everything a
/// decomposition pass expanded its operations into. Its duration falls out
/// of the lowered schedule — the number of two-qudit layers the frame's
/// operations occupy — rather than being inferred from operation arity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameDuration {
    /// The frame contains only single-qudit gates: one single-qudit gate
    /// time.
    SingleQudit,
    /// The frame spans this many two-qudit layers, each lasting one
    /// two-qudit gate time. Single-qudit gates interleave with the layers
    /// (the paper's Di & Wei depth accounting), so they add no time.
    TwoQuditLayers(usize),
}

impl FrameDuration {
    /// The frame's contribution to physical depth, in moments.
    pub fn depth(self) -> usize {
        match self {
            FrameDuration::SingleQudit => 1,
            FrameDuration::TwoQuditLayers(layers) => layers.max(1),
        }
    }
}

/// One execution frame: the operation indices it contains (into the
/// compiled circuit's op list, in op order) and its duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    op_indices: Vec<usize>,
    duration: FrameDuration,
}

impl Frame {
    /// Builds a frame from its operations and measured duration.
    pub fn new(op_indices: Vec<usize>, duration: FrameDuration) -> Self {
        Frame {
            op_indices,
            duration,
        }
    }

    /// The operation indices executed in this frame, in op order.
    pub fn op_indices(&self) -> &[usize] {
        &self.op_indices
    }

    /// The frame's duration.
    pub fn duration(&self) -> FrameDuration {
        self.duration
    }
}

/// The frame partition of a compiled circuit: every operation belongs to
/// exactly one frame, frames execute in order, and idle errors are charged
/// once per frame for its measured duration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameSchedule {
    frames: Vec<Frame>,
}

impl FrameSchedule {
    /// Builds a frame schedule from explicit frames.
    pub fn new(frames: Vec<Frame>) -> Self {
        FrameSchedule { frames }
    }

    /// The frames in execution order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The physical depth: the total number of moments across all frames.
    pub fn physical_depth(&self) -> usize {
        self.frames.iter().map(|f| f.duration().depth()).sum()
    }

    /// Frames for an *unlowered* circuit, one per schedule moment, with
    /// durations from [`Moment::duration`]: this is the virtual accounting
    /// the deprecated `GateExpansion` shim preserves (`expand_three_qudit`
    /// maps a ≥3-qudit moment to the Di & Wei constant of 6 layers instead
    /// of a measured count).
    pub fn from_moments(schedule: &Schedule, expand_three_qudit: bool) -> FrameSchedule {
        let frames = schedule
            .moments()
            .iter()
            .map(|m| {
                let duration = match m.duration(expand_three_qudit) {
                    MomentDuration::SingleQudit => FrameDuration::SingleQudit,
                    MomentDuration::MultiQudit => FrameDuration::TwoQuditLayers(1),
                    MomentDuration::ExpandedMultiQudit => FrameDuration::TwoQuditLayers(6),
                };
                Frame::new(m.op_indices.clone(), duration)
            })
            .collect();
        FrameSchedule { frames }
    }
}

/// Convenience: the ASAP depth of a circuit.
pub fn circuit_depth(circuit: &Circuit) -> usize {
    Schedule::asap(circuit).depth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::operation::Control;

    #[test]
    fn independent_gates_share_a_moment() {
        let mut c = Circuit::new(3, 4);
        for q in 0..4 {
            c.push_gate(Gate::x(3), &[q]).unwrap();
        }
        let s = Schedule::asap(&c);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.moments()[0].len(), 4);
    }

    #[test]
    fn dependent_gates_serialise() {
        let mut c = Circuit::new(3, 1);
        for _ in 0..5 {
            c.push_gate(Gate::x(3), &[0]).unwrap();
        }
        let s = Schedule::asap(&c);
        assert_eq!(s.depth(), 5);
    }

    #[test]
    fn controls_create_dependencies() {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        let s = Schedule::asap(&c);
        assert_eq!(s.depth(), 3, "Figure 4 Toffoli has depth 3");
    }

    #[test]
    fn tree_halving_gives_log_depth() {
        // Pairwise gates on (0,1), (2,3), (4,5), (6,7) then (1,3), (5,7)
        // then (3,7): a binary-tree pattern like Figure 5's left half.
        let mut c = Circuit::new(3, 8);
        let pairs = [(0, 1), (2, 3), (4, 5), (6, 7), (1, 3), (5, 7), (3, 7)];
        for (a, b) in pairs {
            c.push_controlled(Gate::increment(3), &[Control::on_one(a)], &[b])
                .unwrap();
        }
        let s = Schedule::asap(&c);
        assert_eq!(s.depth(), 3, "8-leaf tree should schedule into 3 levels");
    }

    #[test]
    fn serial_schedule_has_one_op_per_moment() {
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_gate(Gate::x(3), &[1]).unwrap();
        let s = Schedule::serial(&c);
        assert_eq!(s.depth(), 2);
        let asap = Schedule::asap(&c);
        assert_eq!(asap.depth(), 1);
    }

    #[test]
    fn multi_qudit_flags_follow_arity() {
        let mut c = Circuit::new(3, 3);
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(1)], &[2])
            .unwrap();
        let s = Schedule::asap(&c);
        assert_eq!(s.depth(), 1);
        assert!(s.moment_has_multi_qudit_gate(0));

        let mut c2 = Circuit::new(3, 1);
        c2.push_gate(Gate::x(3), &[0]).unwrap();
        let s2 = Schedule::asap(&c2);
        assert!(!s2.moment_has_multi_qudit_gate(0));
    }

    #[test]
    fn moment_duration_classifies_by_max_arity() {
        let mut c = Circuit::new(3, 3);
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_one(1)], &[2])
            .unwrap();
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        let s = Schedule::asap(&c);
        // Moment 0: an X and a 2-qudit CX in parallel.
        let m0 = &s.moments()[0];
        assert_eq!(m0.max_arity(), 2);
        assert_eq!(m0.duration(true), MomentDuration::MultiQudit);
        assert_eq!(m0.duration(false), MomentDuration::MultiQudit);
        // Moment 1: the 3-qudit operation — expanded only under Di & Wei.
        let m1 = &s.moments()[1];
        assert_eq!(m1.max_arity(), 3);
        assert_eq!(m1.duration(true), MomentDuration::ExpandedMultiQudit);
        assert_eq!(m1.duration(false), MomentDuration::MultiQudit);

        let mut single = Circuit::new(3, 1);
        single.push_gate(Gate::h(3), &[0]).unwrap();
        let ss = Schedule::asap(&single);
        assert_eq!(ss.moments()[0].duration(true), MomentDuration::SingleQudit);
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        let c = Circuit::new(3, 4);
        assert_eq!(circuit_depth(&c), 0);
    }

    #[test]
    fn operations_in_resolves_against_circuit() {
        let mut c = Circuit::new(3, 2);
        c.push_gate(Gate::x(3), &[0]).unwrap();
        c.push_gate(Gate::h(3), &[1]).unwrap();
        let s = Schedule::asap(&c);
        let ops = s.operations_in(&c, 0);
        assert_eq!(ops.len(), 2);
    }
}
