//! Error types for the `qudit-circuit` crate.

use std::error::Error;
use std::fmt;

/// Convenience result alias for circuit operations.
pub type CircuitResult<T> = Result<T, CircuitError>;

/// Errors produced while building or evaluating circuits.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qudit index was outside the circuit's register.
    QuditOutOfRange {
        /// The offending qudit index.
        qudit: usize,
        /// The number of qudits in the circuit.
        width: usize,
    },
    /// The same qudit was used more than once by a single operation.
    DuplicateQudit {
        /// The duplicated qudit index.
        qudit: usize,
    },
    /// A control activation level was not representable in the circuit's
    /// qudit dimension.
    InvalidControlLevel {
        /// The offending level.
        level: usize,
        /// The circuit's qudit dimension.
        dimension: usize,
    },
    /// A gate matrix did not match the expected size for its target count.
    GateShapeMismatch {
        /// Expected matrix size.
        expected: usize,
        /// Actual matrix size.
        actual: usize,
    },
    /// Classical simulation was requested for a gate that is not a basis
    /// permutation.
    NotClassical {
        /// Name of the offending gate.
        gate: String,
    },
    /// A classical input had the wrong number of digits or invalid digit
    /// values.
    InvalidClassicalInput {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Circuits with different shapes (dimension or width) were combined.
    IncompatibleCircuits {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An operation cannot be lowered by the physical decomposition pass.
    UnsupportedOperation {
        /// Human-readable description of the unsupported shape.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QuditOutOfRange { qudit, width } => {
                write!(
                    f,
                    "qudit {qudit} is out of range for a width-{width} circuit"
                )
            }
            CircuitError::DuplicateQudit { qudit } => {
                write!(
                    f,
                    "qudit {qudit} is used more than once by a single operation"
                )
            }
            CircuitError::InvalidControlLevel { level, dimension } => {
                write!(
                    f,
                    "control level {level} is invalid for dimension {dimension}"
                )
            }
            CircuitError::GateShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "gate matrix is {actual}x{actual} but {expected}x{expected} was expected"
                )
            }
            CircuitError::NotClassical { gate } => {
                write!(f, "gate {gate} is not a classical permutation")
            }
            CircuitError::InvalidClassicalInput { reason } => {
                write!(f, "invalid classical input: {reason}")
            }
            CircuitError::IncompatibleCircuits { reason } => {
                write!(f, "incompatible circuits: {reason}")
            }
            CircuitError::UnsupportedOperation { reason } => {
                write!(f, "unsupported operation: {reason}")
            }
        }
    }
}

impl Error for CircuitError {}

impl From<qudit_core::CoreError> for CircuitError {
    fn from(err: qudit_core::CoreError) -> Self {
        CircuitError::InvalidClassicalInput {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::QuditOutOfRange { qudit: 5, width: 3 };
        assert!(e.to_string().contains("out of range"));
        let e = CircuitError::NotClassical {
            gate: "H3".to_string(),
        };
        assert!(e.to_string().contains("H3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
