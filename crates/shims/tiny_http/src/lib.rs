//! Offline API-subset shim of the `tiny_http` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! minimal HTTP/1.1 server surface `qudit-server` needs under the crate name
//! the ecosystem expects. The model is the same as real tiny_http: a
//! blocking [`Server`] whose `recv` can be called from many threads at once
//! (thread-per-connection), one request per connection.
//!
//! Robustness is built in at the protocol layer, because a service front end
//! must survive adversarial bytes before application code ever sees them:
//!
//! * per-connection **read/write timeouts** — a slow-loris client that
//!   trickles half a request head gets a `408 Request Timeout` and its
//!   socket closed, never a parked server thread;
//! * **head and body size limits** — oversized heads answer `431`, bodies
//!   larger than the configured cap answer `413` without buffering the
//!   payload;
//! * **malformed requests** answer `400`, bodies without a length answer
//!   `411` (chunked uploads are out of scope for the service wire format).
//!
//! Protocol faults are answered inside the shim and the connection closed;
//! `recv` only ever hands application code a well-formed [`Request`].
//!
//! Documented deviations from real tiny_http: `recv` returns
//! `io::Result<Option<Request>>` with `Ok(None)` meaning "server closed"
//! (the real crate returns an error after `unblock`), headers are plain
//! string pairs, and a small [`client`] module is included because the
//! fault-injection harness needs byte-level control over what goes on the
//! wire.

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Protocol-level limits applied to every connection before application
/// code sees the request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Max time a single read from the socket may block (slow-loris guard).
    pub read_timeout: Duration,
    /// Max time a single write to the socket may block.
    pub write_timeout: Duration,
    /// Max bytes of request line + headers before answering `431`.
    pub max_head_bytes: usize,
    /// Max bytes of declared body before answering `413`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// HTTP request methods the service surface uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
    Options,
    Patch,
}

impl Method {
    fn parse(token: &str) -> Option<Method> {
        Some(match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
        };
        write!(f, "{s}")
    }
}

/// A fully read, well-formed HTTP request. Protocol faults never reach
/// this type — the shim answers them itself.
pub struct Request {
    method: Method,
    url: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    remote_addr: Option<SocketAddr>,
    stream: TcpStream,
}

impl Request {
    /// The request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The request target as sent (path + optional query).
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The request body (already read in full, within the body limit).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The peer address, if known.
    pub fn remote_addr(&self) -> Option<SocketAddr> {
        self.remote_addr
    }

    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Writes the response and closes the connection (`Connection: close`;
    /// one request per connection, as the service protocol specifies).
    ///
    /// # Errors
    ///
    /// Propagates socket errors — typically a mid-response client
    /// disconnect, which callers are expected to tolerate.
    pub fn respond(mut self, response: Response) -> io::Result<()> {
        write_response(&mut self.stream, &response)?;
        let _ = self.stream.shutdown(Shutdown::Both);
        Ok(())
    }
}

/// An HTTP response: status code, extra headers, body.
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response with a string body.
    pub fn from_string(body: impl Into<String>) -> Response {
        Response::from_data(body.into().into_bytes())
    }

    /// A `200 OK` response with a byte body.
    pub fn from_data(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
        }
    }

    /// Sets the status code.
    #[must_use]
    pub fn with_status_code(mut self, status: u16) -> Response {
        self.status = status;
        self
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The status code.
    pub fn status_code(&self) -> u16 {
        self.status
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason_phrase(response.status),
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Answers a protocol fault and closes the connection; errors are ignored
/// (the peer may already be gone).
fn respond_fault(mut stream: TcpStream, status: u16, message: &str) {
    let response = Response::from_string(message)
        .with_status_code(status)
        .with_header("Content-Type", "text/plain");
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Whether an IO error is a read-timeout expiry (platform-dependent kind).
fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A blocking HTTP/1.1 server. `recv` may be called concurrently from many
/// threads; each call accepts one connection and reads one request.
pub struct Server {
    listener: TcpListener,
    limits: Limits,
    closed: AtomicBool,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds with default [`Limits`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn http(addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::http_with_limits(addr, Limits::default())
    }

    /// Binds with explicit [`Limits`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn http_with_limits(addr: impl ToSocketAddrs, limits: Limits) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            limits,
            closed: AtomicBool::new(false),
            local_addr,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn server_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The limits this server enforces.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Marks the server closed and wakes one thread blocked in
    /// [`recv`](Server::recv)
    /// (call once per receiving thread, like real tiny_http's `unblock`).
    pub fn unblock(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Any accept() entered after this returns WouldBlock instead of
        // parking forever, closing the race with threads that re-enter
        // recv() between the flag store and the wake connection below.
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }

    /// Accepts one connection and reads one well-formed request.
    ///
    /// Returns `Ok(None)` once [`unblock`](Server::unblock) has been called.
    /// Protocol faults (malformed head, timeout, oversized head/body,
    /// missing length) are answered in-shim with 400/408/431/413/411 and do
    /// NOT surface here — the loop continues to the next connection.
    ///
    /// # Errors
    ///
    /// Propagates accept-level IO errors other than shutdown wakes.
    pub fn recv(&self) -> io::Result<Option<Request>> {
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Ok(None);
            }
            let (stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if is_timeout(&e) => {
                    if self.closed.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            if self.closed.load(Ordering::SeqCst) {
                // The wake connection from unblock(), or a late client
                // hitting a draining server; either way we are done.
                drop(stream);
                return Ok(None);
            }
            match self.read_request(stream, peer) {
                Some(request) => return Ok(Some(request)),
                None => continue, // fault answered in-shim; next connection
            }
        }
    }

    /// Reads one request from a fresh connection, enforcing all limits.
    /// Returns `None` if the connection was a protocol fault (already
    /// answered) or the peer vanished.
    fn read_request(&self, stream: TcpStream, peer: SocketAddr) -> Option<Request> {
        let _ = stream.set_read_timeout(Some(self.limits.read_timeout));
        let _ = stream.set_write_timeout(Some(self.limits.write_timeout));
        let mut stream = stream;

        // --- request head: read until CRLFCRLF, bounded in size and time.
        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            if buf.len() > self.limits.max_head_bytes {
                respond_fault(stream, 431, "request head too large");
                return None;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if !buf.is_empty() {
                        respond_fault(stream, 400, "truncated request head");
                    }
                    return None; // bare connect-then-close: not a fault
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    respond_fault(stream, 408, "timed out reading request head");
                    return None;
                }
                Err(_) => return None,
            }
        };

        // --- parse the head.
        let head = match std::str::from_utf8(&buf[..head_end]) {
            Ok(head) => head,
            Err(_) => {
                respond_fault(stream, 400, "request head is not valid UTF-8");
                return None;
            }
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, url, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(u), Some(v), None) => (m, u, v),
            _ => {
                respond_fault(stream, 400, "malformed request line");
                return None;
            }
        };
        let Some(method) = Method::parse(method) else {
            respond_fault(stream, 400, "unsupported method");
            return None;
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            respond_fault(stream, 400, "unsupported HTTP version");
            return None;
        }
        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                respond_fault(stream, 400, "malformed header line");
                return None;
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let url = url.to_string();
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };

        // --- request body, bounded by Content-Length and the body limit.
        let content_length = match header("Content-Length") {
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    respond_fault(stream, 400, "malformed Content-Length");
                    return None;
                }
            },
            None if header("Transfer-Encoding").is_some() => {
                respond_fault(stream, 411, "chunked bodies are not supported");
                return None;
            }
            None if matches!(method, Method::Post | Method::Put | Method::Patch) => {
                respond_fault(stream, 411, "Content-Length required");
                return None;
            }
            None => 0,
        };
        if content_length > self.limits.max_body_bytes {
            respond_fault(stream, 413, "request body too large");
            return None;
        }
        if header("Expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue")) {
            let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        let mut body = buf.split_off(head_end + 4);
        while body.len() < content_length {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    respond_fault(stream, 400, "truncated request body");
                    return None;
                }
                Ok(n) => {
                    body.extend_from_slice(&chunk[..n]);
                    if body.len() > content_length {
                        respond_fault(stream, 400, "body longer than Content-Length");
                        return None;
                    }
                }
                Err(e) if is_timeout(&e) => {
                    respond_fault(stream, 408, "timed out reading request body");
                    return None;
                }
                Err(_) => return None,
            }
        }
        body.truncate(content_length);

        Some(Request {
            method,
            url,
            headers,
            body,
            remote_addr: Some(peer),
            stream,
        })
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A minimal blocking HTTP client (shim extension).
///
/// Real tiny_http is server-only; the fault-injection harness and load
/// generator need a client with byte-level wire control, so it lives here
/// next to the protocol code.
pub mod client {
    use std::io::{self, Read, Write};
    use std::net::{Shutdown, SocketAddr, TcpStream};
    use std::time::Duration;

    /// A parsed HTTP response: status code and body bytes.
    #[derive(Clone, Debug)]
    pub struct ClientResponse {
        /// The HTTP status code.
        pub status: u16,
        /// The response body.
        pub body: Vec<u8>,
    }

    /// Sends raw bytes to `addr` and reads the full response (until EOF —
    /// the server closes after each response).
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write errors and malformed status lines.
    pub fn send_raw(
        addr: SocketAddr,
        bytes: &[u8],
        timeout: Duration,
    ) -> io::Result<ClientResponse> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.write_all(bytes)?;
        read_response(&mut stream)
    }

    /// Sends raw bytes, then half-closes the write side and disconnects
    /// without reading the response (mid-response disconnect injection).
    ///
    /// # Errors
    ///
    /// Propagates connect/write errors.
    pub fn send_and_abandon(addr: SocketAddr, bytes: &[u8], timeout: Duration) -> io::Result<()> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_write_timeout(Some(timeout))?;
        stream.write_all(bytes)?;
        let _ = stream.shutdown(Shutdown::Both);
        Ok(())
    }

    /// Reads a full response from an already-connected stream — for fault
    /// injections that manage the connection themselves (e.g. half-closing
    /// the write side after a truncated body).
    ///
    /// # Errors
    ///
    /// Propagates read errors and malformed status lines.
    pub fn read_from(stream: &mut TcpStream) -> io::Result<ClientResponse> {
        read_response(stream)
    }

    /// `GET path` with no body.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
        let head = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
        send_raw(addr, head.as_bytes(), timeout)
    }

    /// `POST path` with a JSON body and optional extra headers.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn post(
        addr: SocketAddr,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
        timeout: Duration,
    ) -> io::Result<ClientResponse> {
        let mut head = format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(body);
        send_raw(addr, &bytes, timeout)
    }

    /// Reads status line, headers, and body (to EOF) from `stream`.
    fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
        let head_end = super::find_head_end(&raw)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no response head"))?;
        let head = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        let status_line = head.lines().next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        Ok(ClientResponse {
            status,
            body: raw[head_end + 4..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spawn_echo_server(limits: Limits) -> (std::sync::Arc<Server>, std::thread::JoinHandle<()>) {
        let server =
            std::sync::Arc::new(Server::http_with_limits("127.0.0.1:0", limits).expect("bind"));
        let s = std::sync::Arc::clone(&server);
        let handle = std::thread::spawn(move || {
            while let Ok(Some(request)) = s.recv() {
                let body = format!("{} {}", request.method(), request.url());
                let _ = request.respond(Response::from_string(body));
            }
        });
        (server, handle)
    }

    fn short_limits() -> Limits {
        Limits {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            max_head_bytes: 1024,
            max_body_bytes: 4096,
        }
    }

    #[test]
    fn serves_a_well_formed_request() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        let resp = client::get(addr, "/ping", Duration::from_secs(2)).expect("get");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"GET /ping");
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_request_line_gets_400_and_server_survives() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        let resp =
            client::send_raw(addr, b"NOT A REQUEST\r\n\r\n", Duration::from_secs(2)).expect("send");
        assert_eq!(resp.status, 400);
        let resp = client::get(addr, "/after", Duration::from_secs(2)).expect("get");
        assert_eq!(resp.status, 200);
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn slow_loris_partial_head_gets_408() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        // Send half a request head, then stall past the read timeout.
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        std::io::Write::write_all(&mut stream, b"GET /slow HTTP/1.1\r\nHost:").expect("write");
        let mut raw = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = std::io::Read::read_to_end(&mut stream, &mut raw);
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");
        let resp = client::get(addr, "/after", Duration::from_secs(2)).expect("get");
        assert_eq!(resp.status, 200);
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_body_gets_413_without_reading_it() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        let head = format!(
            "POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            1 << 30
        );
        let resp = client::send_raw(addr, head.as_bytes(), Duration::from_secs(2)).expect("send");
        assert_eq!(resp.status, 413);
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_head_gets_431() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        let mut head = String::from("GET /x HTTP/1.1\r\n");
        head.push_str(&"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n".repeat(64));
        head.push_str("\r\n");
        let resp = client::send_raw(addr, head.as_bytes(), Duration::from_secs(2)).expect("send");
        assert_eq!(resp.status, 431);
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn post_without_content_length_gets_411() {
        let (server, handle) = spawn_echo_server(short_limits());
        let addr = server.server_addr();
        let resp = client::send_raw(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n",
            Duration::from_secs(2),
        )
        .expect("send");
        assert_eq!(resp.status, 411);
        server.unblock();
        handle.join().unwrap();
    }

    #[test]
    fn unblock_wakes_a_blocked_recv() {
        let server =
            std::sync::Arc::new(Server::http_with_limits("127.0.0.1:0", short_limits()).unwrap());
        let s = std::sync::Arc::clone(&server);
        let handle = std::thread::spawn(move || s.recv());
        std::thread::sleep(Duration::from_millis(50));
        server.unblock();
        let out = handle.join().unwrap().expect("recv io");
        assert!(out.is_none(), "recv must report closure, not a request");
    }
}
