//! Offline API-subset shim of the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property-based tests use: range / tuple / [`Just`] strategies,
//! [`Strategy::prop_map`], [`Strategy::prop_shuffle`], [`collection::vec`],
//! the [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its case index; cases are
//!   regenerated deterministically from (module path, test name, index), so
//!   a failure reproduces exactly on re-run.
//! * Default case count is 64 (configurable per block via
//!   `ProptestConfig::with_cases`).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for one test case.
///
/// Used by the [`proptest!`] macro expansion; not part of the public
/// proptest API.
#[doc(hidden)]
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a failure.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Per-block configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Randomly permutes generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { base: self }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    base: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.base.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes the collection in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification: a fixed size or a half-open range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*` import is expected to provide.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property-based tests; see the crate docs for shim limitations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut proptest_rng = $crate::rng_for_case(test_path, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                let case_fn = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome = case_fn();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} of {total} failed: {msg}\n\
                             (cases regenerate deterministically; re-run to reproduce)",
                            case = case,
                            total = config.cases,
                            msg = msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Silently discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(p in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 8);
        }

        #[test]
        fn vec_strategy_respects_lengths(v in crate::collection::vec(0usize..3, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&d| d < 3));
        }

        #[test]
        fn shuffle_preserves_elements(v in Just((0..20).collect::<Vec<i32>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..20).collect::<Vec<i32>>());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(_x in 0usize..2) {
            // Would run 7 times; correctness is just "it compiles and runs".
        }
    }

    #[test]
    fn same_case_regenerates_identically() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a = s.generate(&mut crate::rng_for_case("path::test", 3));
        let b = s.generate(&mut crate::rng_for_case("path::test", 3));
        assert_eq!(a, b);
    }
}
