//! Offline API-subset shim of the `rayon` crate.
//!
//! Implements the data-parallel surface the workspace uses —
//! `(0..n).into_par_iter().map(..).collect()`, `for_each`, [`join`] and
//! [`current_num_threads`] — on top of `std::thread::scope`. Work is split
//! into one contiguous block per available core; on a single-core host
//! everything degrades to the sequential path with zero thread overhead.
//!
//! Ordering semantics match rayon: `collect` preserves the source order
//! regardless of which thread produced each element.

#![warn(missing_docs)]

use std::ops::Range;

/// The number of threads the pool would use (here: available parallelism).
///
/// Memoized: `available_parallelism` does affinity syscalls and cgroup
/// reads on Linux, and callers (the gate kernels) ask once per gate apply.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon shim: join closure panicked"))
        })
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

/// The traits a `use rayon::prelude::*` import is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Like `chunks_mut`, but the chunks can be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over non-overlapping mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index, mirroring rayon's
    /// `IndexedParallelIterator::enumerate` on `par_chunks_mut`.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { inner: self }
    }

    /// Invokes `f` on every chunk, potentially in parallel.
    ///
    /// Chunks are distributed to threads in contiguous runs, so a thread
    /// always works on a contiguous region of the underlying slice.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        let num_chunks = self.slice.len().div_ceil(self.chunk_size);
        let threads = current_num_threads().min(num_chunks.max(1));
        if threads <= 1 || num_chunks <= 1 {
            for chunk in self.slice.chunks_mut(self.chunk_size) {
                f(chunk);
            }
            return;
        }
        let chunks_per_thread = num_chunks.div_ceil(threads);
        let run_len = chunks_per_thread * self.chunk_size;
        std::thread::scope(|s| {
            let f = &f;
            let chunk_size = self.chunk_size;
            let mut rest = self.slice;
            while !rest.is_empty() {
                let cut = run_len.min(rest.len());
                let (run, tail) = rest.split_at_mut(cut);
                rest = tail;
                s.spawn(move || {
                    for chunk in run.chunks_mut(chunk_size) {
                        f(chunk);
                    }
                });
            }
        });
    }
}

/// Index-carrying parallel iterator over mutable chunks (the result of
/// `par_chunks_mut(..).enumerate()`).
pub struct EnumerateParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Invokes `f` on every `(chunk index, chunk)` pair, potentially in
    /// parallel. Chunk indices match `slice.chunks_mut(chunk_size)` order.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let slice = self.inner.slice;
        let num_chunks = slice.len().div_ceil(chunk_size);
        let threads = current_num_threads().min(num_chunks.max(1));
        if threads <= 1 || num_chunks <= 1 {
            for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        let chunks_per_thread = num_chunks.div_ceil(threads);
        let run_len = chunks_per_thread * chunk_size;
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = slice;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let cut = run_len.min(rest.len());
                let (run, tail) = rest.split_at_mut(cut);
                rest = tail;
                let base = first_chunk;
                first_chunk += chunks_per_thread;
                s.spawn(move || {
                    for (i, chunk) in run.chunks_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

/// A parallel iterator whose elements are produced by applying `f`.
pub struct Map<B, F> {
    base: B,
    f: F,
}

/// Internal random-access description of a parallel job: `len` items, each
/// computable independently from its index.
pub trait IndexedJob: Sync {
    /// The produced item type.
    type Item: Send;
    /// Number of items.
    fn job_len(&self) -> usize;
    /// Computes item `i`.
    fn item_at(&self, i: usize) -> Self::Item;
}

impl IndexedJob for RangeParIter {
    type Item = usize;
    fn job_len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }
    #[inline]
    fn item_at(&self, i: usize) -> usize {
        self.range.start + i
    }
}

impl<B, F, O> IndexedJob for Map<B, F>
where
    B: IndexedJob,
    F: Fn(B::Item) -> O + Sync,
    O: Send,
{
    type Item = O;
    fn job_len(&self) -> usize {
        self.base.job_len()
    }
    #[inline]
    fn item_at(&self, i: usize) -> O {
        (self.f)(self.base.item_at(i))
    }
}

/// Executes an [`IndexedJob`] across threads, returning items in order.
fn run_to_vec<J: IndexedJob>(job: &J) -> Vec<J::Item> {
    let len = job.job_len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(|i| job.item_at(i)).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<J::Item>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                s.spawn(move || (lo..hi).map(|i| job.item_at(i)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// The parallel-iterator operations the workspace uses.
pub trait ParallelIterator: IndexedJob + Sized {
    /// Maps each item through `f`.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Invokes `f` on every item, potentially in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let job = self.map(f);
        let len = job.job_len();
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            for i in 0..len {
                job.item_at(i);
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        std::thread::scope(|s| {
            let job = &job;
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                s.spawn(move || {
                    for i in lo..hi {
                        job.item_at(i);
                    }
                });
            }
        });
    }

    /// Collects all items, in source order, into `C`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        run_to_vec(&self).into_iter().collect()
    }
}

impl<T: IndexedJob + Sized> ParallelIterator for T {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let r: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..500).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 1003]; // deliberately not a chunk multiple
        data.as_mut_slice().par_chunks_mut(64).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerated_par_chunks_see_correct_indices() {
        let mut data = vec![0usize; 1003];
        data.as_mut_slice()
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|(i, chunk)| {
                for x in chunk {
                    *x = i;
                }
            });
        for (pos, &x) in data.iter().enumerate() {
            assert_eq!(x, pos / 64, "element {pos}");
        }
    }
}
