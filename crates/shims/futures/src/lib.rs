//! Offline API-subset shim of the `futures` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! minimal async-executor surface the server front end uses under the crate
//! name the ecosystem expects:
//!
//! * [`executor::block_on`] — drive a future to completion on the current
//!   thread, parking between polls (a correct waker-based executor, not a
//!   spin loop);
//! * [`executor::block_on_deadline`] — the same, but giving up at a
//!   deadline (a small extension over the real crate, which delegates
//!   timeouts to a runtime; the server uses it to bound waits on job
//!   results so a wedged worker cannot hang a connection forever);
//! * [`channel::oneshot`] — a single-value channel whose receiver is a
//!   future, completing with `Err(Canceled)` if the sender is dropped.
//!
//! Everything is built on `std::task` and a `Mutex`/`Condvar` parker; there
//! is no reactor and no IO integration — blocking IO stays on dedicated
//! threads, and futures are used for completion signalling, which is the
//! only async the workspace needs.

#![warn(missing_docs)]

use std::sync::{Arc, Condvar, Mutex};
use std::task::Wake;
use std::time::Instant;

/// Thread parking primitive behind the executor's waker: `wake` sets the
/// notified flag and signals the condvar; `park` consumes one notification.
#[derive(Default)]
struct Parker {
    notified: Mutex<bool>,
    cvar: Condvar,
}

impl Parker {
    /// Blocks until notified (consumes the notification).
    fn park(&self) {
        let mut notified = self.notified.lock().unwrap_or_else(|e| e.into_inner());
        while !*notified {
            notified = self.cvar.wait(notified).unwrap_or_else(|e| e.into_inner());
        }
        *notified = false;
    }

    /// Blocks until notified or the deadline passes. Returns `true` if a
    /// notification was consumed, `false` on timeout.
    fn park_until(&self, deadline: Instant) -> bool {
        let mut notified = self.notified.lock().unwrap_or_else(|e| e.into_inner());
        while !*notified {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .cvar
                .wait_timeout(notified, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            notified = guard;
        }
        *notified = false;
        true
    }
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        let mut notified = self.notified.lock().unwrap_or_else(|e| e.into_inner());
        *notified = true;
        self.cvar.notify_one();
    }
}

/// Executors that drive futures to completion (`futures::executor`).
pub mod executor {
    use super::Parker;
    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Waker};
    use std::time::Instant;

    /// Runs a future to completion on the current thread, parking between
    /// polls until the future's waker fires.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let parker = Arc::new(Parker::default());
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut fut = pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return value,
                Poll::Pending => parker.park(),
            }
        }
    }

    /// Runs a future to completion like [`block_on`], but gives up (dropping
    /// the future) once `deadline` passes, returning `None`.
    ///
    /// This is the bounded-wait primitive the server front end uses so that
    /// a lost completion can never hang a connection thread forever. (A
    /// small extension over the real `futures` API, which leaves timeouts to
    /// async runtimes the workspace cannot vendor.)
    pub fn block_on_deadline<F: Future>(fut: F, deadline: Instant) -> Option<F::Output> {
        let parker = Arc::new(Parker::default());
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut fut = pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return Some(value),
                Poll::Pending => {
                    if !parker.park_until(deadline) {
                        // One last poll so a wake racing the timeout wins.
                        return match fut.as_mut().poll(&mut cx) {
                            Poll::Ready(value) => Some(value),
                            Poll::Pending => None,
                        };
                    }
                }
            }
        }
    }
}

/// Channel types (`futures::channel`).
pub mod channel {
    /// A one-shot, single-producer single-consumer channel whose receiving
    /// half is a future (`futures::channel::oneshot`).
    pub mod oneshot {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        /// The error returned when the sender was dropped without sending.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Canceled;

        impl std::fmt::Display for Canceled {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot canceled")
            }
        }

        impl std::error::Error for Canceled {}

        struct Shared<T> {
            value: Option<T>,
            waker: Option<Waker>,
            sender_alive: bool,
            receiver_alive: bool,
        }

        /// The sending half; consumes itself on send.
        pub struct Sender<T> {
            shared: Arc<Mutex<Shared<T>>>,
        }

        /// The receiving half: a future resolving to the sent value, or
        /// `Err(Canceled)` if the sender was dropped first.
        pub struct Receiver<T> {
            shared: Arc<Mutex<Shared<T>>>,
        }

        /// Creates a connected sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Mutex::new(Shared {
                value: None,
                waker: None,
                sender_alive: true,
                receiver_alive: true,
            }));
            (
                Sender {
                    shared: Arc::clone(&shared),
                },
                Receiver { shared },
            )
        }

        impl<T> Sender<T> {
            /// Sends the value, waking the receiver.
            ///
            /// # Errors
            ///
            /// Returns the value back if the receiver was already dropped.
            pub fn send(self, value: T) -> Result<(), T> {
                let waker = {
                    let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                    if !shared.receiver_alive {
                        return Err(value);
                    }
                    shared.value = Some(value);
                    shared.waker.take()
                };
                if let Some(waker) = waker {
                    waker.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let waker = {
                    let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                    shared.sender_alive = false;
                    shared.waker.take()
                };
                if let Some(waker) = waker {
                    waker.wake();
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                shared.receiver_alive = false;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, Canceled>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(value) = shared.value.take() {
                    return Poll::Ready(Ok(value));
                }
                if !shared.sender_alive {
                    return Poll::Ready(Err(Canceled));
                }
                shared.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::oneshot;
    use super::executor::{block_on, block_on_deadline};
    use std::time::{Duration, Instant};

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(std::future::ready(42)), 42);
    }

    #[test]
    fn oneshot_delivers_across_threads() {
        let (tx, rx) = oneshot::channel();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send("payload").unwrap();
        });
        assert_eq!(block_on(rx), Ok("payload"));
        handle.join().unwrap();
    }

    #[test]
    fn dropping_the_sender_cancels() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::Canceled));
    }

    #[test]
    fn sending_to_a_dropped_receiver_returns_the_value() {
        let (tx, rx) = oneshot::channel();
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn deadline_expires_on_a_silent_channel() {
        let (_tx, rx) = oneshot::channel::<u32>();
        let start = Instant::now();
        let out = block_on_deadline(rx, Instant::now() + Duration::from_millis(50));
        assert!(out.is_none());
        assert!(start.elapsed() >= Duration::from_millis(50));
        assert!(start.elapsed() < Duration::from_secs(5), "did not hang");
    }

    #[test]
    fn deadline_returns_early_when_the_value_arrives() {
        let (tx, rx) = oneshot::channel();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            let _ = tx.send(1u32);
        });
        let start = Instant::now();
        let out = block_on_deadline(rx, Instant::now() + Duration::from_secs(30));
        assert_eq!(out, Some(Ok(1)));
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
