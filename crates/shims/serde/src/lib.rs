//! Offline API-subset shim of the `serde` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! serialization surface it uses under the crate name the ecosystem expects.
//! Unlike real serde there is no derive machinery and no pluggable
//! `Serializer`/`Deserializer` pair: types convert to and from a single
//! in-memory [`Value`] tree (the JSON data model, with integers kept exact),
//! and the [`json`] module renders and parses that tree. Implementations are
//! written by hand, which is what the workspace's wire types do.
//!
//! Design constraints the wire format relies on:
//!
//! * **Lossless numbers.** `u64`/`i64` round-trip exactly ([`Value::UInt`] /
//!   [`Value::Int`] are separate from [`Value::Float`]), and finite `f64`s
//!   are rendered with Rust's shortest-roundtrip `{:?}` formatting, so
//!   `parse(render(x)) == x` bit-for-bit.
//! * **Deterministic output.** Object fields serialize in insertion order;
//!   the same value always renders to the same string (golden files can be
//!   checked in).

#![warn(missing_docs)]

use std::fmt;

/// A serialization or deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message (the `serde::de::Error` entry
    /// point the workspace uses).
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// An error for a missing object field.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// An error for a type mismatch at a named location.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// The in-memory data model: JSON's value tree, with integers kept separate
/// from floats so `u64`/`i64` round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer (rendered without decimal point or exponent).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs (order is preserved on both
    /// render and parse, making output deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or the field is absent.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self.get(key).ok_or_else(|| Error::missing_field(key)),
            other => Err(Error::expected("object", other)),
        }
    }

    /// The value as a bool.
    ///
    /// # Errors
    ///
    /// Returns an error on any other kind.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }

    /// The value as a `u64` (accepts only non-negative integers).
    ///
    /// # Errors
    ///
    /// Returns an error on any other kind.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::expected("non-negative integer", other)),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Returns an error on any other kind or on overflow.
    pub fn as_usize(&self) -> Result<usize, Error> {
        usize::try_from(self.as_u64()?).map_err(|_| Error::custom("integer overflows usize"))
    }

    /// The value as an `f64` (integers convert).
    ///
    /// # Errors
    ///
    /// Returns an error on any non-numeric kind.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns an error on any other kind.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::expected("string", other)),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns an error on any other kind.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::expected("array", other)),
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

// A Value tree is its own serialization (as in real serde_json), so
// hand-assembled trees render through `json::to_string` directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree, validating along the way.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape or contents do not describe a
    /// valid `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool()
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_u64()
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_usize()
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        if *self >= 0 {
            Value::UInt(*self as u64)
        } else {
            Value::Int(*self)
        }
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => i64::try_from(*n).map_err(|_| Error::custom("integer overflows i64")),
            other => Err(Error::expected("integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// The JSON rendering and parsing of the [`Value`] data model (the shim's
/// stand-in for the `serde_json` crate).
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes a value to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), &mut out, None, 0);
        out
    }

    /// Serializes a value to human-readable, 2-space-indented JSON (used
    /// for golden files; the output is deterministic).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), &mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Deserializes a value from JSON text.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or when the parsed tree does not
    /// describe a valid `T`.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parses JSON text into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if let Some((i, _)) = p.chars.peek() {
            return Err(Error::custom(format!("trailing input at byte {i}")));
        }
        Ok(value)
    }

    fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                write!(out, "{n}").expect("string write");
            }
            Value::Int(n) => {
                write!(out, "{n}").expect("string write");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest-roundtrip rendering: parsing
                    // it back yields the identical f64, and integral values
                    // keep a ".0" so they stay classified as floats.
                    write!(out, "{x:?}").expect("string write");
                } else {
                    // JSON has no NaN/∞; render as null like serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    render(&items[i], out, indent, depth + 1);
                });
            }
            Value::Object(fields) => {
                render_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
                    render_string(&fields[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(&fields[i].1, out, indent, depth + 1);
                });
            }
        }
    }

    fn render_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        len: usize,
        open: char,
        close: char,
        mut item: impl FnMut(&mut String, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
            }
            item(out, i);
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
        out.push(close);
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    write!(out, "\\u{:04x}", c as u32).expect("string write");
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Maximum container nesting the parser accepts (serde_json's default
    /// is 128). The parser recurses per level, so without a cap a
    /// deep-nested hostile payload would overflow the stack and abort the
    /// process instead of returning the documented wire error.
    const MAX_DEPTH: usize = 128;

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::CharIndices<'a>>,
        text: &'a str,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
                self.chars.next();
            }
        }

        fn expect_char(&mut self, want: char) -> Result<(), Error> {
            match self.chars.next() {
                Some((_, c)) if c == want => Ok(()),
                Some((i, c)) => Err(Error::custom(format!(
                    "expected '{want}' at byte {i}, found '{c}'"
                ))),
                None => Err(Error::custom(format!(
                    "expected '{want}', found end of input"
                ))),
            }
        }

        fn eat_keyword(&mut self, keyword: &str) -> Result<(), Error> {
            for want in keyword.chars() {
                match self.chars.next() {
                    Some((_, c)) if c == want => {}
                    _ => {
                        return Err(Error::custom(format!(
                            "invalid literal, expected {keyword}"
                        )))
                    }
                }
            }
            Ok(())
        }

        fn value(&mut self, depth: usize) -> Result<Value, Error> {
            if depth > MAX_DEPTH {
                return Err(Error::custom(format!(
                    "nesting deeper than {MAX_DEPTH} levels"
                )));
            }
            self.skip_ws();
            match self.chars.peek().copied() {
                None => Err(Error::custom("unexpected end of input")),
                Some((_, 'n')) => {
                    self.eat_keyword("null")?;
                    Ok(Value::Null)
                }
                Some((_, 't')) => {
                    self.eat_keyword("true")?;
                    Ok(Value::Bool(true))
                }
                Some((_, 'f')) => {
                    self.eat_keyword("false")?;
                    Ok(Value::Bool(false))
                }
                Some((_, '"')) => Ok(Value::Str(self.string()?)),
                Some((_, '[')) => {
                    self.chars.next();
                    let mut items = Vec::new();
                    self.skip_ws();
                    if matches!(self.chars.peek(), Some((_, ']'))) {
                        self.chars.next();
                        return Ok(Value::Array(items));
                    }
                    loop {
                        items.push(self.value(depth + 1)?);
                        self.skip_ws();
                        match self.chars.next() {
                            Some((_, ',')) => continue,
                            Some((_, ']')) => return Ok(Value::Array(items)),
                            _ => return Err(Error::custom("expected ',' or ']' in array")),
                        }
                    }
                }
                Some((_, '{')) => {
                    self.chars.next();
                    let mut fields = Vec::new();
                    self.skip_ws();
                    if matches!(self.chars.peek(), Some((_, '}'))) {
                        self.chars.next();
                        return Ok(Value::Object(fields));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.expect_char(':')?;
                        fields.push((key, self.value(depth + 1)?));
                        self.skip_ws();
                        match self.chars.next() {
                            Some((_, ',')) => continue,
                            Some((_, '}')) => return Ok(Value::Object(fields)),
                            _ => return Err(Error::custom("expected ',' or '}' in object")),
                        }
                    }
                }
                Some((start, c)) if c == '-' || c.is_ascii_digit() => self.number(start),
                Some((i, c)) => Err(Error::custom(format!("unexpected '{c}' at byte {i}"))),
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect_char('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    None => return Err(Error::custom("unterminated string")),
                    Some((_, '"')) => return Ok(out),
                    Some((_, '\\')) => match self.chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, '/')) => out.push('/'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'b')) => out.push('\u{8}'),
                        Some((_, 'f')) => out.push('\u{c}'),
                        Some((_, 'u')) => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, c) = self
                                    .chars
                                    .next()
                                    .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                                code = code * 16
                                    + c.to_digit(16)
                                        .ok_or_else(|| Error::custom("invalid \\u escape"))?;
                            }
                            // Surrogate pairs are not produced by the
                            // renderer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    },
                    Some((_, c)) => out.push(c),
                }
            }
        }

        fn number(&mut self, start: usize) -> Result<Value, Error> {
            let mut end = start;
            let mut float = false;
            while let Some(&(i, c)) = self.chars.peek() {
                match c {
                    '0'..='9' | '-' | '+' => {}
                    '.' | 'e' | 'E' => float = true,
                    _ => break,
                }
                end = i + c.len_utf8();
                self.chars.next();
            }
            let token = &self.text[start..end];
            if !float {
                if let Some(stripped) = token.strip_prefix('-') {
                    if let Ok(n) = stripped.parse::<u64>() {
                        if n <= i64::MAX as u64 {
                            return Ok(Value::Int(-(n as i64)));
                        }
                        if n == i64::MAX as u64 + 1 {
                            // |i64::MIN| overflows i64 before negation.
                            return Ok(Value::Int(i64::MIN));
                        }
                    }
                } else if let Ok(n) = token.parse::<u64>() {
                    return Ok(Value::UInt(n));
                }
            }
            token
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number {token:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(json::to_string(&true), "true");
        assert!(json::from_str::<bool>("true").unwrap());
        assert_eq!(json::to_string(&u64::MAX), "18446744073709551615");
        assert_eq!(
            json::from_str::<u64>("18446744073709551615").unwrap(),
            u64::MAX
        );
        assert_eq!(json::to_string(&-42i64), "-42");
        assert_eq!(json::from_str::<i64>("-42").unwrap(), -42);
        // The extreme integers, including |i64::MIN| = i64::MAX + 1.
        for n in [i64::MIN, i64::MIN + 1, i64::MAX] {
            assert_eq!(json::from_str::<i64>(&json::to_string(&n)).unwrap(), n);
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(json::parse(&deep).is_err());
        let deep_objects = "{\"k\":".repeat(100_000);
        assert!(json::parse(&deep_objects).is_err());
        // 100 levels (within the limit) still parse.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(json::parse(&ok).is_ok());
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for x in [
            0.1,
            -0.0,
            1.0,
            std::f64::consts::PI,
            1e-300,
            6.5e9,
            f64::MIN_POSITIVE,
        ] {
            let text = json::to_string(&x);
            let back: f64 = json::from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "qu\"ote\\slash\nnewline\ttab X† X·H".to_string();
        let text = json::to_string(&s);
        assert_eq!(json::from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);
        let none: Option<u64> = None;
        assert_eq!(json::to_string(&none), "null");
        assert_eq!(json::from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn objects_preserve_field_order() {
        let v = Value::object(vec![("zeta", Value::UInt(1)), ("alpha", Value::UInt(2))]);
        let mut out = String::new();
        out.push_str(&json::to_string(&WrapValue(v.clone())));
        assert_eq!(out, r#"{"zeta":1,"alpha":2}"#);
        assert_eq!(json::parse(&out).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::object(vec![
            ("name", Value::Str("fig4".to_string())),
            (
                "points",
                Value::Array(vec![Value::UInt(1), Value::Float(0.5)]),
            ),
            ("empty", Value::Array(Vec::new())),
        ]);
        let pretty = json::to_string_pretty(&WrapValue(v.clone()));
        assert!(pretty.contains("\n  \"name\""));
        assert_eq!(json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("1 2").is_err());
        assert!(json::parse("\"unterminated").is_err());
        assert!(json::from_str::<u64>("-3").is_err());
    }

    struct WrapValue(Value);
    impl Serialize for WrapValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
