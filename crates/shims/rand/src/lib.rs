//! Offline API-subset shim of the `rand` crate.
//!
//! Implements only the surface the workspace uses: [`Rng::gen_range`] over
//! half-open integer and float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic across
//! runs and platforms, which the seeded tests and the trajectory simulator's
//! per-trial seeds rely on.

#![warn(missing_docs)]

use std::ops::Range;

/// A low-level source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard 2^-53 mantissa trick.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample a uniform value of type `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping; bias is ≤ span/2^64,
                // far below anything a simulation or test could observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn int_samples_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn works_through_unsized_rng_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
