//! Offline API-subset shim of the `criterion` crate.
//!
//! A plain wall-clock micro-benchmark harness exposing the `Criterion` /
//! `BenchmarkGroup` / `BenchmarkId` / `Bencher` surface the workspace's
//! benches use. Unlike real criterion there is no statistical analysis or
//! HTML report: each benchmark is warmed up, timed over an adaptive number
//! of iterations, and reported as `ns/iter` on stdout.
//!
//! Behaviour under cargo:
//! * `cargo bench` passes `--bench` → full timing runs.
//! * `cargo test --benches` passes `--test` → every benchmark body runs
//!   exactly once, so benches are smoke-tested without burning time.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a harness invocation should behave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement (under `cargo bench`).
    Bench,
    /// Run each body once (under `cargo test`).
    Test,
}

/// The top-level benchmark harness.
pub struct Criterion {
    mode: Mode,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode { Mode::Test } else { Mode::Bench },
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self.mode, self.measurement, &id.render(None), &mut f);
        self
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark group, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.render(Some(&self.name));
        run_benchmark(
            self.criterion.mode,
            self.criterion.measurement,
            &label,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().render(Some(&self.name));
        run_benchmark(
            self.criterion.mode,
            self.criterion.measurement,
            &label,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; its [`Bencher::iter`] times the routine.
pub struct Bencher {
    mode: Mode,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iter for the harness to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            black_box(routine());
            self.ns_per_iter = None;
            return;
        }
        // Warm-up: run until ~10% of the measurement budget is spent, and
        // estimate the per-iteration cost along the way.
        let warmup_budget = self.measurement / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let est_per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target_iters =
            ((self.measurement.as_secs_f64() / est_per_iter) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = Some(elapsed.as_nanos() as f64 / target_iters as f64);
    }
}

fn run_benchmark(mode: Mode, measurement: Duration, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode,
        measurement,
        ns_per_iter: None,
    };
    f(&mut bencher);
    match (mode, bencher.ns_per_iter) {
        (Mode::Test, _) => println!("test {label} ... ok (bench smoke run)"),
        (Mode::Bench, Some(ns)) => println!("{label:<60} time: {}", format_ns(ns)),
        (Mode::Bench, None) => println!("{label:<60} (no measurement: iter was never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 12).render(Some("g")), "g/f/12");
        assert_eq!(BenchmarkId::from_parameter(8).render(Some("g")), "g/8");
        assert_eq!(BenchmarkId::from("solo").render(None), "solo");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut calls = 0usize;
        let mut bencher = Bencher {
            mode: Mode::Test,
            measurement: Duration::from_millis(10),
            ns_per_iter: None,
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(bencher.ns_per_iter.is_none());
    }

    #[test]
    fn bench_mode_measures_something() {
        let mut bencher = Bencher {
            mode: Mode::Bench,
            measurement: Duration::from_millis(5),
            ns_per_iter: None,
        };
        bencher.iter(|| black_box(3usize.pow(7)));
        assert!(bencher.ns_per_iter.unwrap() > 0.0);
    }
}
