//! Property-based equivalence suite: every kernel path of the
//! stride-enumerated engine must agree with the retained naive reference
//! (`qudit_sim::reference`) on random states, random gates and random
//! control configurations, for `d ∈ {2, 3, 4}`.
//!
//! Paths covered:
//! * dense `k = 1` (monomorphic d = 2, 3, 4 kernels),
//! * dense `k = 2` (monomorphic d = 2, 3 kernels and the dynamic fallback),
//! * generic gather–scatter (`k = 3`),
//! * the sparse permutation fast path (classical gates, with controls),
//! * the parallel dispatch (both the contiguous-chunk and the strided
//!   shared-pointer variants, forced on regardless of host core count),
//! * the plan-cache path through `Simulator` on whole random circuits.

use proptest::prelude::*;
use qudit_circuit::{Circuit, Control, Gate, Operation};
use qudit_core::{complex_gaussian, random_state, CMatrix, Complex, StateVector};
use qudit_sim::{reference, ApplyPlan, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Max |amplitude difference| tolerated between the two engines.
const TOL: f64 = 1e-10;

/// A Haar-ish random unitary via modified Gram–Schmidt on a Gaussian matrix.
fn random_unitary(n: usize, rng: &mut StdRng) -> CMatrix {
    let mut cols: Vec<Vec<Complex>> = (0..n)
        .map(|_| (0..n).map(|_| complex_gaussian(rng)).collect())
        .collect();
    for i in 0..n {
        let (done, rest) = cols.split_at_mut(i);
        let col = &mut rest[0];
        for prev in done.iter() {
            let proj: Complex = prev
                .iter()
                .zip(col.iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            for (x, y) in col.iter_mut().zip(prev.iter()) {
                *x -= proj * *y;
            }
        }
        let norm: f64 = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-9, "degenerate random matrix");
        for z in col.iter_mut() {
            *z = z.scale(1.0 / norm);
        }
    }
    let mut m = CMatrix::zeros(n, n);
    for (c, col) in cols.iter().enumerate() {
        for (r, z) in col.iter().enumerate() {
            m.set(r, c, *z);
        }
    }
    m
}

/// Picks `k` distinct qudit indices out of `0..n`.
fn random_targets(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

fn assert_states_match(fast: &StateVector, slow: &StateVector, what: &str) {
    for (i, (a, b)) in fast.amplitudes().iter().zip(slow.amplitudes()).enumerate() {
        assert!(
            a.approx_eq(*b, TOL),
            "{what}: amplitude {i} differs: {a:?} vs {b:?}"
        );
    }
}

/// Applies `matrix` on `targets` with `controls` through (a) the plan kernel,
/// sequential; (b) the plan kernel, forced-parallel dispatch; (c) the naive
/// reference — and checks all three agree.
fn check_equivalence(
    dim: usize,
    width: usize,
    matrix: &CMatrix,
    targets: &[usize],
    controls: &[(usize, usize)],
    state: &StateVector,
    what: &str,
) {
    let plan = ApplyPlan::new(dim, width, matrix, targets, controls);
    // Acceptance criterion: the kernel visits exactly d^(n-k-c) groups.
    assert_eq!(
        plan.groups(),
        dim.pow((width - targets.len() - controls.len()) as u32),
        "{what}: wrong group count"
    );

    let mut seq = state.clone();
    plan.apply_forced(&mut seq, false);

    let mut par = state.clone();
    plan.apply_forced(&mut par, true);

    let mut naive = state.clone();
    let control_structs: Vec<Control> = controls
        .iter()
        .map(|&(q, level)| Control::new(q, level))
        .collect();
    if control_structs.is_empty() {
        reference::apply_matrix_naive(&mut naive, matrix, targets);
    } else {
        let gate = Gate::new("rand", dim, targets.len(), matrix.clone()).unwrap();
        let op = Operation::new(gate, control_structs, targets.to_vec()).unwrap();
        reference::apply_operation_naive(&mut naive, &op);
    }

    assert_states_match(&seq, &naive, &format!("{what} (sequential)"));
    assert_states_match(&par, &naive, &format!("{what} (parallel)"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Dense single-target gates: exercises the monomorphic d = 2, 3, 4
    /// k = 1 kernels on every target position (contiguous and strided).
    #[test]
    fn dense_k1_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..5);
        let target = rng.gen_range(0..width);
        let u = random_unitary(dim, &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &[target], &[], &state, "dense k=1");
    }

    /// Dense two-target gates: the monomorphic d = 2, 3 k = 2 kernels plus
    /// the dynamic fallback at d = 4.
    #[test]
    fn dense_k2_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..5);
        let targets = random_targets(width, 2, &mut rng);
        let u = random_unitary(dim * dim, &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &targets, &[], &state, "dense k=2");
    }

    /// Three-target gates take the generic gather–scatter path.
    #[test]
    fn generic_k3_matches_reference(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(3..5);
        let targets = random_targets(width, 3, &mut rng);
        let u = random_unitary(dim.pow(3), &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &targets, &[], &state, "generic k=3");
    }

    /// Random permutation matrices take the sparse cycle kernel.
    #[test]
    fn permutation_fast_path_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width: usize = rng.gen_range(1..5);
        let k = rng.gen_range(1..width.min(2) + 1);
        let targets = random_targets(width, k, &mut rng);
        let block = dim.pow(k as u32);
        let mut perm: Vec<usize> = (0..block).collect();
        for i in (1..block).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let m = CMatrix::permutation(&perm);
        let plan = ApplyPlan::new(dim, width, &m, &targets, &[]);
        assert!(plan.is_permutation(), "permutation matrix must take the sparse path");
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &m, &targets, &[], &state, "permutation");
    }

    /// Controlled operations: random control counts and activation levels,
    /// on both dense and classical gates.
    #[test]
    fn controlled_ops_match_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..6);
        let qudits = random_targets(width, width.min(rng.gen_range(2..4)), &mut rng);
        let (target, control_qudits) = qudits.split_first().unwrap();
        let controls: Vec<(usize, usize)> = control_qudits
            .iter()
            .map(|&q| (q, rng.gen_range(0..dim)))
            .collect();
        let state = random_state(dim, width, &mut rng).unwrap();
        let u = random_unitary(dim, &mut rng);
        check_equivalence(dim, width, &u, &[*target], &controls, &state, "controlled dense");
        // And a controlled classical gate (permutation under control).
        let shift = Gate::increment(dim);
        check_equivalence(
            dim,
            width,
            shift.matrix(),
            &[*target],
            &controls,
            &state,
            "controlled permutation",
        );
    }

    /// Whole random circuits through the plan-caching `Simulator` vs the
    /// naive reference, op by op.
    #[test]
    fn simulator_matches_naive_on_random_circuits(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..5);
        let mut circuit = Circuit::new(dim, width);
        for _ in 0..8 {
            let target = rng.gen_range(0..width);
            let gate = match rng.gen_range(0..4) {
                0 => Gate::increment(dim),
                1 => Gate::from_matrix("U", dim, random_unitary(dim, &mut rng)).unwrap(),
                2 => Gate::fourier(dim),
                _ => Gate::x(dim),
            };
            if width > 1 && rng.gen_bool(0.5) {
                let mut control = rng.gen_range(0..width);
                while control == target {
                    control = rng.gen_range(0..width);
                }
                let level = rng.gen_range(0..dim);
                circuit
                    .push_controlled(gate, &[Control::new(control, level)], &[target])
                    .unwrap();
            } else {
                circuit.push_gate(gate, &[target]).unwrap();
            }
        }
        let state = random_state(dim, width, &mut rng).unwrap();

        let fast = Simulator::new().run_with_state(&circuit, state.clone());
        let mut naive = state;
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        assert_states_match(&fast, &naive, "random circuit");
    }
}

/// One deterministic large case that crosses the real parallel threshold
/// (9 qutrits = 19 683 amplitudes > `PAR_MIN_AMPS`), so `apply`'s own
/// dispatch decision is exercised end-to-end on multi-core hosts.
#[test]
fn large_register_auto_dispatch_matches_reference() {
    let mut rng = StdRng::seed_from_u64(2019);
    let dim = 3;
    let width = 9;
    let state = random_state(dim, width, &mut rng).unwrap();

    for (targets, what) in [
        (vec![8], "k=1 contiguous"),
        (vec![0], "k=1 strided"),
        (vec![4, 8], "k=2 mixed"),
    ] {
        let u = random_unitary(dim.pow(targets.len() as u32), &mut rng);
        let plan = ApplyPlan::for_matrix(dim, width, &u, &targets);
        let mut fast = state.clone();
        plan.apply(&mut fast); // auto dispatch
        let mut naive = state.clone();
        reference::apply_matrix_naive(&mut naive, &u, &targets);
        assert_states_match(&fast, &naive, what);
    }
}
