//! Property-based equivalence suite: every kernel path of the
//! stride-enumerated engine must agree with the retained naive reference
//! (`qudit_sim::reference`) on random states, random gates and random
//! control configurations, for `d ∈ {2, 3, 4}`.
//!
//! Paths covered:
//! * dense `k = 1` (monomorphic d = 2, 3, 4 kernels),
//! * dense `k = 2` (monomorphic d = 2, 3 kernels and the dynamic fallback),
//! * generic gather–scatter (`k = 3`),
//! * the sparse permutation fast path (classical gates, with controls),
//! * the parallel dispatch (both the contiguous-chunk and the strided
//!   shared-pointer variants, forced on regardless of host core count),
//! * the plan-cache path through `Simulator` on whole random circuits.

use proptest::prelude::*;
use qudit_circuit::{Circuit, Control, Gate, Operation};
use qudit_core::{complex_gaussian, random_state, CMatrix, Complex, StateVector};
use qudit_sim::kernel::SimdLevel;
use qudit_sim::{reference, ApplyPlan, CompiledCircuit, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether the host can actually execute the AVX2+FMA kernels. Gates the
/// forced-level tests on the CPU, not on `QUDIT_SIMD` — CI forces the env
/// var both ways and the cross-level check must still run under
/// `QUDIT_SIMD=scalar` on capable hardware.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}
#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Max |amplitude difference| tolerated between the two engines.
const TOL: f64 = 1e-10;

/// A Haar-ish random unitary via modified Gram–Schmidt on a Gaussian matrix.
fn random_unitary(n: usize, rng: &mut StdRng) -> CMatrix {
    let mut cols: Vec<Vec<Complex>> = (0..n)
        .map(|_| (0..n).map(|_| complex_gaussian(rng)).collect())
        .collect();
    for i in 0..n {
        let (done, rest) = cols.split_at_mut(i);
        let col = &mut rest[0];
        for prev in done.iter() {
            let proj: Complex = prev
                .iter()
                .zip(col.iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            for (x, y) in col.iter_mut().zip(prev.iter()) {
                *x -= proj * *y;
            }
        }
        let norm: f64 = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-9, "degenerate random matrix");
        for z in col.iter_mut() {
            *z = z.scale(1.0 / norm);
        }
    }
    let mut m = CMatrix::zeros(n, n);
    for (c, col) in cols.iter().enumerate() {
        for (r, z) in col.iter().enumerate() {
            m.set(r, c, *z);
        }
    }
    m
}

/// Picks `k` distinct qudit indices out of `0..n`.
fn random_targets(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

fn assert_states_match(fast: &StateVector, slow: &StateVector, what: &str) {
    for (i, (a, b)) in fast.amplitudes().iter().zip(slow.amplitudes()).enumerate() {
        assert!(
            a.approx_eq(*b, TOL),
            "{what}: amplitude {i} differs: {a:?} vs {b:?}"
        );
    }
}

/// Applies `matrix` on `targets` with `controls` through (a) the plan kernel,
/// sequential; (b) the plan kernel, forced-parallel dispatch; (c) the naive
/// reference — and checks all three agree.
fn check_equivalence(
    dim: usize,
    width: usize,
    matrix: &CMatrix,
    targets: &[usize],
    controls: &[(usize, usize)],
    state: &StateVector,
    what: &str,
) {
    let plan = ApplyPlan::new(dim, width, matrix, targets, controls);
    // Acceptance criterion: the kernel visits exactly d^(n-k-c) groups.
    assert_eq!(
        plan.groups(),
        dim.pow((width - targets.len() - controls.len()) as u32),
        "{what}: wrong group count"
    );

    let mut seq = state.clone();
    plan.apply_forced(&mut seq, false);

    let mut par = state.clone();
    plan.apply_forced(&mut par, true);

    let mut naive = state.clone();
    let control_structs: Vec<Control> = controls
        .iter()
        .map(|&(q, level)| Control::new(q, level))
        .collect();
    if control_structs.is_empty() {
        reference::apply_matrix_naive(&mut naive, matrix, targets);
    } else {
        let gate = Gate::new("rand", dim, targets.len(), matrix.clone()).unwrap();
        let op = Operation::new(gate, control_structs, targets.to_vec()).unwrap();
        reference::apply_operation_naive(&mut naive, &op);
    }

    assert_states_match(&seq, &naive, &format!("{what} (sequential)"));
    assert_states_match(&par, &naive, &format!("{what} (parallel)"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Dense single-target gates: exercises the monomorphic d = 2, 3, 4
    /// k = 1 kernels on every target position (contiguous and strided).
    #[test]
    fn dense_k1_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(1..5);
        let target = rng.gen_range(0..width);
        let u = random_unitary(dim, &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &[target], &[], &state, "dense k=1");
    }

    /// Dense two-target gates: the monomorphic d = 2, 3 k = 2 kernels plus
    /// the dynamic fallback at d = 4.
    #[test]
    fn dense_k2_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..5);
        let targets = random_targets(width, 2, &mut rng);
        let u = random_unitary(dim * dim, &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &targets, &[], &state, "dense k=2");
    }

    /// Three-target gates take the generic gather–scatter path.
    #[test]
    fn generic_k3_matches_reference(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(3..5);
        let targets = random_targets(width, 3, &mut rng);
        let u = random_unitary(dim.pow(3), &mut rng);
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &u, &targets, &[], &state, "generic k=3");
    }

    /// Random permutation matrices take the sparse cycle kernel.
    #[test]
    fn permutation_fast_path_matches_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width: usize = rng.gen_range(1..5);
        let k = rng.gen_range(1..width.min(2) + 1);
        let targets = random_targets(width, k, &mut rng);
        let block = dim.pow(k as u32);
        let mut perm: Vec<usize> = (0..block).collect();
        for i in (1..block).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let m = CMatrix::permutation(&perm);
        let plan = ApplyPlan::new(dim, width, &m, &targets, &[]);
        assert!(plan.is_permutation(), "permutation matrix must take the sparse path");
        let state = random_state(dim, width, &mut rng).unwrap();
        check_equivalence(dim, width, &m, &targets, &[], &state, "permutation");
    }

    /// Controlled operations: random control counts and activation levels,
    /// on both dense and classical gates.
    #[test]
    fn controlled_ops_match_reference(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..6);
        let qudits = random_targets(width, width.min(rng.gen_range(2..4)), &mut rng);
        let (target, control_qudits) = qudits.split_first().unwrap();
        let controls: Vec<(usize, usize)> = control_qudits
            .iter()
            .map(|&q| (q, rng.gen_range(0..dim)))
            .collect();
        let state = random_state(dim, width, &mut rng).unwrap();
        let u = random_unitary(dim, &mut rng);
        check_equivalence(dim, width, &u, &[*target], &controls, &state, "controlled dense");
        // And a controlled classical gate (permutation under control).
        let shift = Gate::increment(dim);
        check_equivalence(
            dim,
            width,
            shift.matrix(),
            &[*target],
            &controls,
            &state,
            "controlled permutation",
        );
    }

    /// Both forced SIMD levels agree with the reference, and with each
    /// other: dense kernels within 1e-12 (FMA changes rounding, nothing
    /// else), permutation and diagonal paths **bit-identically** — those
    /// kernels never branch on the SIMD level, so the operation order is
    /// unchanged by construction and the test pins that it stays so.
    #[test]
    fn forced_simd_levels_agree(seed in 0u64..1_000_000, dim in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..6);
        let state = random_state(dim, width, &mut rng).unwrap();

        // Dense k=1 and k=2 at a random position.
        for k in 1..=2usize {
            let targets = random_targets(width, k, &mut rng);
            let u = random_unitary(dim.pow(k as u32), &mut rng);
            let plan = ApplyPlan::for_matrix(dim, width, &u, &targets);
            let mut scalar = state.clone();
            plan.apply_forced_simd(&mut scalar, false, SimdLevel::Scalar);
            let mut naive = state.clone();
            reference::apply_matrix_naive(&mut naive, &u, &targets);
            assert_states_match(&scalar, &naive, &format!("dense k={k} scalar"));
            if avx2_available() {
                let mut vectored = state.clone();
                plan.apply_forced_simd(&mut vectored, false, SimdLevel::Avx2);
                for (i, (a, b)) in vectored.amplitudes().iter().zip(scalar.amplitudes()).enumerate() {
                    assert!(
                        a.approx_eq(*b, 1e-12),
                        "dense k={k}: scalar/avx2 amplitude {i} differ beyond 1e-12: {a:?} vs {b:?}"
                    );
                }
            }
        }

        // Permutation (classical) and diagonal plans: exact across levels.
        let target = rng.gen_range(0..width);
        for (gate, what) in [(Gate::increment(dim), "permutation"), (Gate::clock(dim), "diagonal")] {
            let plan = ApplyPlan::for_matrix(dim, width, gate.matrix(), &[target]);
            let mut scalar = state.clone();
            plan.apply_forced_simd(&mut scalar, false, SimdLevel::Scalar);
            if avx2_available() {
                let mut vectored = state.clone();
                plan.apply_forced_simd(&mut vectored, false, SimdLevel::Avx2);
                for (i, (a, b)) in vectored.amplitudes().iter().zip(scalar.amplitudes()).enumerate() {
                    assert_eq!(
                        (a.re.to_bits(), a.im.to_bits()),
                        (b.re.to_bits(), b.im.to_bits()),
                        "{what}: amplitude {i} not bit-identical across SIMD levels"
                    );
                }
            }
            let mut naive = state.clone();
            reference::apply_matrix_naive(&mut naive, gate.matrix(), &[target]);
            assert_states_match(&scalar, &naive, what);
        }
    }

    /// Cache-blocked segmented replay (including composed-permutation
    /// folding) vs the naive reference, on circuits built to have a
    /// chunkable trailing-support run: some prefix on qudit 0, then a run
    /// of gates confined to the last two qudits — classical-only runs fold
    /// into one exact chunk permutation, mixed runs replay per-plan.
    /// Against op-at-a-time plan application a classical-only run must be
    /// **bit-identical** (permutation folding moves amplitudes without any
    /// arithmetic); mixed runs must agree within 1e-12 — a span plan's
    /// shorter runs may select a different dense micro-kernel (tiled
    /// split-lane vs per-group), which changes rounding order only.
    #[test]
    fn segmented_replay_matches_reference(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classical_only = seed % 2 == 0;
        let width = rng.gen_range(4..7);
        let mut circuit = Circuit::new(dim, width);
        circuit.push_gate(Gate::fourier(dim), &[0]).unwrap();
        for _ in 0..rng.gen_range(2..6) {
            let target = width - 1 - rng.gen_range(0usize..2);
            let gate = match (classical_only, rng.gen_range(0..3)) {
                (true, 0) => Gate::increment(dim),
                (true, 1) => Gate::x(dim),
                (true, _) => Gate::decrement(dim),
                (false, 0) => Gate::fourier(dim),
                (false, 1) => Gate::increment(dim),
                (false, _) => Gate::from_matrix("U", dim, random_unitary(dim, &mut rng)).unwrap(),
            };
            if rng.gen_bool(0.4) {
                let other = 2 * width - 3 - target; // the other trailing qudit
                circuit
                    .push_controlled(gate, &[Control::new(other, rng.gen_range(0..dim))], &[target])
                    .unwrap();
            } else {
                circuit.push_gate(gate, &[target]).unwrap();
            }
        }
        circuit.push_gate(Gate::fourier(dim), &[0]).unwrap();
        let state = random_state(dim, width, &mut rng).unwrap();

        let compiled = CompiledCircuit::compile(&circuit);
        let fast = compiled.run_sequential(state.clone());

        let mut naive = state.clone();
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        assert_states_match(&fast, &naive, "segmented replay");

        let mut op_at_a_time = state;
        for op in circuit.iter() {
            ApplyPlan::for_operation(width, op).apply_forced(&mut op_at_a_time, false);
        }
        for (i, (a, b)) in fast.amplitudes().iter().zip(op_at_a_time.amplitudes()).enumerate() {
            if classical_only {
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "folded permutation replay: amplitude {i} not bit-identical to op-at-a-time"
                );
            } else {
                assert!(
                    a.approx_eq(*b, 1e-12),
                    "segmented replay: amplitude {i} drifts beyond 1e-12 from op-at-a-time: {a:?} vs {b:?}"
                );
            }
        }
    }

    /// Whole random circuits through the plan-caching `Simulator` vs the
    /// naive reference, op by op.
    #[test]
    fn simulator_matches_naive_on_random_circuits(seed in 0u64..1_000_000, dim in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2..5);
        let mut circuit = Circuit::new(dim, width);
        for _ in 0..8 {
            let target = rng.gen_range(0..width);
            let gate = match rng.gen_range(0..4) {
                0 => Gate::increment(dim),
                1 => Gate::from_matrix("U", dim, random_unitary(dim, &mut rng)).unwrap(),
                2 => Gate::fourier(dim),
                _ => Gate::x(dim),
            };
            if width > 1 && rng.gen_bool(0.5) {
                let mut control = rng.gen_range(0..width);
                while control == target {
                    control = rng.gen_range(0..width);
                }
                let level = rng.gen_range(0..dim);
                circuit
                    .push_controlled(gate, &[Control::new(control, level)], &[target])
                    .unwrap();
            } else {
                circuit.push_gate(gate, &[target]).unwrap();
            }
        }
        let state = random_state(dim, width, &mut rng).unwrap();

        let fast = Simulator::new().run_with_state(&circuit, state.clone());
        let mut naive = state;
        for op in circuit.iter() {
            reference::apply_operation_naive(&mut naive, op);
        }
        assert_states_match(&fast, &naive, "random circuit");
    }
}

/// One deterministic large case whose dense plans cross the real parallel
/// threshold (9-qutrit k = 1/k = 2 work estimates exceed `PAR_MIN_WORK`),
/// so `apply`'s own dispatch decision is exercised end-to-end on
/// multi-core hosts.
#[test]
fn large_register_auto_dispatch_matches_reference() {
    let mut rng = StdRng::seed_from_u64(2019);
    let dim = 3;
    let width = 9;
    let state = random_state(dim, width, &mut rng).unwrap();

    for (targets, what) in [
        (vec![8], "k=1 contiguous"),
        (vec![0], "k=1 strided"),
        (vec![4, 8], "k=2 mixed"),
    ] {
        let u = random_unitary(dim.pow(targets.len() as u32), &mut rng);
        let plan = ApplyPlan::for_matrix(dim, width, &u, &targets);
        let mut fast = state.clone();
        plan.apply(&mut fast); // auto dispatch
        let mut naive = state.clone();
        reference::apply_matrix_naive(&mut naive, &u, &targets);
        assert_states_match(&fast, &naive, what);
    }
}
