//! Gate-application kernels.
//!
//! Applying a `k`-qudit gate to an `n`-qudit state never materialises the
//! `d^n × d^n` matrix (which for 14 qutrits would occupy hundreds of
//! terabytes, as the paper notes in Section 6.2). Instead, the state vector
//! is traversed in groups of `d^k` amplitudes that share the same values on
//! all *other* qudits, and the `d^k × d^k` operation matrix is applied to
//! each group — the same einsum-style contraction Cirq performs.

use qudit_core::{CMatrix, Complex, StateVector};
use qudit_circuit::Operation;

/// Applies a unitary `matrix` to the listed `qudits` (most significant
/// first) of the state vector, in place.
///
/// # Panics
///
/// Panics if the matrix size does not equal `dim^qudits.len()`, a qudit index
/// is out of range, or a qudit index repeats.
pub fn apply_matrix(state: &mut StateVector, matrix: &CMatrix, qudits: &[usize]) {
    let dim = state.dim();
    let n = state.num_qudits();
    let k = qudits.len();
    let block = dim.pow(k as u32);
    assert_eq!(matrix.rows(), block, "matrix size must be dim^k");
    assert_eq!(matrix.cols(), block, "matrix size must be dim^k");
    let mut seen = vec![false; n];
    for &q in qudits {
        assert!(q < n, "qudit index {q} out of range");
        assert!(!seen[q], "repeated qudit index {q}");
        seen[q] = true;
    }

    // Stride (in flat index units) of each targeted qudit. Qudit q is the
    // q-th most significant digit, so its stride is dim^(n-1-q).
    let strides: Vec<usize> = qudits.iter().map(|&q| dim.pow((n - 1 - q) as u32)).collect();

    // Enumerate all assignments of the non-targeted qudits by iterating over
    // every flat index whose targeted digits are all zero.
    let len = state.len();
    let amps = state.amplitudes_mut();
    let mut local = vec![Complex::ZERO; block];
    let mut offsets = vec![0usize; block];
    // Precompute the offset of each local basis state within a group.
    for (b, offset) in offsets.iter_mut().enumerate() {
        let mut rem = b;
        let mut off = 0usize;
        for i in (0..k).rev() {
            let digit = rem % dim;
            rem /= dim;
            off += digit * strides[i];
        }
        *offset = off;
    }

    // Iterate over base indices where every targeted digit is zero.
    let mut base = 0usize;
    while base < len {
        // Check whether all targeted digits of `base` are zero.
        let mut targeted_zero = true;
        for (i, &q) in qudits.iter().enumerate() {
            let _ = i;
            let digit = (base / dim.pow((n - 1 - q) as u32)) % dim;
            if digit != 0 {
                targeted_zero = false;
                break;
            }
        }
        if targeted_zero {
            // Gather, multiply, scatter.
            for b in 0..block {
                local[b] = amps[base + offsets[b]];
            }
            for (r, offset) in offsets.iter().enumerate() {
                let mut acc = Complex::ZERO;
                for (c, l) in local.iter().enumerate() {
                    let m = matrix.get(r, c);
                    if m != Complex::ZERO {
                        acc += m * *l;
                    }
                }
                amps[base + offset] = acc;
            }
        }
        base += 1;
    }
}

/// Applies an [`Operation`] (gate + controls) to the state vector in place.
///
/// Controlled operations are applied efficiently: only the amplitudes whose
/// control digits match the activation levels are transformed by the target
/// gate matrix, so the control structure never inflates the matrix size.
///
/// # Panics
///
/// Panics if any qudit index is out of range for the state.
pub fn apply_operation(state: &mut StateVector, op: &Operation) {
    let dim = state.dim();
    let n = state.num_qudits();
    debug_assert_eq!(dim, op.gate().dim(), "dimension mismatch");

    if op.controls().is_empty() {
        apply_matrix(state, op.gate().matrix(), op.targets());
        return;
    }

    let targets = op.targets();
    let k = targets.len();
    let block = dim.pow(k as u32);
    let matrix = op.gate().matrix();

    let t_strides: Vec<usize> = targets.iter().map(|&q| dim.pow((n - 1 - q) as u32)).collect();
    let mut offsets = vec![0usize; block];
    for (b, offset) in offsets.iter_mut().enumerate() {
        let mut rem = b;
        let mut off = 0usize;
        for i in (0..k).rev() {
            let digit = rem % dim;
            rem /= dim;
            off += digit * t_strides[i];
        }
        *offset = off;
    }

    let controls: Vec<(usize, usize, usize)> = op
        .controls()
        .iter()
        .map(|c| (c.qudit, c.level, dim.pow((n - 1 - c.qudit) as usize as u32)))
        .collect();

    let len = state.len();
    let amps = state.amplitudes_mut();
    let mut local = vec![Complex::ZERO; block];

    for base in 0..len {
        // Skip unless all targeted digits are zero (group representative)...
        let mut is_rep = true;
        for (&t, &stride) in targets.iter().zip(t_strides.iter()) {
            let _ = t;
            if (base / stride) % dim != 0 {
                is_rep = false;
                break;
            }
        }
        if !is_rep {
            continue;
        }
        // ...and all controls are in their activation level.
        let mut active = true;
        for &(_, level, stride) in &controls {
            if (base / stride) % dim != level {
                active = false;
                break;
            }
        }
        if !active {
            continue;
        }
        for b in 0..block {
            local[b] = amps[base + offsets[b]];
        }
        for (r, offset) in offsets.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (c, l) in local.iter().enumerate() {
                let m = matrix.get(r, c);
                if m != Complex::ZERO {
                    acc += m * *l;
                }
            }
            amps[base + offset] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{Control, Gate, Operation};
    use qudit_core::gates;

    #[test]
    fn single_qudit_gate_on_basis_state() {
        let mut sv = StateVector::from_basis_state(3, &[0, 1]).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x_plus_1(), &[1]);
        assert!((sv.probability(&[0, 2]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_on_most_significant_qudit() {
        let mut sv = StateVector::from_basis_state(3, &[1, 0, 0]).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x_plus_1(), &[0]);
        assert!((sv.probability(&[2, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_qudit_gate_matches_full_matrix() {
        // Apply CNOT-like controlled increment via matrix on qudits (2,0) of
        // a 3-qutrit register and compare with the flat matrix-vector
        // product on the reordered space.
        let mut sv = StateVector::from_basis_state(3, &[1, 0, 1]).unwrap();
        let g = gates::controlled_matrix(3, 1, &gates::qutrit::x_plus_1());
        apply_matrix(&mut sv, &g, &[2, 0]);
        // Control is qudit 2 (value 1) → target qudit 0 goes 1 → 2.
        assert!((sv.probability(&[2, 0, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_operation_fast_path_matches_full_matrix_path() {
        use qudit_core::random_state;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(11);
        let psi0 = random_state(3, 4, &mut rng).unwrap();

        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_two(1), Control::on_one(3)],
            vec![2],
        )
        .unwrap();

        // Fast path.
        let mut fast = psi0.clone();
        apply_operation(&mut fast, &op);

        // Reference path: build the full controlled matrix over qudits
        // (1, 3, 2) and apply it with apply_matrix.
        let full = op.full_matrix();
        let mut slow = psi0;
        apply_matrix(&mut slow, &full, &[1, 3, 2]);

        assert!(fast.fidelity(&slow) > 1.0 - 1e-10);
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn uncontrolled_operation_applies_gate() {
        let op = Operation::uncontrolled(Gate::h(3), vec![0]).unwrap();
        let mut sv = StateVector::zero_state(3, 1).unwrap();
        apply_operation(&mut sv, &op);
        // H acts on levels 0/1 only: amplitudes 1/√2 on |0> and |1>.
        assert!((sv.probability(&[0]).unwrap() - 0.5).abs() < 1e-10);
        assert!((sv.probability(&[1]).unwrap() - 0.5).abs() < 1e-10);
        assert!(sv.probability(&[2]).unwrap() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_unitaries() {
        use qudit_core::random_state;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut sv = random_state(3, 3, &mut rng).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::h3(), &[1]);
        apply_matrix(
            &mut sv,
            &gates::controlled_matrix(3, 2, &gates::qutrit::x01()),
            &[0, 2],
        );
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qudit() {
        let mut sv = StateVector::zero_state(3, 2).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x01(), &[5]);
    }
}
