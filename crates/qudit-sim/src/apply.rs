//! One-shot gate application: thin wrappers that build an [`ApplyPlan`] and
//! run it, plus the retained naive reference implementation.
//!
//! Hot paths (the simulators, the trajectory Monte Carlo loop) should build
//! plans once and reuse them — see [`crate::kernel::ApplyPlan`] and
//! [`crate::CompiledCircuit`]. These free functions exist for callers that
//! apply a matrix a single time (noise-channel branches, tests, examples).

use crate::kernel::ApplyPlan;
use qudit_circuit::Operation;
use qudit_core::{CMatrix, StateVector};

/// Applies a unitary `matrix` to the listed `qudits` (most significant
/// first) of the state vector, in place.
///
/// # Panics
///
/// Panics if the matrix size does not equal `dim^qudits.len()`, a qudit index
/// is out of range, or a qudit index repeats.
pub fn apply_matrix(state: &mut StateVector, matrix: &CMatrix, qudits: &[usize]) {
    ApplyPlan::for_matrix(state.dim(), state.num_qudits(), matrix, qudits).apply(state);
}

/// [`apply_matrix`], but strictly on the calling thread.
///
/// For callers that are themselves one task of a coarser parallel loop
/// (e.g. noise-channel sampling inside a trajectory trial), where per-gate
/// fan-out would oversubscribe the machine.
///
/// # Panics
///
/// Same conditions as [`apply_matrix`].
pub fn apply_matrix_sequential(state: &mut StateVector, matrix: &CMatrix, qudits: &[usize]) {
    ApplyPlan::for_matrix(state.dim(), state.num_qudits(), matrix, qudits).apply_sequential(state);
}

/// Applies an [`Operation`] (gate + controls) to the state vector in place.
///
/// Controlled operations are applied efficiently: the kernel enumerates only
/// the amplitude groups whose control digits match the activation levels, so
/// the control structure shrinks the work instead of inflating the matrix.
///
/// # Panics
///
/// Panics if any qudit index is out of range for the state.
pub fn apply_operation(state: &mut StateVector, op: &Operation) {
    debug_assert_eq!(state.dim(), op.gate().dim(), "dimension mismatch");
    ApplyPlan::for_operation(state.num_qudits(), op).apply(state);
}

/// The seed implementation, retained verbatim in spirit as the test oracle:
/// it scans **all** `d^n` flat indices and filters for group representatives,
/// which is `d^k`-times more iteration (plus per-index `pow`) than the
/// stride-enumerated kernels. Correct, slow, and easy to audit — the
/// equivalence suite pits every kernel against it.
#[doc(hidden)]
pub mod reference {
    use crate::kernel::block_offsets;
    use qudit_circuit::Operation;
    use qudit_core::{CMatrix, Complex, StateVector};

    /// Naive full-scan version of [`apply_matrix`](super::apply_matrix).
    ///
    /// # Panics
    ///
    /// Same conditions as the fast path.
    pub fn apply_matrix_naive(state: &mut StateVector, matrix: &CMatrix, qudits: &[usize]) {
        apply_naive(state, matrix, qudits, &[]);
    }

    /// Naive full-scan version of [`apply_operation`](super::apply_operation).
    ///
    /// # Panics
    ///
    /// Same conditions as the fast path.
    pub fn apply_operation_naive(state: &mut StateVector, op: &Operation) {
        debug_assert_eq!(state.dim(), op.gate().dim(), "dimension mismatch");
        apply_naive(state, op.gate().matrix(), op.targets(), &op.control_pairs());
    }

    fn apply_naive(
        state: &mut StateVector,
        matrix: &CMatrix,
        targets: &[usize],
        controls: &[(usize, usize)],
    ) {
        let dim = state.dim();
        let n = state.num_qudits();
        let k = targets.len();
        let block = dim.pow(k as u32);
        assert_eq!(matrix.rows(), block, "matrix size must be dim^k");
        assert_eq!(matrix.cols(), block, "matrix size must be dim^k");
        let mut seen = vec![false; n];
        for &q in targets.iter().chain(controls.iter().map(|(q, _)| q)) {
            assert!(q < n, "qudit index {q} out of range");
            assert!(!seen[q], "repeated qudit index {q}");
            seen[q] = true;
        }

        let t_strides: Vec<usize> = targets
            .iter()
            .map(|&q| dim.pow((n - 1 - q) as u32))
            .collect();
        let offsets = block_offsets(dim, &t_strides);
        let c_strides: Vec<(usize, usize)> = controls
            .iter()
            .map(|&(q, level)| (dim.pow((n - 1 - q) as u32), level))
            .collect();

        let len = state.len();
        let amps = state.amplitudes_mut();
        let mut local = vec![Complex::ZERO; block];

        // The deliberate inefficiency: every flat index is visited and
        // tested for being a group representative with active controls.
        for base in 0..len {
            let is_rep = t_strides.iter().all(|&s| (base / s) % dim == 0);
            if !is_rep {
                continue;
            }
            let active = c_strides
                .iter()
                .all(|&(s, level)| (base / s) % dim == level);
            if !active {
                continue;
            }
            for (b, offset) in offsets.iter().enumerate() {
                local[b] = amps[base + offset];
            }
            for (r, offset) in offsets.iter().enumerate() {
                let mut acc = Complex::ZERO;
                for (c, l) in local.iter().enumerate() {
                    let m = matrix.get(r, c);
                    if m != Complex::ZERO {
                        acc += m * *l;
                    }
                }
                amps[base + offset] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{Control, Gate, Operation};
    use qudit_core::gates;

    #[test]
    fn single_qudit_gate_on_basis_state() {
        let mut sv = StateVector::from_basis_state(3, &[0, 1]).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x_plus_1(), &[1]);
        assert!((sv.probability(&[0, 2]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_on_most_significant_qudit() {
        let mut sv = StateVector::from_basis_state(3, &[1, 0, 0]).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x_plus_1(), &[0]);
        assert!((sv.probability(&[2, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_qudit_gate_matches_full_matrix() {
        // Apply CNOT-like controlled increment via matrix on qudits (2,0) of
        // a 3-qutrit register and compare with the flat matrix-vector
        // product on the reordered space.
        let mut sv = StateVector::from_basis_state(3, &[1, 0, 1]).unwrap();
        let g = gates::controlled_matrix(3, 1, &gates::qutrit::x_plus_1());
        apply_matrix(&mut sv, &g, &[2, 0]);
        // Control is qudit 2 (value 1) → target qudit 0 goes 1 → 2.
        assert!((sv.probability(&[2, 0, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_operation_fast_path_matches_full_matrix_path() {
        use qudit_core::random_state;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(11);
        let psi0 = random_state(3, 4, &mut rng).unwrap();

        let op = Operation::new(
            Gate::increment(3),
            vec![Control::on_two(1), Control::on_one(3)],
            vec![2],
        )
        .unwrap();

        // Fast path.
        let mut fast = psi0.clone();
        apply_operation(&mut fast, &op);

        // Reference path: build the full controlled matrix over qudits
        // (1, 3, 2) and apply it with apply_matrix.
        let full = op.full_matrix();
        let mut slow = psi0;
        apply_matrix(&mut slow, &full, &[1, 3, 2]);

        assert!(fast.fidelity(&slow) > 1.0 - 1e-10);
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn uncontrolled_operation_applies_gate() {
        let op = Operation::uncontrolled(Gate::h(3), vec![0]).unwrap();
        let mut sv = StateVector::zero_state(3, 1).unwrap();
        apply_operation(&mut sv, &op);
        // H acts on levels 0/1 only: amplitudes 1/√2 on |0> and |1>.
        assert!((sv.probability(&[0]).unwrap() - 0.5).abs() < 1e-10);
        assert!((sv.probability(&[1]).unwrap() - 0.5).abs() < 1e-10);
        assert!(sv.probability(&[2]).unwrap() < 1e-12);
    }

    #[test]
    fn norm_is_preserved_by_unitaries() {
        use qudit_core::random_state;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut sv = random_state(3, 3, &mut rng).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::h3(), &[1]);
        apply_matrix(
            &mut sv,
            &gates::controlled_matrix(3, 2, &gates::qutrit::x01()),
            &[0, 2],
        );
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qudit() {
        let mut sv = StateVector::zero_state(3, 2).unwrap();
        apply_matrix(&mut sv, &gates::qutrit::x01(), &[5]);
    }

    #[test]
    fn fast_and_naive_agree_on_a_seeded_circuit_fragment() {
        use qudit_core::random_state;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let psi = random_state(3, 5, &mut rng).unwrap();

        let ops = [
            Operation::uncontrolled(Gate::fourier(3), vec![2]).unwrap(),
            Operation::new(Gate::increment(3), vec![Control::on_two(0)], vec![4]).unwrap(),
            Operation::uncontrolled(Gate::swap(3), vec![1, 3]).unwrap(),
            Operation::new(
                Gate::h(3),
                vec![Control::on_one(1), Control::on_zero(3)],
                vec![0],
            )
            .unwrap(),
        ];

        let mut fast = psi.clone();
        let mut slow = psi;
        for op in &ops {
            apply_operation(&mut fast, op);
            reference::apply_operation_naive(&mut slow, op);
        }
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }
}
