//! Ideal (noise-free) circuit simulation.

use crate::kernel::{ApplyPlan, PAR_MIN_WORK};
use qudit_circuit::passes::{self, CompiledIr, PassLevel};
use qudit_circuit::{Circuit, Operation, Schedule};
use qudit_core::{CoreResult, StateVector};
use rayon::prelude::*;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Maximum amplitudes per chunk of a cache-blocked replay segment (1 MiB of
/// complex amplitudes) — big enough that runs of ops are mergeable, small
/// enough that a chunk sits in a typical L2 while several ops sweep it.
const CHUNK_MAX_AMPS: usize = 1 << 16;

/// One stretch of a compiled circuit's replay order.
///
/// Whole-circuit replay is *cache-blocked*: a maximal run of consecutive
/// operations whose support (targets + controls) lies entirely within the
/// trailing (least-significant) qudits acts block-diagonally on contiguous,
/// identical chunks of the amplitude buffer — so the chunk loop can go
/// *outside* the op loop, streaming the state through cache once per
/// segment instead of once per op. Each amplitude sees the same arithmetic
/// in the same order either way, so chunked replay is bit-identical to
/// op-at-a-time replay.
#[derive(Clone, Debug)]
enum Segment {
    /// Ops `range`, applied one at a time via their full-width plans.
    Ops(Range<usize>),
    /// Ops `range`, applied chunk-by-chunk: every op's support lies in the
    /// trailing `span` qudits, so each is compiled as a width-`span` plan
    /// and applied to each `chunk = d^span`-amplitude slice independently.
    Chunked {
        range: Range<usize>,
        chunk: usize,
        plans: Vec<ApplyPlan>,
        /// The whole run folded into one explicit permutation of the chunk
        /// — present iff every op in the run is permutation-class.
        fused_perm: Option<ComposedPerm>,
        /// Total work estimate across all chunks — drives the decision to
        /// fan chunks out across rayon workers.
        work: usize,
    },
}

/// A run of permutation-class ops folded into one explicit permutation of
/// a chunk, stored as run-compressed cycles over chunk-local indices.
///
/// Permutations compose without any floating-point arithmetic, so applying
/// the composition is *exactly* the result of applying the ops one at a
/// time — including for paper constructions like `V·X·V⁻¹` conjugation
/// sandwiches, where most of the composition cancels and the fused
/// permutation moves only a small fraction of the chunk.
#[derive(Clone, Debug)]
struct ComposedPerm {
    /// Concatenated block-cycle positions (chunk-local amp indices).
    pos: Vec<u32>,
    /// End of each cycle within `pos`.
    bounds: Vec<u32>,
    /// Block length of each cycle: cycle positions `c` stand for the amp
    /// blocks `[c, c + len)`, which rotate together.
    lens: Vec<u32>,
    /// Largest block length — sizes the save buffer.
    max_len: usize,
    /// Amps moved per chunk (fixed points cost nothing).
    moved: usize,
}

/// Folds a run of permutation-class plans into the explicit permutation of
/// one `chunk`-amp slice, or `None` if any plan does arithmetic.
///
/// Works by tagging each slot with its own index and replaying the ops on
/// the tags: permutation kernels move amplitudes without mixing them, so
/// the final layout reads off the composed source map exactly (indices
/// below 2⁵³ are exact in f64; `chunk` is far below that).
fn compose_chunk_perm(plans: &[ApplyPlan], chunk: usize) -> Option<ComposedPerm> {
    if !plans.iter().all(|p| p.is_permutation()) {
        return None;
    }
    let mut tagged: Vec<qudit_core::Complex> = (0..chunk)
        .map(|i| qudit_core::Complex::real(i as f64))
        .collect();
    for plan in plans {
        plan.apply_amplitudes(&mut tagged, false);
    }
    // src[j] = chunk-local index whose input amp ends at position j.
    let src: Vec<u32> = tagged.iter().map(|c| c.re as u32).collect();

    let mut visited = vec![false; chunk];
    let mut pos = Vec::new();
    let mut bounds = Vec::new();
    let mut lens = Vec::new();
    let mut max_len = 0usize;
    let mut moved = 0usize;
    let mut cycle = Vec::new();
    for j in 0..chunk {
        if visited[j] || src[j] as usize == j {
            visited[j] = true;
            continue;
        }
        cycle.clear();
        cycle.push(j as u32);
        let mut cur = src[j] as usize;
        while cur != j {
            cycle.push(cur as u32);
            cur = src[cur] as usize;
        }
        // Run compression: grow the block length while every cycle position
        // translates consistently (src[c + t] = src[c] + t) into untouched
        // slots outside the cycle itself.
        let mut len = 1usize;
        'grow: loop {
            for &c in &cycle {
                let c = c as usize;
                if c + len >= chunk
                    || visited[c + len]
                    || src[c + len] as usize != src[c] as usize + len
                    || cycle.contains(&((c + len) as u32))
                {
                    break 'grow;
                }
            }
            len += 1;
        }
        for &c in &cycle {
            for slot in visited.iter_mut().skip(c as usize).take(len) {
                debug_assert!(!*slot, "overlapping cycle blocks");
                *slot = true;
            }
        }
        moved += cycle.len() * len;
        max_len = max_len.max(len);
        pos.extend_from_slice(&cycle);
        bounds.push(pos.len() as u32);
        lens.push(len as u32);
    }
    Some(ComposedPerm {
        pos,
        bounds,
        lens,
        max_len,
        moved,
    })
}

impl ComposedPerm {
    /// Applies the fused permutation to one chunk: each cycle is a forward
    /// block rotation (`out[cᵢ] = in[cᵢ₊₁]`, `out[c_last] = in[c₀]`).
    /// `save` must hold at least `max_len` amps.
    fn apply(&self, amps: &mut [qudit_core::Complex], save: &mut [qudit_core::Complex]) {
        let mut start = 0usize;
        for (ci, &end) in self.bounds.iter().enumerate() {
            let cycle = &self.pos[start..end as usize];
            start = end as usize;
            let len = self.lens[ci] as usize;
            let first = cycle[0] as usize;
            save[..len].copy_from_slice(&amps[first..first + len]);
            for w in cycle.windows(2) {
                let (dst, src) = (w[0] as usize, w[1] as usize);
                amps.copy_within(src..src + len, dst);
            }
            let last = cycle[cycle.len() - 1] as usize;
            amps[last..last + len].copy_from_slice(&save[..len]);
        }
    }
}

/// The number of trailing qudits that cover the op's support, or `None`
/// when the op touches the most significant qudit (span = full width, no
/// chunking possible).
fn trailing_span(width: usize, op: &Operation) -> Option<usize> {
    let min_q = op
        .targets()
        .iter()
        .copied()
        .chain(op.control_pairs().iter().map(|&(q, _)| q))
        .min()?;
    (min_q > 0).then_some(width - min_q)
}

/// Rebuilds `op`'s plan over only the trailing `span` qudits (indices
/// shifted down by `width - span`).
fn span_plan(dim: usize, width: usize, span: usize, op: &Operation) -> ApplyPlan {
    let shift = width - span;
    let targets: Vec<usize> = op.targets().iter().map(|&q| q - shift).collect();
    let controls: Vec<(usize, usize)> = op
        .control_pairs()
        .iter()
        .map(|&(q, l)| (q - shift, l))
        .collect();
    ApplyPlan::new(dim, span, op.gate().matrix(), &targets, &controls)
}

/// Greedily groups consecutive chunkable ops into [`Segment::Chunked`]
/// runs: a group grows while the union of supports still fits a
/// `CHUNK_MAX_AMPS`-bounded trailing span. Groups of one op gain nothing
/// from chunking (one stream either way) and fall back to [`Segment::Ops`].
fn build_segments(circuit: &Circuit) -> Vec<Segment> {
    let dim = circuit.dim();
    let width = circuit.width();
    let chunkable: Vec<Option<usize>> = circuit
        .iter()
        .map(|op| {
            trailing_span(width, op).filter(|&span| {
                dim.checked_pow(span as u32)
                    .is_some_and(|c| c <= CHUNK_MAX_AMPS)
            })
        })
        .collect();

    let mut segments: Vec<Segment> = Vec::new();
    let mut plain_start = 0usize;
    let mut i = 0usize;
    let ops: Vec<&Operation> = circuit.iter().collect();
    while i < ops.len() {
        let Some(mut span) = chunkable[i] else {
            i += 1;
            continue;
        };
        // Grow the group while the merged span stays under the cap.
        let mut j = i + 1;
        while j < ops.len() {
            let Some(s) = chunkable[j] else { break };
            let merged = span.max(s);
            if dim.pow(merged as u32) > CHUNK_MAX_AMPS {
                break;
            }
            span = merged;
            j += 1;
        }
        if j - i >= 2 {
            if plain_start < i {
                segments.push(Segment::Ops(plain_start..i));
            }
            let plans: Vec<ApplyPlan> = ops[i..j]
                .iter()
                .map(|op| span_plan(dim, width, span, op))
                .collect();
            let chunk = dim.pow(span as u32);
            let chunks = dim.pow((width - span) as u32);
            let fused_perm = compose_chunk_perm(&plans, chunk);
            let work = match &fused_perm {
                Some(cp) => cp.moved.saturating_mul(chunks),
                None => plans
                    .iter()
                    .map(|p| p.work_estimate())
                    .sum::<usize>()
                    .saturating_mul(chunks),
            };
            segments.push(Segment::Chunked {
                range: i..j,
                chunk,
                plans,
                fused_perm,
                work,
            });
            plain_start = j;
        }
        i = j.max(i + 1);
    }
    if plain_start < ops.len() {
        segments.push(Segment::Ops(plain_start..ops.len()));
    }
    segments
}

/// A circuit compiled into one [`ApplyPlan`] per operation, in program
/// order.
///
/// Compiling hoists all per-operation precomputation (strides, gather
/// offsets, control masks, kernel selection) out of the run loop; a compiled
/// circuit is immutable and [`Sync`], so the trajectory simulator shares one
/// across all its Monte Carlo trials.
///
/// Plans are index-aligned with the operation list they were compiled from:
/// `plan(i)` applies operation `i`. Whole-circuit replays should compile
/// from the *pass-transformed* IR ([`CompiledCircuit::compile_ir`] or
/// [`Simulator::compile_optimized`]) so fused/cancelled gates never reach
/// the kernels; compile from a raw [`Circuit`] only when an externally held
/// [`Schedule`] must keep indexing the original op list.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    dim: usize,
    width: usize,
    plans: Vec<Arc<ApplyPlan>>,
    /// Replay order for [`CompiledCircuit::run`], covering `0..plans.len()`
    /// — cache-blocked where consecutive ops allow it.
    segments: Vec<Segment>,
}

impl CompiledCircuit {
    /// Compiles every operation of the circuit exactly as given (no pass
    /// pipeline) — the index-aligned primitive.
    pub fn compile(circuit: &Circuit) -> Self {
        let plans = circuit
            .iter()
            .map(|op| Arc::new(ApplyPlan::for_operation(circuit.width(), op)))
            .collect();
        CompiledCircuit {
            dim: circuit.dim(),
            width: circuit.width(),
            plans,
            segments: build_segments(circuit),
        }
    }

    /// Compiles the pass-transformed IR: one plan per post-pass operation,
    /// index-aligned with [`CompiledIr::schedule`].
    pub fn compile_ir(ir: &CompiledIr) -> Self {
        CompiledCircuit::compile(ir.circuit())
    }

    /// The qudit dimension of the source circuit.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The register width of the source circuit.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The plans, in operation order.
    pub fn plans(&self) -> &[Arc<ApplyPlan>] {
        &self.plans
    }

    /// The plan of operation `op_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `op_idx` is out of range.
    pub fn plan(&self, op_idx: usize) -> &ApplyPlan {
        &self.plans[op_idx]
    }

    /// Runs the whole compiled circuit on `state`, consuming and returning
    /// it.
    ///
    /// Replay is cache-blocked: runs of consecutive ops supported on the
    /// trailing qudits are applied chunk-by-chunk (the state streams
    /// through cache once per run of ops, not once per op). The result is
    /// bit-identical to op-at-a-time replay.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape does not match the circuit.
    pub fn run(&self, state: StateVector) -> StateVector {
        self.run_inner(state, true)
    }

    /// Like [`CompiledCircuit::run`] but every gate is applied on the
    /// calling thread — for callers that already parallelise at a coarser
    /// granularity (one trajectory trial per core), where per-gate fan-out
    /// would oversubscribe the machine.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape does not match the circuit.
    pub fn run_sequential(&self, state: StateVector) -> StateVector {
        self.run_inner(state, false)
    }

    fn run_inner(&self, mut state: StateVector, may_parallelize: bool) -> StateVector {
        assert_eq!(state.dim(), self.dim, "dimension mismatch");
        assert_eq!(state.num_qudits(), self.width, "width mismatch");
        for segment in &self.segments {
            match segment {
                Segment::Ops(range) => {
                    for plan in &self.plans[range.clone()] {
                        if may_parallelize {
                            plan.apply(&mut state);
                        } else {
                            plan.apply_sequential(&mut state);
                        }
                    }
                }
                Segment::Chunked {
                    chunk,
                    plans,
                    fused_perm,
                    work,
                    ..
                } => {
                    let amps = state.amplitudes_mut();
                    let run_chunk = |slice: &mut [qudit_core::Complex]| match fused_perm {
                        Some(cp) => {
                            let mut save = vec![qudit_core::Complex::ZERO; cp.max_len];
                            cp.apply(slice, &mut save);
                        }
                        None => {
                            for plan in plans {
                                plan.apply_amplitudes(slice, false);
                            }
                        }
                    };
                    // Chunks are independent (every op acts block-diagonally
                    // on them), so fanning out cannot reorder arithmetic —
                    // the thread count never changes results.
                    if may_parallelize && *work >= PAR_MIN_WORK && rayon::current_num_threads() > 1
                    {
                        amps.par_chunks_mut(*chunk).for_each(run_chunk);
                    } else {
                        for slice in amps.chunks_exact_mut(*chunk) {
                            run_chunk(slice);
                        }
                    }
                }
            }
        }
        state
    }

    /// The replay segmentation as `(op count, chunk amplitudes)` pairs —
    /// chunk = 0 for op-at-a-time stretches. Diagnostic, used by the kernel
    /// microbench.
    pub fn replay_segments(&self) -> Vec<(usize, usize)> {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Ops(r) => (r.len(), 0),
                Segment::Chunked { range, chunk, .. } => (range.len(), *chunk),
            })
            .collect()
    }
}

/// Cache key for one (gate structure, register width, targets, controls)
/// combination. The matrix is keyed by *contents* (bit patterns of its
/// entries) plus its arity, so structurally-equal gates built by separate
/// constructor calls — e.g. the mirrored compute/uncompute halves of the
/// paper's circuits rebuilding `X+1` — share one plan. Negative zero is
/// normalised so `0.0` and `-0.0` entries produce the same key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    dim: usize,
    rows: usize,
    matrix_bits: Vec<u64>,
    width: usize,
    targets: Vec<usize>,
    controls: Vec<(usize, usize)>,
}

impl PlanKey {
    fn for_operation(width: usize, op: &Operation) -> Self {
        let matrix = op.gate().matrix();
        let bit = |x: f64| if x == 0.0 { 0 } else { x.to_bits() };
        PlanKey {
            dim: op.gate().dim(),
            rows: matrix.rows(),
            matrix_bits: matrix
                .as_slice()
                .iter()
                .flat_map(|z| [bit(z.re), bit(z.im)])
                .collect(),
            width,
            targets: op.targets().to_vec(),
            controls: op.control_pairs(),
        }
    }
}

/// A dense state-vector simulator for qudit circuits.
///
/// The simulator caches one [`ApplyPlan`] per distinct (gate, qudits)
/// combination it encounters, so re-running the same circuit — or circuits
/// sharing gates — skips all per-operation precomputation after the first
/// pass.
///
/// # Examples
///
/// ```
/// use qudit_circuit::{Circuit, Control, Gate};
/// use qudit_sim::Simulator;
///
/// let mut c = Circuit::new(3, 2);
/// c.push_gate(Gate::x(3), &[0])?;
/// c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
///
/// let out = Simulator::new().run(&c)?;
/// assert!((out.probability(&[1, 1]).unwrap() - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Simulator {
    cache: Mutex<HashMap<PlanKey, Arc<ApplyPlan>>>,
}

/// Plan-cache capacity. Keys are structural, so re-built gates re-hit; the
/// cap bounds growth from genuinely distinct matrices (e.g. the continuum
/// of `X^t` roots in the qubit baselines). Plans are cheap to rebuild, so
/// eviction is a wholesale clear rather than bookkeeping.
const PLAN_CACHE_CAP: usize = 1024;

impl Simulator {
    /// Creates a simulator with an empty plan cache.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Returns the cached plan for `op` on a `width`-qudit register,
    /// building and caching it on first sight.
    fn plan_for(&self, width: usize, op: &Operation) -> Arc<ApplyPlan> {
        let key = PlanKey::for_operation(width, op);
        let mut cache = self.cache.lock().expect("plan cache poisoned");
        if let Some(cached) = cache.get(&key) {
            return Arc::clone(cached);
        }
        let plan = Arc::new(ApplyPlan::for_operation(width, op));
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&plan));
        plan
    }

    /// The number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("plan cache poisoned").len()
    }

    /// Compiles a circuit through this simulator's plan cache, exactly as
    /// given (no pass pipeline).
    ///
    /// Prefer this over [`CompiledCircuit::compile`] when several circuits
    /// share gates: shared operations compile once. Use
    /// [`Simulator::compile_optimized`] for whole-circuit replays, where
    /// the pass pipeline should run first.
    pub fn compile(&self, circuit: &Circuit) -> CompiledCircuit {
        CompiledCircuit {
            dim: circuit.dim(),
            width: circuit.width(),
            plans: circuit
                .iter()
                .map(|op| self.plan_for(circuit.width(), op))
                .collect(),
            segments: build_segments(circuit),
        }
    }

    /// Runs the pass pipeline at `level` over the circuit, then compiles
    /// the transformed IR through this simulator's plan cache. Returns the
    /// compiled circuit together with the pipeline output (transformed
    /// op list, post-pass schedule, pre/post resource report).
    pub fn compile_optimized(
        &self,
        circuit: &Circuit,
        level: PassLevel,
    ) -> (CompiledCircuit, CompiledIr) {
        let ir = passes::compile(circuit, level);
        (self.compile(ir.circuit()), ir)
    }

    /// Runs the circuit on the all-zeros input state.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit's dimension is invalid (propagated
    /// from state construction).
    pub fn run(&self, circuit: &Circuit) -> CoreResult<StateVector> {
        let state = StateVector::zero_state(circuit.dim(), circuit.width())?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit on a caller-supplied initial state, consuming and
    /// returning it.
    ///
    /// Noise-free evolution compiles through the full
    /// [`PassLevel::Ideal`] pipeline: adjacent inverse pairs cancel,
    /// adjacent single-qudit gates fuse, and the kernels replay the
    /// transformed circuit — same unitary, fewer kernel invocations.
    ///
    /// # Panics
    ///
    /// Panics if the state's dimension or width does not match the circuit.
    pub fn run_with_state(&self, circuit: &Circuit, state: StateVector) -> StateVector {
        // Resolve the whole transformed circuit against the cache up
        // front: one key build + lock round-trip per op per *compile*,
        // zero per re-run of an op that is already cached.
        let (compiled, _) = self.compile_optimized(circuit, PassLevel::Ideal);
        compiled.run(state)
    }

    /// Runs the circuit on a basis-state input given by digits.
    ///
    /// # Errors
    ///
    /// Returns an error if the digits are invalid for the circuit dimension.
    pub fn run_on_basis_state(
        &self,
        circuit: &Circuit,
        digits: &[usize],
    ) -> CoreResult<StateVector> {
        let state = StateVector::from_basis_state(circuit.dim(), digits)?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit moment-by-moment, invoking `observer` after each
    /// moment. This is the hook the trajectory noise simulator builds on.
    ///
    /// The caller owns the schedule, so the circuit is compiled exactly as
    /// given (`schedule`'s op indices must keep referring to `circuit`'s op
    /// list); callers wanting the pass pipeline should transform the
    /// circuit first (`qudit_circuit::passes::compile`) and pass the
    /// post-pass circuit + schedule here.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn run_moments<F>(
        &self,
        circuit: &Circuit,
        schedule: &Schedule,
        mut state: StateVector,
        mut observer: F,
    ) -> StateVector
    where
        F: FnMut(usize, &mut StateVector),
    {
        assert_eq!(state.dim(), circuit.dim(), "dimension mismatch");
        assert_eq!(state.num_qudits(), circuit.width(), "width mismatch");
        let compiled = self.compile(circuit);
        for (moment_idx, op_indices) in schedule.iter() {
            for &op_idx in op_indices {
                compiled.plan(op_idx).apply(&mut state);
            }
            observer(moment_idx, &mut state);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{classical, Control, Gate};
    use qudit_core::random_qubit_subspace_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn zero_input_stays_zero_through_toffoli() {
        let out = Simulator::new().run(&toffoli_fig4()).unwrap();
        assert!((out.probability(&[0, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_vector_agrees_with_classical_simulation_on_all_inputs() {
        let c = toffoli_fig4();
        let sim = Simulator::new();
        for input in classical::all_basis_states(3, 3) {
            let expected = classical::simulate_classical(&c, &input).unwrap();
            let out = sim.run_on_basis_state(&c, &input).unwrap();
            assert!(
                (out.probability(&expected).unwrap() - 1.0).abs() < 1e-10,
                "mismatch for input {input:?}"
            );
        }
    }

    #[test]
    fn superposition_input_entangles_correctly() {
        // Put the controls in (|00>+|11>)/√2 ⊗ |0>: after the Toffoli the
        // target should flip only on the |11> branch.
        let c = toffoli_fig4();
        let sim = Simulator::new();
        let mut init = StateVector::zero_state(3, 3).unwrap();
        let amp = qudit_core::Complex::real(1.0 / 2.0_f64.sqrt());
        init.amplitudes_mut()[0] = amp; // |000>
        init.amplitudes_mut()[StateVector::encode_digits(3, &[1, 1, 0]).unwrap()] = amp;
        let out = sim.run_with_state(&c, init);
        assert!((out.probability(&[0, 0, 0]).unwrap() - 0.5).abs() < 1e-10);
        assert!((out.probability(&[1, 1, 1]).unwrap() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn circuit_inverse_undoes_circuit_on_random_state() {
        let c = toffoli_fig4();
        let mut both = c.clone();
        both.extend(&c.inverse()).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let psi = random_qubit_subspace_state(3, 3, &mut rng).unwrap();
        let out = Simulator::new().run_with_state(&both, psi.clone());
        assert!(out.fidelity(&psi) > 1.0 - 1e-10);
    }

    #[test]
    fn run_moments_observer_sees_every_moment() {
        let c = toffoli_fig4();
        let schedule = Schedule::asap(&c);
        let mut seen = Vec::new();
        let state = StateVector::zero_state(3, 3).unwrap();
        let _ = Simulator::new().run_moments(&c, &schedule, state, |m, _| seen.push(m));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn plan_cache_deduplicates_repeated_operations() {
        // Figure 4's circuit re-runs share all plans; the increment and
        // decrement are distinct gates, X is a third, so 3 plans total.
        let c = toffoli_fig4();
        let sim = Simulator::new();
        sim.run(&c).unwrap();
        let after_first = sim.cached_plans();
        assert_eq!(after_first, 3);
        sim.run(&c).unwrap();
        sim.run(&c).unwrap();
        assert_eq!(
            sim.cached_plans(),
            after_first,
            "re-runs must not grow the cache"
        );
    }

    #[test]
    fn structurally_equal_gates_share_one_plan() {
        // Separate constructor calls build separate matrix allocations, but
        // the cache keys on contents, so they all dedup to a single plan.
        let sim = Simulator::new();
        for _ in 0..20 {
            let mut c = Circuit::new(3, 2);
            c.push_gate(Gate::increment(3), &[0]).unwrap();
            sim.run(&c).unwrap();
        }
        assert_eq!(sim.cached_plans(), 1);
    }

    #[test]
    fn plan_cache_is_bounded() {
        // Genuinely distinct matrices (a continuum of X^t roots) can never
        // re-hit; the cache must stay capped regardless.
        let sim = Simulator::new();
        for i in 0..(super::PLAN_CACHE_CAP + 100) {
            let mut c = Circuit::new(3, 2);
            c.push_gate(Gate::x_pow(3, (i + 1) as f64 * 1e-6), &[0])
                .unwrap();
            sim.run(&c).unwrap();
        }
        assert!(sim.cached_plans() <= super::PLAN_CACHE_CAP);
    }

    /// A circuit whose middle stretch is supported on trailing qudits, so
    /// the segment builder emits a chunked run bracketed by plain ops.
    fn chunkable_circuit(width: usize) -> Circuit {
        let mut c = Circuit::new(3, width);
        c.push_gate(Gate::fourier(3), &[0]).unwrap(); // touches q0: never chunked
        c.push_gate(Gate::fourier(3), &[width - 1]).unwrap();
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(width - 3)],
            &[width - 2],
        )
        .unwrap();
        c.push_gate(Gate::swap(3), &[width - 2, width - 1]).unwrap();
        c.push_gate(Gate::clock(3), &[width - 2]).unwrap();
        c.push_gate(Gate::h(3), &[0]).unwrap(); // touches q0 again
        c
    }

    #[test]
    fn segment_builder_blocks_the_trailing_support_run() {
        let c = chunkable_circuit(7);
        let compiled = CompiledCircuit::compile(&c);
        let segments = compiled.replay_segments();
        // [op0] plain, [ops1..5) chunked at span 3 (27 amps), [op5] plain.
        assert_eq!(segments, vec![(1, 0), (4, 27), (1, 0)]);
    }

    #[test]
    fn chunked_replay_is_bit_identical_to_op_at_a_time() {
        let c = chunkable_circuit(7);
        let compiled = CompiledCircuit::compile(&c);
        assert!(
            compiled
                .replay_segments()
                .iter()
                .any(|&(_, chunk)| chunk > 0),
            "test must exercise the chunked path"
        );
        let mut rng = StdRng::seed_from_u64(8);
        let psi = random_qubit_subspace_state(3, 7, &mut rng).unwrap();
        let mut reference = psi.clone();
        for plan in compiled.plans() {
            plan.apply_sequential(&mut reference);
        }
        let chunked = compiled.run_sequential(psi.clone());
        let parallel = compiled.run(psi);
        for ((r, c), p) in reference
            .amplitudes()
            .iter()
            .zip(chunked.amplitudes())
            .zip(parallel.amplitudes())
        {
            assert_eq!(r, c, "sequential chunked replay must be bit-identical");
            assert_eq!(r, p, "parallel chunked replay must be bit-identical");
        }
    }

    #[test]
    fn single_chunkable_ops_stay_unblocked() {
        // One chunkable op between unchunkable neighbours gains nothing
        // from chunking and must stay in a plain segment.
        let mut c = Circuit::new(3, 5);
        c.push_gate(Gate::fourier(3), &[0]).unwrap();
        c.push_gate(Gate::clock(3), &[4]).unwrap();
        c.push_gate(Gate::fourier(3), &[0]).unwrap();
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.replay_segments(), vec![(3, 0)]);
    }

    #[test]
    fn compiled_circuit_matches_simulator_run() {
        let c = toffoli_fig4();
        let sim = Simulator::new();
        let compiled = sim.compile(&c);
        for input in classical::all_basis_states(3, 3) {
            let a = sim.run_on_basis_state(&c, &input).unwrap();
            let b = compiled.run(StateVector::from_basis_state(3, &input).unwrap());
            for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
                assert!(x.approx_eq(*y, 1e-12));
            }
        }
    }
}
