//! Ideal (noise-free) circuit simulation.

use crate::apply::apply_operation;
use qudit_circuit::{Circuit, Schedule};
use qudit_core::{CoreResult, StateVector};

/// A dense state-vector simulator for qudit circuits.
///
/// # Examples
///
/// ```
/// use qudit_circuit::{Circuit, Control, Gate};
/// use qudit_sim::Simulator;
///
/// let mut c = Circuit::new(3, 2);
/// c.push_gate(Gate::x(3), &[0])?;
/// c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
///
/// let out = Simulator::new().run(&c)?;
/// assert!((out.probability(&[1, 1]).unwrap() - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator {
    _private: (),
}

impl Simulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        Simulator { _private: () }
    }

    /// Runs the circuit on the all-zeros input state.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit's dimension is invalid (propagated
    /// from state construction).
    pub fn run(&self, circuit: &Circuit) -> CoreResult<StateVector> {
        let state = StateVector::zero_state(circuit.dim(), circuit.width())?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit on a caller-supplied initial state, consuming and
    /// returning it.
    ///
    /// # Panics
    ///
    /// Panics if the state's dimension or width does not match the circuit.
    pub fn run_with_state(&self, circuit: &Circuit, mut state: StateVector) -> StateVector {
        assert_eq!(state.dim(), circuit.dim(), "dimension mismatch");
        assert_eq!(state.num_qudits(), circuit.width(), "width mismatch");
        for op in circuit.iter() {
            apply_operation(&mut state, op);
        }
        state
    }

    /// Runs the circuit on a basis-state input given by digits.
    ///
    /// # Errors
    ///
    /// Returns an error if the digits are invalid for the circuit dimension.
    pub fn run_on_basis_state(
        &self,
        circuit: &Circuit,
        digits: &[usize],
    ) -> CoreResult<StateVector> {
        let state = StateVector::from_basis_state(circuit.dim(), digits)?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit moment-by-moment, invoking `observer` after each
    /// moment. This is the hook the trajectory noise simulator builds on.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn run_moments<F>(
        &self,
        circuit: &Circuit,
        schedule: &Schedule,
        mut state: StateVector,
        mut observer: F,
    ) -> StateVector
    where
        F: FnMut(usize, &mut StateVector),
    {
        assert_eq!(state.dim(), circuit.dim(), "dimension mismatch");
        assert_eq!(state.num_qudits(), circuit.width(), "width mismatch");
        for (moment_idx, op_indices) in schedule.iter() {
            for &op_idx in op_indices {
                apply_operation(&mut state, &circuit.operations()[op_idx]);
            }
            observer(moment_idx, &mut state);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{classical, Control, Gate};
    use qudit_core::random_qubit_subspace_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn zero_input_stays_zero_through_toffoli() {
        let out = Simulator::new().run(&toffoli_fig4()).unwrap();
        assert!((out.probability(&[0, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_vector_agrees_with_classical_simulation_on_all_inputs() {
        let c = toffoli_fig4();
        let sim = Simulator::new();
        for input in classical::all_basis_states(3, 3) {
            let expected = classical::simulate_classical(&c, &input).unwrap();
            let out = sim.run_on_basis_state(&c, &input).unwrap();
            assert!(
                (out.probability(&expected).unwrap() - 1.0).abs() < 1e-10,
                "mismatch for input {input:?}"
            );
        }
    }

    #[test]
    fn superposition_input_entangles_correctly() {
        // Put the controls in (|00>+|11>)/√2 ⊗ |0>: after the Toffoli the
        // target should flip only on the |11> branch.
        let c = toffoli_fig4();
        let sim = Simulator::new();
        let mut init = StateVector::zero_state(3, 3).unwrap();
        let amp = qudit_core::Complex::real(1.0 / 2.0_f64.sqrt());
        init.amplitudes_mut()[0] = amp; // |000>
        init.amplitudes_mut()[StateVector::encode_digits(3, &[1, 1, 0]).unwrap()] = amp;
        let out = sim.run_with_state(&c, init);
        assert!((out.probability(&[0, 0, 0]).unwrap() - 0.5).abs() < 1e-10);
        assert!((out.probability(&[1, 1, 1]).unwrap() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn circuit_inverse_undoes_circuit_on_random_state() {
        let c = toffoli_fig4();
        let mut both = c.clone();
        both.extend(&c.inverse()).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let psi = random_qubit_subspace_state(3, 3, &mut rng).unwrap();
        let out = Simulator::new().run_with_state(&both, psi.clone());
        assert!(out.fidelity(&psi) > 1.0 - 1e-10);
    }

    #[test]
    fn run_moments_observer_sees_every_moment() {
        let c = toffoli_fig4();
        let schedule = Schedule::asap(&c);
        let mut seen = Vec::new();
        let state = StateVector::zero_state(3, 3).unwrap();
        let _ = Simulator::new().run_moments(&c, &schedule, state, |m, _| seen.push(m));
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
