//! Ideal (noise-free) circuit simulation.

use crate::kernel::ApplyPlan;
use qudit_circuit::passes::{self, CompiledIr, PassLevel};
use qudit_circuit::{Circuit, Operation, Schedule};
use qudit_core::{CoreResult, StateVector};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A circuit compiled into one [`ApplyPlan`] per operation, in program
/// order.
///
/// Compiling hoists all per-operation precomputation (strides, gather
/// offsets, control masks, kernel selection) out of the run loop; a compiled
/// circuit is immutable and [`Sync`], so the trajectory simulator shares one
/// across all its Monte Carlo trials.
///
/// Plans are index-aligned with the operation list they were compiled from:
/// `plan(i)` applies operation `i`. Whole-circuit replays should compile
/// from the *pass-transformed* IR ([`CompiledCircuit::compile_ir`] or
/// [`Simulator::compile_optimized`]) so fused/cancelled gates never reach
/// the kernels; compile from a raw [`Circuit`] only when an externally held
/// [`Schedule`] must keep indexing the original op list.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    dim: usize,
    width: usize,
    plans: Vec<Arc<ApplyPlan>>,
}

impl CompiledCircuit {
    /// Compiles every operation of the circuit exactly as given (no pass
    /// pipeline) — the index-aligned primitive.
    pub fn compile(circuit: &Circuit) -> Self {
        CompiledCircuit {
            dim: circuit.dim(),
            width: circuit.width(),
            plans: circuit
                .iter()
                .map(|op| Arc::new(ApplyPlan::for_operation(circuit.width(), op)))
                .collect(),
        }
    }

    /// Compiles the pass-transformed IR: one plan per post-pass operation,
    /// index-aligned with [`CompiledIr::schedule`].
    pub fn compile_ir(ir: &CompiledIr) -> Self {
        CompiledCircuit::compile(ir.circuit())
    }

    /// The qudit dimension of the source circuit.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The register width of the source circuit.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The plans, in operation order.
    pub fn plans(&self) -> &[Arc<ApplyPlan>] {
        &self.plans
    }

    /// The plan of operation `op_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `op_idx` is out of range.
    pub fn plan(&self, op_idx: usize) -> &ApplyPlan {
        &self.plans[op_idx]
    }

    /// Runs the whole compiled circuit on `state`, consuming and returning
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape does not match the circuit.
    pub fn run(&self, mut state: StateVector) -> StateVector {
        assert_eq!(state.dim(), self.dim, "dimension mismatch");
        assert_eq!(state.num_qudits(), self.width, "width mismatch");
        for plan in &self.plans {
            plan.apply(&mut state);
        }
        state
    }

    /// Like [`CompiledCircuit::run`] but every gate is applied on the
    /// calling thread — for callers that already parallelise at a coarser
    /// granularity (one trajectory trial per core), where per-gate fan-out
    /// would oversubscribe the machine.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape does not match the circuit.
    pub fn run_sequential(&self, mut state: StateVector) -> StateVector {
        assert_eq!(state.dim(), self.dim, "dimension mismatch");
        assert_eq!(state.num_qudits(), self.width, "width mismatch");
        for plan in &self.plans {
            plan.apply_sequential(&mut state);
        }
        state
    }
}

/// Cache key for one (gate structure, register width, targets, controls)
/// combination. The matrix is keyed by *contents* (bit patterns of its
/// entries) plus its arity, so structurally-equal gates built by separate
/// constructor calls — e.g. the mirrored compute/uncompute halves of the
/// paper's circuits rebuilding `X+1` — share one plan. Negative zero is
/// normalised so `0.0` and `-0.0` entries produce the same key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    dim: usize,
    rows: usize,
    matrix_bits: Vec<u64>,
    width: usize,
    targets: Vec<usize>,
    controls: Vec<(usize, usize)>,
}

impl PlanKey {
    fn for_operation(width: usize, op: &Operation) -> Self {
        let matrix = op.gate().matrix();
        let bit = |x: f64| if x == 0.0 { 0 } else { x.to_bits() };
        PlanKey {
            dim: op.gate().dim(),
            rows: matrix.rows(),
            matrix_bits: matrix
                .as_slice()
                .iter()
                .flat_map(|z| [bit(z.re), bit(z.im)])
                .collect(),
            width,
            targets: op.targets().to_vec(),
            controls: op.control_pairs(),
        }
    }
}

/// A dense state-vector simulator for qudit circuits.
///
/// The simulator caches one [`ApplyPlan`] per distinct (gate, qudits)
/// combination it encounters, so re-running the same circuit — or circuits
/// sharing gates — skips all per-operation precomputation after the first
/// pass.
///
/// # Examples
///
/// ```
/// use qudit_circuit::{Circuit, Control, Gate};
/// use qudit_sim::Simulator;
///
/// let mut c = Circuit::new(3, 2);
/// c.push_gate(Gate::x(3), &[0])?;
/// c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
///
/// let out = Simulator::new().run(&c)?;
/// assert!((out.probability(&[1, 1]).unwrap() - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Simulator {
    cache: Mutex<HashMap<PlanKey, Arc<ApplyPlan>>>,
}

/// Plan-cache capacity. Keys are structural, so re-built gates re-hit; the
/// cap bounds growth from genuinely distinct matrices (e.g. the continuum
/// of `X^t` roots in the qubit baselines). Plans are cheap to rebuild, so
/// eviction is a wholesale clear rather than bookkeeping.
const PLAN_CACHE_CAP: usize = 1024;

impl Simulator {
    /// Creates a simulator with an empty plan cache.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Returns the cached plan for `op` on a `width`-qudit register,
    /// building and caching it on first sight.
    fn plan_for(&self, width: usize, op: &Operation) -> Arc<ApplyPlan> {
        let key = PlanKey::for_operation(width, op);
        let mut cache = self.cache.lock().expect("plan cache poisoned");
        if let Some(cached) = cache.get(&key) {
            return Arc::clone(cached);
        }
        let plan = Arc::new(ApplyPlan::for_operation(width, op));
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&plan));
        plan
    }

    /// The number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("plan cache poisoned").len()
    }

    /// Compiles a circuit through this simulator's plan cache, exactly as
    /// given (no pass pipeline).
    ///
    /// Prefer this over [`CompiledCircuit::compile`] when several circuits
    /// share gates: shared operations compile once. Use
    /// [`Simulator::compile_optimized`] for whole-circuit replays, where
    /// the pass pipeline should run first.
    pub fn compile(&self, circuit: &Circuit) -> CompiledCircuit {
        CompiledCircuit {
            dim: circuit.dim(),
            width: circuit.width(),
            plans: circuit
                .iter()
                .map(|op| self.plan_for(circuit.width(), op))
                .collect(),
        }
    }

    /// Runs the pass pipeline at `level` over the circuit, then compiles
    /// the transformed IR through this simulator's plan cache. Returns the
    /// compiled circuit together with the pipeline output (transformed
    /// op list, post-pass schedule, pre/post resource report).
    pub fn compile_optimized(
        &self,
        circuit: &Circuit,
        level: PassLevel,
    ) -> (CompiledCircuit, CompiledIr) {
        let ir = passes::compile(circuit, level);
        (self.compile(ir.circuit()), ir)
    }

    /// Runs the circuit on the all-zeros input state.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit's dimension is invalid (propagated
    /// from state construction).
    pub fn run(&self, circuit: &Circuit) -> CoreResult<StateVector> {
        let state = StateVector::zero_state(circuit.dim(), circuit.width())?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit on a caller-supplied initial state, consuming and
    /// returning it.
    ///
    /// Noise-free evolution compiles through the full
    /// [`PassLevel::Ideal`] pipeline: adjacent inverse pairs cancel,
    /// adjacent single-qudit gates fuse, and the kernels replay the
    /// transformed circuit — same unitary, fewer kernel invocations.
    ///
    /// # Panics
    ///
    /// Panics if the state's dimension or width does not match the circuit.
    pub fn run_with_state(&self, circuit: &Circuit, state: StateVector) -> StateVector {
        // Resolve the whole transformed circuit against the cache up
        // front: one key build + lock round-trip per op per *compile*,
        // zero per re-run of an op that is already cached.
        let (compiled, _) = self.compile_optimized(circuit, PassLevel::Ideal);
        compiled.run(state)
    }

    /// Runs the circuit on a basis-state input given by digits.
    ///
    /// # Errors
    ///
    /// Returns an error if the digits are invalid for the circuit dimension.
    pub fn run_on_basis_state(
        &self,
        circuit: &Circuit,
        digits: &[usize],
    ) -> CoreResult<StateVector> {
        let state = StateVector::from_basis_state(circuit.dim(), digits)?;
        Ok(self.run_with_state(circuit, state))
    }

    /// Runs the circuit moment-by-moment, invoking `observer` after each
    /// moment. This is the hook the trajectory noise simulator builds on.
    ///
    /// The caller owns the schedule, so the circuit is compiled exactly as
    /// given (`schedule`'s op indices must keep referring to `circuit`'s op
    /// list); callers wanting the pass pipeline should transform the
    /// circuit first (`qudit_circuit::passes::compile`) and pass the
    /// post-pass circuit + schedule here.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn run_moments<F>(
        &self,
        circuit: &Circuit,
        schedule: &Schedule,
        mut state: StateVector,
        mut observer: F,
    ) -> StateVector
    where
        F: FnMut(usize, &mut StateVector),
    {
        assert_eq!(state.dim(), circuit.dim(), "dimension mismatch");
        assert_eq!(state.num_qudits(), circuit.width(), "width mismatch");
        let compiled = self.compile(circuit);
        for (moment_idx, op_indices) in schedule.iter() {
            for &op_idx in op_indices {
                compiled.plan(op_idx).apply(&mut state);
            }
            observer(moment_idx, &mut state);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{classical, Control, Gate};
    use qudit_core::random_qubit_subspace_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn zero_input_stays_zero_through_toffoli() {
        let out = Simulator::new().run(&toffoli_fig4()).unwrap();
        assert!((out.probability(&[0, 0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_vector_agrees_with_classical_simulation_on_all_inputs() {
        let c = toffoli_fig4();
        let sim = Simulator::new();
        for input in classical::all_basis_states(3, 3) {
            let expected = classical::simulate_classical(&c, &input).unwrap();
            let out = sim.run_on_basis_state(&c, &input).unwrap();
            assert!(
                (out.probability(&expected).unwrap() - 1.0).abs() < 1e-10,
                "mismatch for input {input:?}"
            );
        }
    }

    #[test]
    fn superposition_input_entangles_correctly() {
        // Put the controls in (|00>+|11>)/√2 ⊗ |0>: after the Toffoli the
        // target should flip only on the |11> branch.
        let c = toffoli_fig4();
        let sim = Simulator::new();
        let mut init = StateVector::zero_state(3, 3).unwrap();
        let amp = qudit_core::Complex::real(1.0 / 2.0_f64.sqrt());
        init.amplitudes_mut()[0] = amp; // |000>
        init.amplitudes_mut()[StateVector::encode_digits(3, &[1, 1, 0]).unwrap()] = amp;
        let out = sim.run_with_state(&c, init);
        assert!((out.probability(&[0, 0, 0]).unwrap() - 0.5).abs() < 1e-10);
        assert!((out.probability(&[1, 1, 1]).unwrap() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn circuit_inverse_undoes_circuit_on_random_state() {
        let c = toffoli_fig4();
        let mut both = c.clone();
        both.extend(&c.inverse()).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let psi = random_qubit_subspace_state(3, 3, &mut rng).unwrap();
        let out = Simulator::new().run_with_state(&both, psi.clone());
        assert!(out.fidelity(&psi) > 1.0 - 1e-10);
    }

    #[test]
    fn run_moments_observer_sees_every_moment() {
        let c = toffoli_fig4();
        let schedule = Schedule::asap(&c);
        let mut seen = Vec::new();
        let state = StateVector::zero_state(3, 3).unwrap();
        let _ = Simulator::new().run_moments(&c, &schedule, state, |m, _| seen.push(m));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn plan_cache_deduplicates_repeated_operations() {
        // Figure 4's circuit re-runs share all plans; the increment and
        // decrement are distinct gates, X is a third, so 3 plans total.
        let c = toffoli_fig4();
        let sim = Simulator::new();
        sim.run(&c).unwrap();
        let after_first = sim.cached_plans();
        assert_eq!(after_first, 3);
        sim.run(&c).unwrap();
        sim.run(&c).unwrap();
        assert_eq!(
            sim.cached_plans(),
            after_first,
            "re-runs must not grow the cache"
        );
    }

    #[test]
    fn structurally_equal_gates_share_one_plan() {
        // Separate constructor calls build separate matrix allocations, but
        // the cache keys on contents, so they all dedup to a single plan.
        let sim = Simulator::new();
        for _ in 0..20 {
            let mut c = Circuit::new(3, 2);
            c.push_gate(Gate::increment(3), &[0]).unwrap();
            sim.run(&c).unwrap();
        }
        assert_eq!(sim.cached_plans(), 1);
    }

    #[test]
    fn plan_cache_is_bounded() {
        // Genuinely distinct matrices (a continuum of X^t roots) can never
        // re-hit; the cache must stay capped regardless.
        let sim = Simulator::new();
        for i in 0..(super::PLAN_CACHE_CAP + 100) {
            let mut c = Circuit::new(3, 2);
            c.push_gate(Gate::x_pow(3, (i + 1) as f64 * 1e-6), &[0])
                .unwrap();
            sim.run(&c).unwrap();
        }
        assert!(sim.cached_plans() <= super::PLAN_CACHE_CAP);
    }

    #[test]
    fn compiled_circuit_matches_simulator_run() {
        let c = toffoli_fig4();
        let sim = Simulator::new();
        let compiled = sim.compile(&c);
        for input in classical::all_basis_states(3, 3) {
            let a = sim.run_on_basis_state(&c, &input).unwrap();
            let b = compiled.run(StateVector::from_basis_state(3, &input).unwrap());
            for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
                assert!(x.approx_eq(*y, 1e-12));
            }
        }
    }
}
