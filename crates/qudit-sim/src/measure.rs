//! Measurement and sampling.

use qudit_core::StateVector;
use rand::Rng;

/// Samples a full computational-basis measurement of the state, returning
/// the per-qudit digits. The state is not collapsed.
pub fn sample_measurement<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> Vec<usize> {
    let r: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0f64;
    let mut chosen = state.len() - 1;
    for (idx, amp) in state.amplitudes().iter().enumerate() {
        acc += amp.norm_sqr();
        if r < acc {
            chosen = idx;
            break;
        }
    }
    StateVector::decode_index(state.dim(), state.num_qudits(), chosen)
}

/// Samples `shots` measurements and returns a histogram keyed by the flat
/// basis index.
pub fn sample_histogram<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> std::collections::HashMap<usize, usize> {
    let mut hist = std::collections::HashMap::new();
    for _ in 0..shots {
        let digits = sample_measurement(state, rng);
        let idx = StateVector::encode_digits(state.dim(), &digits).expect("digits are valid");
        *hist.entry(idx).or_insert(0) += 1;
    }
    hist
}

/// The marginal probability distribution of a single qudit.
pub fn marginal_distribution(state: &StateVector, qudit: usize) -> Vec<f64> {
    let dim = state.dim();
    let n = state.num_qudits();
    assert!(qudit < n, "qudit index out of range");
    // Amplitudes sharing a digit of `qudit` form contiguous runs of length
    // `stride`, cycling through the `dim` digit values — so the chunked
    // view sums each run without any per-amplitude index arithmetic.
    let stride = dim.pow((n - 1 - qudit) as u32);
    let mut probs = vec![0.0f64; dim];
    for (chunk_idx, chunk) in state.amplitude_chunks(stride).enumerate() {
        probs[chunk_idx % dim] += chunk.iter().map(|a| a.norm_sqr()).sum::<f64>();
    }
    probs
}

/// The probability that every qudit measures in the qubit subspace
/// (levels 0 or 1). Useful for checking that the paper's constructions
/// return to binary outputs.
pub fn qubit_subspace_probability(state: &StateVector) -> f64 {
    let dim = state.dim();
    let n = state.num_qudits();
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(idx, _)| {
            StateVector::decode_index(dim, n, *idx)
                .iter()
                .all(|&d| d < 2)
        })
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_always_measures_itself() {
        let sv = StateVector::from_basis_state(3, &[2, 0, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(sample_measurement(&sv, &mut rng), vec![2, 0, 1]);
        }
    }

    #[test]
    fn histogram_approximates_distribution() {
        // |+> style state over two qutrit levels.
        let mut sv = StateVector::zero_state(3, 1).unwrap();
        let amp = Complex::real(1.0 / 2.0_f64.sqrt());
        sv.amplitudes_mut()[0] = amp;
        sv.amplitudes_mut()[1] = amp;
        let mut rng = StdRng::seed_from_u64(2);
        let hist = sample_histogram(&sv, 4000, &mut rng);
        let zero = *hist.get(&0).unwrap_or(&0) as f64 / 4000.0;
        assert!((zero - 0.5).abs() < 0.05);
        assert!(!hist.contains_key(&2));
    }

    #[test]
    fn marginal_distribution_sums_to_one() {
        let sv = StateVector::from_basis_state(3, &[1, 2]).unwrap();
        let m0 = marginal_distribution(&sv, 0);
        assert!((m0[1] - 1.0).abs() < 1e-12);
        let m1 = marginal_distribution(&sv, 1);
        assert!((m1[2] - 1.0).abs() < 1e-12);
        assert!((m0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qubit_subspace_probability_detects_leakage() {
        let binary = StateVector::from_basis_state(3, &[1, 0]).unwrap();
        assert!((qubit_subspace_probability(&binary) - 1.0).abs() < 1e-12);
        let leaked = StateVector::from_basis_state(3, &[2, 0]).unwrap();
        assert!(qubit_subspace_probability(&leaked) < 1e-12);
    }
}
