//! # qudit-sim
//!
//! A dense state-vector simulator for qudit circuits. Gates are applied with
//! einsum-style kernels that never build the full `d^N × d^N` matrix, exactly
//! as the paper's Cirq extension does (Section 6.2); 14-qutrit circuits (a
//! ~77 MB state vector) are simulable on a laptop.
//!
//! The noise-free simulator lives here; the quantum-trajectory noise
//! simulator (Algorithm 1 of the paper) builds on these kernels from the
//! `qudit-noise` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod apply;
mod measure;
mod simulator;

pub use apply::{apply_matrix, apply_operation};
pub use measure::{
    marginal_distribution, qubit_subspace_probability, sample_histogram, sample_measurement,
};
pub use simulator::Simulator;
