//! # qudit-sim
//!
//! A dense state-vector simulator for qudit circuits. Gates are applied with
//! einsum-style kernels that never build the full `d^N × d^N` matrix, exactly
//! as the paper's Cirq extension does (Section 6.2); 14-qutrit circuits (a
//! ~77 MB state vector) are simulable on a laptop.
//!
//! ## Architecture: plans and kernels
//!
//! Gate application is the hot path of everything in this workspace — the
//! trajectory Monte Carlo simulator replays circuits thousands of times — so
//! it is split into a *planning* phase and an *execution* phase:
//!
//! 1. [`kernel::ApplyPlan`] precomputes, once per operation, everything the
//!    inner loop would otherwise recompute: target strides, the `d^k` gather
//!    offsets, the flat-index contribution of the control levels, the free
//!    (non-target, non-control) qudit strides, and the kernel to dispatch to.
//! 2. [`ApplyPlan::apply`](kernel::ApplyPlan::apply) enumerates the
//!    `d^(n-k-c)` amplitude-group base indices with a mixed-radix odometer
//!    over the free strides — no full-index scan, no `pow`/div/mod in any
//!    inner loop — and runs one of four kernels per group:
//!    * a **permutation** kernel for classical gates (`X`, `X±1`, level
//!      swaps): precomputed index cycles, zero complex arithmetic;
//!    * monomorphic **k = 1** / **k = 2** dense kernels (stack scratch,
//!      branch-free multiply) for the dominant one- and two-target gates;
//!    * a generic **gather–scatter** fallback for `k ≥ 3`.
//!
//!    Above [`kernel::PAR_MIN_WORK`] estimated amplitude-operations the
//!    groups are chunked across rayon workers; groups never share an
//!    amplitude, so the workers are race-free by construction.
//! 3. [`Simulator`] caches plans per distinct (gate, qudits) pair, and
//!    [`CompiledCircuit`] pins down one plan per operation — plus a
//!    cache-blocked segment schedule that replays trailing-support runs
//!    chunk-by-chunk and folds all-permutation runs into one composed
//!    index permutation — so replay loops (ideal evolution, trajectory
//!    trials) do no planning at all.
//!
//! The seed's naive full-scan implementation is retained in
//! `apply::reference` as the oracle for the kernel equivalence test suite.
//!
//! ## Backends
//!
//! Two simulation backends share the same plan/kernel machinery:
//!
//! * the **state-vector** backend ([`Simulator`] / [`CompiledCircuit`]) —
//!   `d^n` amplitudes, exact for noise-free evolution, sampled (quantum
//!   trajectories, in `qudit-noise`) under noise;
//! * the **density-matrix** backend ([`density`]) — `d^2n` entries, exact
//!   under noise: `U·ρ·U†` is two plan applications on the vectorised `ρ`
//!   (`U` on the row digits, `conj(U)` on the column digits) and Kraus
//!   channels are single precompiled superoperator plans.
//!
//! The noise-free simulator lives here; the quantum-trajectory noise
//! simulator (Algorithm 1 of the paper) builds on these kernels from the
//! `qudit-noise` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod apply;
pub mod density;
pub mod kernel;
mod measure;
mod simulator;

pub use apply::{apply_matrix, apply_matrix_sequential, apply_operation, reference};
pub use density::{superoperator_targets, CompiledDensityCircuit, DensityMatrix, UnitaryPlanPair};
pub use kernel::ApplyPlan;
pub use measure::{
    marginal_distribution, qubit_subspace_probability, sample_histogram, sample_measurement,
};
pub use simulator::{CompiledCircuit, Simulator};
