//! Exact density-matrix simulation.
//!
//! A density matrix `ρ` over `n` qudits of dimension `d` is a `d^n × d^n`
//! Hermitian, trace-1, positive matrix. Stored row-major, its flat buffer is
//! *exactly* the amplitude buffer of a `2n`-qudit register: index
//! `r·d^n + c` has the row digits as the first `n` qudits and the column
//! digits as the last `n`. Every evolution primitive therefore reuses the
//! stride-enumerated [`ApplyPlan`] kernels unchanged:
//!
//! * **Unitary conjugation** `ρ → U·ρ·U†` vectorises to
//!   `(U ⊗ conj(U))·vec(ρ)`: one plan applies `U` to the row digits and a
//!   second applies `conj(U)` to the column digits ([`UnitaryPlanPair`]).
//!   Controls carry over verbatim — a controlled operation's plan already
//!   restricts itself to the matching control digits on each side.
//!   Uncontrolled pairs additionally *fuse* the two passes: the row sweep's
//!   group order visits whole `ρ` rows at a time, so the column-side
//!   `conj(U)` is applied to each row while it is still cache-resident,
//!   instead of a second full pass over the `d^2n` buffer.
//! * **Kraus channels** `ρ → Σᵢ Kᵢ·ρ·Kᵢ†` vectorise to the superoperator
//!   `Σᵢ Kᵢ ⊗ conj(Kᵢ)` acting on the row *and* column digits of the
//!   targeted qudits together — a single dense plan applied once, with no
//!   sampling ([`DensityMatrix::apply_superoperator`]).
//!
//! This backend is exponentially more expensive than a state vector
//! (`d^2n` vs `d^n` amplitudes) but exact: it gives ground-truth fidelities
//! that the trajectory Monte Carlo estimates converge to, which is what the
//! deterministic cross-validation tests assert.

use crate::kernel::{simd_level, AmpsPtr, ApplyPlan, SimdLevel, PAR_MIN_AMPS};
use qudit_circuit::passes::CompiledIr;
use qudit_circuit::{Circuit, KernelClass, Operation};
use qudit_core::{CMatrix, Complex, CoreError, CoreResult, StateVector};
use rayon::prelude::*;

/// A dense density matrix for `num_qudits` qudits of dimension `dim`.
///
/// # Examples
///
/// ```
/// use qudit_core::gates;
/// use qudit_sim::DensityMatrix;
///
/// // F₃|0⟩⟨0|F₃† on one qutrit: equal populations on all three levels.
/// let mut rho = DensityMatrix::zero_state(3, 1).unwrap();
/// rho.apply_unitary(&gates::qutrit::h3(), &[0]);
/// assert!((rho.population(&[1]).unwrap() - 1.0 / 3.0).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12); // still pure
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    dim: usize,
    num_qudits: usize,
    /// `d^num_qudits` — the Hilbert-space dimension (row/column count).
    size: usize,
    /// Row-major `size × size` entries.
    elems: Vec<Complex>,
}

impl DensityMatrix {
    /// The density matrix of the all-zeros basis state `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDimension`] if `dim < 2`.
    pub fn zero_state(dim: usize, num_qudits: usize) -> CoreResult<Self> {
        if dim < 2 {
            return Err(CoreError::InvalidDimension { dimension: dim });
        }
        let size = dim.pow(num_qudits as u32);
        let mut elems = vec![Complex::ZERO; size * size];
        elems[0] = Complex::ONE;
        Ok(DensityMatrix {
            dim,
            num_qudits,
            size,
            elems,
        })
    }

    /// The density matrix of a computational basis state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateVector::from_basis_state`].
    pub fn from_basis_state(dim: usize, digits: &[usize]) -> CoreResult<Self> {
        let mut rho = DensityMatrix::zero_state(dim, digits.len())?;
        let idx = StateVector::encode_digits(dim, digits)?;
        rho.elems[0] = Complex::ZERO;
        rho.elems[idx * rho.size + idx] = Complex::ONE;
        Ok(rho)
    }

    /// The pure density matrix `|ψ⟩⟨ψ|` of a state vector.
    ///
    /// The `size²` outer-product sweep is chunked row-wise across rayon
    /// workers once the buffer is large enough to amortise the fan-out —
    /// this runs once per input draw in the exact noise backend, where the
    /// buffer is the dominant allocation.
    pub fn from_pure(psi: &StateVector) -> Self {
        let size = psi.len();
        let amps = psi.amplitudes();
        let mut elems = vec![Complex::ZERO; size * size];
        let fill_row = |r: usize, row: &mut [Complex]| {
            let a = amps[r];
            if a == Complex::ZERO {
                return;
            }
            for (slot, b) in row.iter_mut().zip(amps) {
                *slot = a * b.conj();
            }
        };
        if size * size >= PAR_MIN_AMPS && rayon::current_num_threads() > 1 {
            elems
                .par_chunks_mut(size)
                .enumerate()
                .for_each(|(r, row)| fill_row(r, row));
        } else {
            for (r, row) in elems.chunks_exact_mut(size).enumerate() {
                fill_row(r, row);
            }
        }
        DensityMatrix {
            dim: psi.dim(),
            num_qudits: psi.num_qudits(),
            size,
            elems,
        }
    }

    /// The statistical mixture `Σᵢ wᵢ·|ψᵢ⟩⟨ψᵢ|` of pure states.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotNormalized`] if the weights do not sum to 1
    /// (within `1e-6`) or any weight is negative, or
    /// [`CoreError::ShapeMismatch`] if the states disagree in shape or the
    /// mixture is empty.
    pub fn from_mixture(parts: &[(f64, &StateVector)]) -> CoreResult<Self> {
        let (first_w, first) = parts.first().ok_or(CoreError::ShapeMismatch {
            expected: 1,
            actual: 0,
        })?;
        let total: f64 = parts.iter().map(|(w, _)| w).sum();
        if (total - 1.0).abs() > 1e-6 || parts.iter().any(|&(w, _)| w < 0.0) {
            return Err(CoreError::NotNormalized { norm: total });
        }
        let mut rho = DensityMatrix::from_pure(first);
        for z in &mut rho.elems {
            *z = z.scale(*first_w);
        }
        for (w, psi) in &parts[1..] {
            if psi.dim() != rho.dim || psi.num_qudits() != rho.num_qudits {
                return Err(CoreError::ShapeMismatch {
                    expected: rho.size,
                    actual: psi.len(),
                });
            }
            let amps = psi.amplitudes();
            for (r, row) in rho.elems.chunks_exact_mut(rho.size).enumerate() {
                let a = amps[r].scale(*w);
                if a == Complex::ZERO {
                    continue;
                }
                for (slot, b) in row.iter_mut().zip(amps) {
                    *slot += a * b.conj();
                }
            }
        }
        Ok(rho)
    }

    /// The maximally mixed state `I/d^n`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDimension`] if `dim < 2`.
    pub fn maximally_mixed(dim: usize, num_qudits: usize) -> CoreResult<Self> {
        let mut rho = DensityMatrix::zero_state(dim, num_qudits)?;
        rho.elems[0] = Complex::ZERO;
        let p = Complex::real(1.0 / rho.size as f64);
        for i in 0..rho.size {
            rho.elems[i * rho.size + i] = p;
        }
        Ok(rho)
    }

    /// The per-qudit dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of qudits in the register.
    #[inline]
    pub fn num_qudits(&self) -> usize {
        self.num_qudits
    }

    /// The Hilbert-space dimension `d^num_qudits` (row and column count).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The row-major flat entries (`size²` of them).
    #[inline]
    pub fn elements(&self) -> &[Complex] {
        &self.elems
    }

    /// Entry `ρ[r, c]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.size && c < self.size, "index out of bounds");
        self.elems[r * self.size + c]
    }

    /// The trace `Σᵢ ρ[i, i]` (1 for a physical state).
    pub fn trace(&self) -> Complex {
        (0..self.size).map(|i| self.elems[i * self.size + i]).sum()
    }

    /// The diagonal as real populations (imaginary parts are discarded;
    /// they are zero for a Hermitian matrix).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.size)
            .map(|i| self.elems[i * self.size + i].re)
            .collect()
    }

    /// The population (diagonal entry) of a basis state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidLevel`] if any digit is out of range.
    pub fn population(&self, digits: &[usize]) -> CoreResult<f64> {
        let idx = StateVector::encode_digits(self.dim, digits)?;
        Ok(self.elems[idx * self.size + idx].re)
    }

    /// The purity `tr(ρ²)` — 1 for pure states, `1/d^n` for the maximally
    /// mixed state. Uses `tr(ρ²) = Σ|ρ[r,c]|²`, valid for Hermitian `ρ`.
    pub fn purity(&self) -> f64 {
        self.elems.iter().map(|z| z.norm_sqr()).sum()
    }

    /// The largest deviation from Hermiticity, `max |ρ[r,c] − ρ[c,r]*|`.
    pub fn hermiticity_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..self.size {
            for c in r..self.size {
                let d = self.elems[r * self.size + c] - self.elems[c * self.size + r].conj();
                worst = worst.max(d.abs());
            }
        }
        worst
    }

    /// The smallest diagonal entry (real part). Negative values beyond
    /// numerical noise indicate an unphysical (non-PSD) matrix.
    pub fn min_population(&self) -> f64 {
        (0..self.size)
            .map(|i| self.elems[i * self.size + i].re)
            .fold(f64::INFINITY, f64::min)
    }

    /// Rescales so the trace is exactly 1. A zero-trace matrix is left
    /// untouched. Returns the trace prior to rescaling.
    pub fn renormalize(&mut self) -> f64 {
        let t = self.trace().re;
        if t != 0.0 {
            let inv = 1.0 / t;
            for z in &mut self.elems {
                *z = z.scale(inv);
            }
        }
        t
    }

    /// The fidelity `⟨ψ|ρ|ψ⟩` against a pure state — the exact counterpart
    /// of the trajectory simulator's mean `|⟨ψ_ideal|ψ_noisy⟩|²`.
    ///
    /// Large matrices split the row sweep across rayon workers (the
    /// per-row contributions are independent; they are reduced in row
    /// order so the result does not depend on the thread count).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.dim, psi.dim(), "dimension mismatch");
        assert_eq!(self.num_qudits, psi.num_qudits(), "width mismatch");
        let amps = psi.amplitudes();
        let row_contrib = |r: usize| -> Complex {
            let a = amps[r].conj();
            if a == Complex::ZERO {
                return Complex::ZERO;
            }
            let row = &self.elems[r * self.size..(r + 1) * self.size];
            let mut inner = Complex::ZERO;
            for (z, b) in row.iter().zip(amps) {
                inner += *z * *b;
            }
            a * inner
        };
        if self.elems.len() >= PAR_MIN_AMPS && rayon::current_num_threads() > 1 {
            let contribs: Vec<Complex> = (0..self.size).into_par_iter().map(row_contrib).collect();
            contribs.into_iter().sum::<Complex>().re
        } else {
            (0..self.size).map(row_contrib).sum::<Complex>().re
        }
    }

    /// The Uhlmann fidelity `F(ρ, σ) = tr(√(√ρ σ √ρ))²` against another,
    /// generally mixed, density matrix — the mixed-reference generalisation
    /// of [`DensityMatrix::fidelity_with_pure`]. When `ρ = |ψ⟩⟨ψ|` is pure
    /// this reduces exactly to `⟨ψ|σ|ψ⟩`; when both arguments commute
    /// (e.g. diagonal mixtures with populations `pᵢ`, `qᵢ`) it reduces to
    /// the classical `(Σᵢ √(pᵢ qᵢ))²`.
    ///
    /// The matrix square roots go through the Hermitian Jacobi eigensolver
    /// ([`qudit_core::eig_hermitian`]); eigenvalues that are negative by
    /// numerical noise clamp to zero, and the result clamps to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn fidelity(&self, other: &DensityMatrix) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        assert_eq!(self.num_qudits, other.num_qudits, "width mismatch");
        // Eigenvalues of a density matrix below this are Jacobi noise, not
        // spectrum. They must be zeroed, not square-rooted: √ amplifies an
        // O(1e-17) residual to O(1e-9), which would dominate the error of
        // the whole fidelity.
        const EIG_NOISE_TOL: f64 = 1e-12;
        let clamped_root = |l: f64| if l > EIG_NOISE_TOL { l.sqrt() } else { 0.0 };
        let n = self.size;
        let rho = CMatrix::from_vec(n, n, self.elems.clone()).expect("ρ is square");
        let (evals, q) = qudit_core::eig_hermitian(&rho);
        // √ρ = Q · diag(√λ) · Q†, with noise eigenvalues clamped to zero.
        let roots: Vec<f64> = evals.iter().map(|&l| clamped_root(l)).collect();
        let mut sqrt_elems = vec![Complex::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut z = Complex::ZERO;
                for (k, &r) in roots.iter().enumerate() {
                    if r != 0.0 {
                        z += (q.get(i, k) * q.get(j, k).conj()).scale(r);
                    }
                }
                sqrt_elems[i * n + j] = z;
            }
        }
        let sqrt_rho = CMatrix::from_vec(n, n, sqrt_elems).expect("√ρ is square");
        let sigma = CMatrix::from_vec(n, n, other.elems.clone()).expect("σ is square");
        let inner = &(&sqrt_rho * &sigma) * &sqrt_rho;
        let (inner_evals, _) = qudit_core::eig_hermitian(&inner);
        let root_sum: f64 = inner_evals.iter().map(|&l| clamped_root(l)).sum();
        (root_sum * root_sum).clamp(0.0, 1.0)
    }

    /// Applies `ρ → U·ρ·U†` for a unitary acting on the listed qudits
    /// (most significant first).
    ///
    /// One-shot convenience; hot loops should compile a [`UnitaryPlanPair`]
    /// (or a [`CompiledDensityCircuit`]) and reuse it.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size does not equal `dim^qudits.len()` or a
    /// qudit index is invalid.
    pub fn apply_unitary(&mut self, matrix: &CMatrix, qudits: &[usize]) {
        UnitaryPlanPair::new(self.dim, self.num_qudits, matrix, qudits, &[]).apply(self);
    }

    /// Applies an [`Operation`] (gate + controls) as `ρ → V·ρ·V†` where `V`
    /// is the controlled unitary.
    ///
    /// # Panics
    ///
    /// Panics if any qudit index is invalid for this register.
    pub fn apply_operation(&mut self, op: &Operation) {
        UnitaryPlanPair::for_operation(self.num_qudits, op).apply(self);
    }

    /// Applies a superoperator matrix to the row and column digits of the
    /// targeted qudits: `vec(ρ)` is multiplied by `smatrix` on the combined
    /// `(row ⊗ column)` space of `qudits`.
    ///
    /// For a channel with Kraus operators `Kᵢ` over `qudits`, passing
    /// `Σᵢ Kᵢ ⊗ conj(Kᵢ)` (a `d^2k × d^2k` matrix) computes
    /// `ρ → Σᵢ Kᵢ·ρ·Kᵢ†` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `smatrix` is not `d^2k × d^2k` for `k = qudits.len()`, or a
    /// qudit index is invalid.
    pub fn apply_superoperator(&mut self, smatrix: &CMatrix, qudits: &[usize]) {
        let targets = superoperator_targets(qudits, self.num_qudits);
        let plan = ApplyPlan::for_matrix(self.dim, 2 * self.num_qudits, smatrix, &targets);
        self.apply_plan(&plan);
    }

    /// Applies a single prebuilt plan over the vectorised `2n`-qudit view.
    ///
    /// # Panics
    ///
    /// Panics if the plan was not built for `dim^(2·num_qudits)` amplitudes.
    pub fn apply_plan(&mut self, plan: &ApplyPlan) {
        assert_eq!(plan.dim(), self.dim, "dimension mismatch");
        assert_eq!(
            plan.num_qudits(),
            2 * self.num_qudits,
            "plan width must be 2×register width"
        );
        plan.apply_amplitudes(&mut self.elems, plan.should_parallelize());
    }
}

/// The target list a superoperator plan acts on: the row digits of `qudits`
/// followed by their column digits (offset by the register width).
pub fn superoperator_targets(qudits: &[usize], width: usize) -> Vec<usize> {
    qudits
        .iter()
        .copied()
        .chain(qudits.iter().map(|&q| q + width))
        .collect()
}

/// A compiled `ρ → V·ρ·V†` for one (controlled) unitary: the row-side plan
/// for `V` and the column-side plan for `conj(V)`, built once and reusable
/// across applications (and threads — plans are `Sync`).
///
/// Uncontrolled pairs carry an additional *fused* form: because the row
/// plan's free digits enumerate the column digits last, its group order
/// visits `ρ` in batches of whole rows — so the pair can apply `U` to a
/// batch of rows and immediately apply `conj(U)` to each of those rows (an
/// independent `n`-qudit sweep per row slice) while the rows are still
/// cache-resident, instead of making two full passes over the `d^2n`
/// buffer. The interleaving never reorders arithmetic — the column sweep
/// only mixes entries *within* a row, and it runs only on rows whose
/// row-side update is complete — so the fused result is identical to the
/// two-pass result.
#[derive(Clone, Debug)]
pub struct UnitaryPlanPair {
    row: ApplyPlan,
    col: ApplyPlan,
    /// `Some` when the pair is uncontrolled: the `n`-qudit plan of `U` on
    /// the row view (group enumeration + row offsets only) and the
    /// `n`-qudit plan of `conj(U)` applied per row slice.
    fused: Option<FusedPair>,
}

/// The single-pass (cache-fused) form of an uncontrolled plan pair.
#[derive(Clone, Debug)]
struct FusedPair {
    /// `U` on the targets over the *n*-qudit row space. Used to enumerate
    /// row-group base rows and the row offsets of each batch; its group
    /// order matches the 2n-qudit row plan's free-row-digit order by
    /// construction (both enumerate free digits most-significant first).
    row_small: ApplyPlan,
    /// `conj(U)` on the targets over the *n*-qudit column space of one row.
    col_small: ApplyPlan,
}

impl UnitaryPlanPair {
    /// Builds the pair for `matrix` on `targets` with explicit
    /// `(qudit, level)` controls, over a `width`-qudit register.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ApplyPlan::new`].
    pub fn new(
        dim: usize,
        width: usize,
        matrix: &CMatrix,
        targets: &[usize],
        controls: &[(usize, usize)],
    ) -> Self {
        let col_targets: Vec<usize> = targets.iter().map(|&q| q + width).collect();
        let col_controls: Vec<(usize, usize)> =
            controls.iter().map(|&(q, l)| (q + width, l)).collect();
        let fused = controls.is_empty().then(|| FusedPair {
            row_small: ApplyPlan::new(dim, width, matrix, targets, &[]),
            col_small: ApplyPlan::new(dim, width, &matrix.conj(), targets, &[]),
        });
        UnitaryPlanPair {
            row: ApplyPlan::new(dim, 2 * width, matrix, targets, controls),
            col: ApplyPlan::new(dim, 2 * width, &matrix.conj(), &col_targets, &col_controls),
            fused,
        }
    }

    /// Builds the pair for an [`Operation`] on a `width`-qudit register.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ApplyPlan::for_operation`].
    pub fn for_operation(width: usize, op: &Operation) -> Self {
        UnitaryPlanPair::new(
            op.gate().dim(),
            width,
            op.gate().matrix(),
            op.targets(),
            &op.control_pairs(),
        )
    }

    /// Applies `ρ → V·ρ·V†` in place.
    ///
    /// Uncontrolled pairs take the fused single-pass sweep; controlled
    /// pairs (whose active groups are not whole-row batches) fall back to
    /// the two-pass row-then-column application.
    ///
    /// # Panics
    ///
    /// Panics if the density matrix shape does not match the pair.
    pub fn apply(&self, rho: &mut DensityMatrix) {
        match &self.fused {
            Some(f) => self.apply_fused(f, rho),
            None => {
                rho.apply_plan(&self.row);
                rho.apply_plan(&self.col);
            }
        }
    }

    /// Applies the pair two-pass regardless of fusability. Exposed for the
    /// equivalence tests, which pin the fused sweep against it.
    #[doc(hidden)]
    pub fn apply_two_pass(&self, rho: &mut DensityMatrix) {
        rho.apply_plan(&self.row);
        rho.apply_plan(&self.col);
    }

    /// Fused sweep: for each row-group (a batch of `d^k` rows sharing
    /// their free row digits), run the 2n-qudit row plan over exactly that
    /// batch's groups — the row plan's group index factors as
    /// `rg·size + column_index`, so groups `rg·size..(rg+1)·size` are
    /// precisely "all columns of row batch `rg`" — then apply the n-qudit
    /// `conj(U)` plan to each finished row slice.
    fn apply_fused(&self, f: &FusedPair, rho: &mut DensityMatrix) {
        assert_eq!(self.row.dim(), rho.dim, "dimension mismatch");
        assert_eq!(
            self.row.num_qudits(),
            2 * rho.num_qudits,
            "plan width must be 2×register width"
        );
        if self.row.kernel_class() == KernelClass::Identity {
            return;
        }
        let size = rho.size;
        let rg_count = f.row_small.groups();
        let simd = simd_level();
        let ptr = AmpsPtr::new(&mut rho.elems);
        // Work per row-group ≈ the whole pair's work / rg_count; fanning
        // out over row-groups splits the buffer into disjoint row batches.
        if rg_count >= 2 && self.row.should_parallelize() {
            let threads = rayon::current_num_threads().min(rg_count);
            let chunk = rg_count.div_ceil(threads);
            (0..threads).into_par_iter().for_each(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(rg_count);
                if lo < hi {
                    self.apply_fused_range(f, ptr, size, simd, lo, hi);
                }
            });
        } else {
            self.apply_fused_range(f, ptr, size, simd, 0, rg_count);
        }
    }

    /// Runs the fused sweep for row-groups `lo..hi`. Each row-group touches
    /// a disjoint set of rows (row batches partition the row space), so
    /// concurrent ranges never alias.
    fn apply_fused_range(
        &self,
        f: &FusedPair,
        ptr: AmpsPtr,
        size: usize,
        simd: SimdLevel,
        lo: usize,
        hi: usize,
    ) {
        let mut rg = lo;
        f.row_small.for_each_run(lo, hi, |row_base, count| {
            let rs = f.row_small.run_stride();
            for t in 0..count {
                let base_row = row_base + t * rs;
                let g0 = rg * size;
                self.row.run_groups(ptr, g0, g0 + size, simd);
                for &off in f.row_small.offsets() {
                    let r = base_row + off;
                    // Safe: row r belongs only to this row-group, and the
                    // row plan above finished writing it.
                    let row_slice = unsafe { ptr.slice_mut(r * size, size) };
                    f.col_small.apply_amplitudes_simd(row_slice, false, simd);
                }
                rg += 1;
            }
        });
    }
}

/// A circuit compiled into one [`UnitaryPlanPair`] per operation — the
/// density-matrix counterpart of [`CompiledCircuit`](crate::CompiledCircuit).
#[derive(Clone, Debug)]
pub struct CompiledDensityCircuit {
    dim: usize,
    width: usize,
    pairs: Vec<UnitaryPlanPair>,
}

impl CompiledDensityCircuit {
    /// Compiles every operation of the circuit exactly as given (no pass
    /// pipeline) — the index-aligned primitive; see
    /// [`CompiledCircuit`](crate::CompiledCircuit) for when to prefer
    /// [`CompiledDensityCircuit::compile_ir`].
    pub fn compile(circuit: &Circuit) -> Self {
        CompiledDensityCircuit {
            dim: circuit.dim(),
            width: circuit.width(),
            pairs: circuit
                .iter()
                .map(|op| UnitaryPlanPair::for_operation(circuit.width(), op))
                .collect(),
        }
    }

    /// Compiles the pass-transformed IR: one plan pair per post-pass
    /// operation, index-aligned with [`CompiledIr::schedule`].
    pub fn compile_ir(ir: &CompiledIr) -> Self {
        CompiledDensityCircuit::compile(ir.circuit())
    }

    /// The qudit dimension of the source circuit.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The register width of the source circuit.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The compiled pairs, in operation order.
    pub fn pairs(&self) -> &[UnitaryPlanPair] {
        &self.pairs
    }

    /// The pair of operation `op_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `op_idx` is out of range.
    pub fn pair(&self, op_idx: usize) -> &UnitaryPlanPair {
        &self.pairs[op_idx]
    }

    /// Runs the whole compiled circuit on `ρ`, consuming and returning it.
    ///
    /// # Panics
    ///
    /// Panics if the density matrix shape does not match the circuit.
    pub fn run(&self, mut rho: DensityMatrix) -> DensityMatrix {
        assert_eq!(rho.dim(), self.dim, "dimension mismatch");
        assert_eq!(rho.num_qudits(), self.width, "width mismatch");
        for pair in &self.pairs {
            pair.apply(&mut rho);
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::reference;
    use qudit_circuit::{Control, Gate};
    use qudit_core::gates;
    use qudit_core::random_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(rho: &DensityMatrix, expected: &[&[f64]], tol: f64) {
        for (r, row) in expected.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                let got = rho.get(r, c);
                assert!(
                    (got.re - want).abs() < tol && got.im.abs() < tol,
                    "ρ[{r},{c}] = {got:?}, expected {want}"
                );
            }
        }
    }

    #[test]
    fn pure_basis_state_has_single_population() {
        let rho = DensityMatrix::from_basis_state(3, &[1, 2]).unwrap();
        assert!((rho.population(&[1, 2]).unwrap() - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.hermiticity_error() < 1e-15);
    }

    #[test]
    fn x_plus_1_moves_a_qutrit_population_hand_computed() {
        // X+1 · |1⟩⟨1| · (X+1)† = |2⟩⟨2|: all mass on ρ[2,2].
        let mut rho = DensityMatrix::from_basis_state(3, &[1]).unwrap();
        rho.apply_unitary(&gates::qudit::shift(3), &[0]);
        assert_close(
            &rho,
            &[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0]],
            1e-12,
        );
    }

    #[test]
    fn hadamard_on_zero_gives_hand_computed_coherences() {
        // H|0⟩⟨0|H† on the 0/1 subspace of a qutrit: ρ = ½(|0⟩+|1⟩)(⟨0|+⟨1|).
        let mut rho = DensityMatrix::zero_state(3, 1).unwrap();
        rho.apply_unitary(Gate::h(3).matrix(), &[0]);
        assert_close(
            &rho,
            &[&[0.5, 0.5, 0.0], &[0.5, 0.5, 0.0], &[0.0, 0.0, 0.0]],
            1e-12,
        );
    }

    #[test]
    fn controlled_increment_two_qutrits_hand_computed() {
        // |1⟩-controlled X+1 on |11⟩⟨11| → |12⟩⟨12| (index 5 of 9).
        let op =
            qudit_circuit::Operation::new(Gate::increment(3), vec![Control::on_one(0)], vec![1])
                .unwrap();
        let mut rho = DensityMatrix::from_basis_state(3, &[1, 1]).unwrap();
        rho.apply_operation(&op);
        assert!((rho.population(&[1, 2]).unwrap() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        // Control inactive: |01⟩⟨01| stays put.
        let mut inert = DensityMatrix::from_basis_state(3, &[0, 1]).unwrap();
        inert.apply_operation(&op);
        assert!((inert.population(&[0, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_qutrit_entangling_circuit_matches_hand_computed_bell_pair() {
        // H on qudit 0 then |1⟩-controlled X: (|00⟩ + |11⟩)/√2, whose ρ has
        // the four 0.5 entries at indices {0, 4} × {0, 4}.
        let mut rho = DensityMatrix::zero_state(3, 2).unwrap();
        rho.apply_unitary(Gate::h(3).matrix(), &[0]);
        let cx =
            qudit_circuit::Operation::new(Gate::x(3), vec![Control::on_one(0)], vec![1]).unwrap();
        rho.apply_operation(&cx);
        for (r, c) in [(0, 0), (0, 4), (4, 0), (4, 4)] {
            assert!((rho.get(r, c).re - 0.5).abs() < 1e-12, "ρ[{r},{c}]");
        }
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evolution_matches_reference_outer_products() {
        // Evolving |ψ⟩⟨ψ| through a circuit fragment must equal the outer
        // product of the naive-reference-evolved |ψ'⟩.
        let mut rng = StdRng::seed_from_u64(17);
        let psi = random_state(3, 3, &mut rng).unwrap();
        let ops = [
            qudit_circuit::Operation::uncontrolled(Gate::fourier(3), vec![1]).unwrap(),
            qudit_circuit::Operation::new(Gate::increment(3), vec![Control::on_two(1)], vec![2])
                .unwrap(),
            qudit_circuit::Operation::new(
                Gate::h(3),
                vec![Control::on_one(2), Control::on_zero(1)],
                vec![0],
            )
            .unwrap(),
        ];

        let mut rho = DensityMatrix::from_pure(&psi);
        let mut slow = psi;
        for op in &ops {
            rho.apply_operation(op);
            reference::apply_operation_naive(&mut slow, op);
        }
        let expected = DensityMatrix::from_pure(&slow);
        for (a, b) in rho.elements().iter().zip(expected.elements()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
        assert!((rho.fidelity_with_pure(&slow) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn compiled_density_circuit_matches_statevector_run() {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        let compiled = CompiledDensityCircuit::compile(&c);
        let mut rng = StdRng::seed_from_u64(4);
        let psi = random_state(3, 3, &mut rng).unwrap();
        let rho = compiled.run(DensityMatrix::from_pure(&psi));
        let out = crate::Simulator::new().run_with_state(&c, psi);
        for (a, b) in rho
            .elements()
            .iter()
            .zip(DensityMatrix::from_pure(&out).elements())
        {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn superoperator_application_matches_explicit_kraus_sum() {
        // A qubit amplitude-damping channel applied via its superoperator
        // must equal Σ K ρ K† computed densely by hand.
        let lambda: f64 = 0.3;
        let k0 = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ZERO],
            &[Complex::ZERO, Complex::real((1.0 - lambda).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::real(lambda.sqrt())],
            &[Complex::ZERO, Complex::ZERO],
        ]);
        let superop = &k0.kron(&k0.conj()) + &k1.kron(&k1.conj());

        let mut rng = StdRng::seed_from_u64(8);
        let psi = random_state(2, 2, &mut rng).unwrap();
        let mut rho = DensityMatrix::from_pure(&psi);
        rho.apply_superoperator(&superop, &[1]);

        // Dense reference: K acts on qudit 1 → lift to I ⊗ K.
        let lift = |k: &CMatrix| CMatrix::identity(2).kron(k);
        let full0 = lift(&k0);
        let full1 = lift(&k1);
        let dense =
            CMatrix::from_vec(4, 4, DensityMatrix::from_pure(&psi).elements().to_vec()).unwrap();
        let expected = &(&full0 * &dense) * &full0.adjoint();
        let expected = &expected + &(&(&full1 * &dense) * &full1.adjoint());
        for (a, b) in rho.elements().iter().zip(expected.as_slice()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.hermiticity_error() < 1e-12);
    }

    #[test]
    fn maximally_mixed_is_invariant_under_unitaries() {
        let mut rho = DensityMatrix::maximally_mixed(3, 2).unwrap();
        let before = rho.clone();
        rho.apply_unitary(&gates::qutrit::h3(), &[0]);
        rho.apply_unitary(&gates::qudit::fourier(3), &[1]);
        for (a, b) in rho.elements().iter().zip(before.elements()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert!((rho.purity() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn fused_pair_sweep_matches_two_pass_exactly() {
        // The fused row/column sweep must produce the same entries as the
        // two-pass application for dense, diagonal and permutation gates,
        // at every target position, for d ∈ {2, 3}.
        for dim in [2usize, 3] {
            let mut rng = StdRng::seed_from_u64(41 + dim as u64);
            let psi = random_state(dim, 3, &mut rng).unwrap();
            let gates_under_test: Vec<(CMatrix, Vec<usize>)> = vec![
                (Gate::fourier(dim).matrix().clone(), vec![0]),
                (Gate::fourier(dim).matrix().clone(), vec![2]),
                (Gate::clock(dim).matrix().clone(), vec![1]),
                (Gate::increment(dim).matrix().clone(), vec![1]),
                (Gate::swap(dim).matrix().clone(), vec![0, 2]),
                (Gate::swap(dim).matrix().clone(), vec![2, 1]),
            ];
            for (m, targets) in gates_under_test {
                let pair = UnitaryPlanPair::new(dim, 3, &m, &targets, &[]);
                assert!(pair.fused.is_some());
                let mut fused = DensityMatrix::from_pure(&psi);
                pair.apply(&mut fused);
                let mut two_pass = DensityMatrix::from_pure(&psi);
                pair.apply_two_pass(&mut two_pass);
                for (a, b) in fused.elements().iter().zip(two_pass.elements()) {
                    assert!(
                        a.approx_eq(*b, 1e-12),
                        "dim {dim} targets {targets:?}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn controlled_pairs_fall_back_to_two_pass() {
        let pair = UnitaryPlanPair::new(3, 2, Gate::h(3).matrix(), &[1], &[(0, 1)]);
        assert!(pair.fused.is_none());
    }

    #[test]
    fn fidelity_with_pure_matches_statevector_fidelity_for_pure_rho() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_state(3, 2, &mut rng).unwrap();
        let b = random_state(3, 2, &mut rng).unwrap();
        let rho = DensityMatrix::from_pure(&a);
        assert!((rho.fidelity_with_pure(&b) - a.fidelity(&b)).abs() < 1e-12);
    }

    /// A generic mixed state: an unequal mixture of random pure states.
    fn random_mixture(dim: usize, n: usize, seed: u64) -> DensityMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_state(dim, n, &mut rng).unwrap();
        let b = random_state(dim, n, &mut rng).unwrap();
        let c = random_state(dim, n, &mut rng).unwrap();
        DensityMatrix::from_mixture(&[(0.5, &a), (0.3, &b), (0.2, &c)]).unwrap()
    }

    #[test]
    fn uhlmann_fidelity_reduces_to_fidelity_with_pure() {
        // F(|ψ⟩⟨ψ|, σ) = ⟨ψ|σ|ψ⟩ exactly — the ISSUE's ≤1e-12 pin.
        for (dim, n, seed) in [(2, 2, 7u64), (3, 2, 11), (3, 1, 13)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let psi = random_state(dim, n, &mut rng).unwrap();
            let sigma = random_mixture(dim, n, seed + 100);
            let via_uhlmann = DensityMatrix::from_pure(&psi).fidelity(&sigma);
            let via_pure = sigma.fidelity_with_pure(&psi);
            assert!(
                (via_uhlmann - via_pure).abs() <= 1e-12,
                "dim {dim} n {n}: {via_uhlmann} vs {via_pure}"
            );
        }
    }

    #[test]
    fn uhlmann_fidelity_is_one_on_itself_and_symmetric() {
        let rho = random_mixture(3, 2, 42);
        let sigma = random_mixture(3, 2, 43);
        assert!((rho.fidelity(&rho) - 1.0).abs() < 1e-10);
        assert!((rho.fidelity(&sigma) - sigma.fidelity(&rho)).abs() < 1e-10);
        let f = rho.fidelity(&sigma);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn uhlmann_fidelity_matches_closed_forms_for_mixed_pairs() {
        // Commuting diagonal mixtures: F = (Σ √(pᵢqᵢ))².
        let basis: Vec<StateVector> = (0..3)
            .map(|k| StateVector::from_basis_state(3, &[k]).unwrap())
            .collect();
        let p = [0.6, 0.3, 0.1];
        let q = [0.2, 0.5, 0.3];
        let rho =
            DensityMatrix::from_mixture(&[(p[0], &basis[0]), (p[1], &basis[1]), (p[2], &basis[2])])
                .unwrap();
        let sigma =
            DensityMatrix::from_mixture(&[(q[0], &basis[0]), (q[1], &basis[1]), (q[2], &basis[2])])
                .unwrap();
        let expected: f64 = p
            .iter()
            .zip(&q)
            .map(|(a, b)| (a * b).sqrt())
            .sum::<f64>()
            .powi(2);
        assert!((rho.fidelity(&sigma) - expected).abs() < 1e-10);

        // Maximally mixed vs any pure state: F = 1/d^n.
        let mut rng = StdRng::seed_from_u64(5);
        let psi = random_state(3, 2, &mut rng).unwrap();
        let mixed = DensityMatrix::maximally_mixed(3, 2).unwrap();
        let f = mixed.fidelity(&DensityMatrix::from_pure(&psi));
        assert!((f - 1.0 / 9.0).abs() < 1e-10, "{f}");

        // Orthogonal pure states: F = 0.
        let zero = DensityMatrix::from_pure(&basis[0]);
        let one = DensityMatrix::from_pure(&basis[1]);
        assert!(zero.fidelity(&one).abs() < 1e-10);
    }
}
