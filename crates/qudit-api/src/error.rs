//! The unified error type of the façade.

use std::error::Error;
use std::fmt;

/// Convenience result alias for façade operations.
pub type ApiResult<T> = Result<T, ApiError>;

/// Everything that can go wrong between describing a job and reading its
/// result — the typed replacement for the panic paths the façade redesign
/// removed (shape-mismatch panics, ad-hoc `expect`s in the bench bins).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ApiError {
    /// The job description itself is invalid (bad flag value, noise at an
    /// optimizing pass level, an infeasible backend request, ...). Caught
    /// at [`JobSpec`](crate::JobSpec) build time.
    Spec {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A circuit-layer failure (invalid indices, gate shapes, ...).
    Circuit(qudit_circuit::CircuitError),
    /// A noise-layer failure (unphysical model, unsupported level, state
    /// shape mismatch, ...).
    Noise(qudit_noise::NoiseError),
    /// A core math failure (invalid dimension, digits out of range, ...).
    Core(qudit_core::CoreError),
    /// The requested result kind does not match what the job produced
    /// (e.g. asking a noise-free run for a fidelity).
    WrongOutcome {
        /// What the caller asked for.
        requested: &'static str,
        /// What the job produced.
        actual: &'static str,
    },
    /// A wire-format (JSON) failure: malformed text or a tree that does not
    /// describe a valid value.
    Wire {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The job's deadline expired (or it was cancelled) before the
    /// simulation finished; the cooperative [`CancelToken`](crate::CancelToken)
    /// stopped the work mid-run.
    DeadlineExceeded,
}

impl ApiError {
    /// Builds a [`ApiError::Spec`] from anything displayable.
    pub fn spec(reason: impl fmt::Display) -> Self {
        ApiError::Spec {
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Spec { reason } => write!(f, "invalid job spec: {reason}"),
            ApiError::Circuit(e) => write!(f, "circuit error: {e}"),
            ApiError::Noise(e) => write!(f, "noise error: {e}"),
            ApiError::Core(e) => write!(f, "core error: {e}"),
            ApiError::WrongOutcome { requested, actual } => {
                write!(f, "job produced {actual}, but {requested} was requested")
            }
            ApiError::Wire { reason } => write!(f, "wire format error: {reason}"),
            ApiError::DeadlineExceeded => {
                write!(f, "job deadline exceeded before the simulation finished")
            }
        }
    }
}

impl Error for ApiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApiError::Circuit(e) => Some(e),
            ApiError::Noise(e) => Some(e),
            ApiError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qudit_circuit::CircuitError> for ApiError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        ApiError::Circuit(e)
    }
}

impl From<qudit_noise::NoiseError> for ApiError {
    fn from(e: qudit_noise::NoiseError) -> Self {
        // A tripped CancelToken surfaces from the simulation loops as
        // NoiseError::Cancelled; at the façade it is a deadline outcome,
        // not a noise problem.
        match e {
            qudit_noise::NoiseError::Cancelled => ApiError::DeadlineExceeded,
            e => ApiError::Noise(e),
        }
    }
}

impl From<qudit_core::CoreError> for ApiError {
    fn from(e: qudit_core::CoreError) -> Self {
        ApiError::Core(e)
    }
}

impl From<serde::Error> for ApiError {
    fn from(e: serde::Error) -> Self {
        ApiError::Wire {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApiError::spec("trials must be at least 1");
        assert!(e.to_string().contains("trials"));
        let e = ApiError::WrongOutcome {
            requested: "a fidelity estimate",
            actual: "output states",
        };
        assert!(e.to_string().contains("fidelity"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApiError>();
    }
}
