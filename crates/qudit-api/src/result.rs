//! Typed execution results and their wire format.

use crate::error::{ApiError, ApiResult};
use qudit_circuit::ResourceReport;
use qudit_core::StateVector;
use qudit_noise::{BackendKind, FidelityEstimate, SimOutput};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The result of running one [`JobSpec`](crate::JobSpec): which backend
/// produced it, the compiled circuit's resource report (post-pass, at the
/// job's level — the paper's count columns), and the typed outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionResult {
    /// The backend that produced the result.
    pub backend: BackendKind,
    /// Resources of the compiled (post-pass) circuit the job replayed.
    pub resources: ResourceReport,
    /// The job's payload.
    pub outcome: Outcome,
}

impl ExecutionResult {
    /// The fidelity estimate of a noisy job.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::WrongOutcome`] for noise-free jobs.
    pub fn fidelity(&self) -> ApiResult<&FidelityEstimate> {
        match &self.outcome {
            Outcome::Fidelity(estimate) => Ok(estimate),
            Outcome::States(_) => Err(ApiError::WrongOutcome {
                requested: "a fidelity estimate",
                actual: "output states",
            }),
        }
    }

    /// The output states of a noise-free job, one per input.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::WrongOutcome`] for noisy jobs.
    pub fn states(&self) -> ApiResult<&[OutputState]> {
        match &self.outcome {
            Outcome::States(states) => Ok(states),
            Outcome::Fidelity(_) => Err(ApiError::WrongOutcome {
                requested: "output states",
                actual: "a fidelity estimate",
            }),
        }
    }

    /// The number of Monte Carlo trials the job actually ran — `None` for
    /// noise-free jobs (nothing is sampled). Under an adaptive
    /// [`Precision`](crate::Precision) this is where the early stopper
    /// landed, which can be well below the fixed-trials budget.
    pub fn trials_run(&self) -> Option<usize> {
        match &self.outcome {
            Outcome::Fidelity(estimate) => Some(estimate.trials),
            Outcome::States(_) => None,
        }
    }

    /// Serializes the result to compact JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a result from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Wire`] on malformed input.
    pub fn from_json(text: &str) -> ApiResult<ExecutionResult> {
        Ok(serde::json::from_str(text)?)
    }
}

/// The payload of an [`ExecutionResult`].
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Noise-free evolution: one output per input, in input order.
    States(Vec<OutputState>),
    /// Noisy simulation: the mean fidelity with its error bars (the
    /// sample standard error plus the binomial bound via
    /// [`FidelityEstimate::binomial_sigma`]).
    Fidelity(FidelityEstimate),
}

/// One noise-free output state, backend-typed: the trajectory engine
/// returns the full state vector, the density-matrix engine the diagonal
/// populations (serializing a full `d^2n` ρ would dwarf every other
/// payload; the diagonal is what verification and read-out consume).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputState {
    /// A pure state `|ψ⟩` (trajectory backend).
    Pure(StateVector),
    /// Basis-state populations `diag(ρ)` (density-matrix backend).
    Populations {
        /// The qudit dimension.
        dim: usize,
        /// The register width.
        width: usize,
        /// The `dim^width` basis populations.
        probabilities: Vec<f64>,
    },
}

impl OutputState {
    /// Converts a backend output, keeping the pure state when there is one.
    pub(crate) fn from_sim_output(out: SimOutput) -> OutputState {
        match out {
            SimOutput::Pure(psi) => OutputState::Pure(psi),
            SimOutput::Mixed(rho) => OutputState::Populations {
                dim: rho.dim(),
                width: rho.num_qudits(),
                probabilities: rho.diagonal(),
            },
        }
    }

    /// The probability of measuring the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns an error if the digit count does not match the register
    /// width or a digit is out of range for the dimension.
    pub fn probability(&self, digits: &[usize]) -> ApiResult<f64> {
        let width = match self {
            OutputState::Pure(psi) => psi.num_qudits(),
            OutputState::Populations { width, .. } => *width,
        };
        if digits.len() != width {
            // encode_digits validates each digit but not the count; a short
            // slice would silently address the wrong basis state.
            return Err(ApiError::spec(format!(
                "{} digit(s) given for a width-{width} register",
                digits.len()
            )));
        }
        match self {
            OutputState::Pure(psi) => Ok(psi.probability(digits)?),
            OutputState::Populations {
                dim, probabilities, ..
            } => {
                let idx = StateVector::encode_digits(*dim, digits)?;
                probabilities
                    .get(idx)
                    .copied()
                    .ok_or_else(|| ApiError::spec(format!("basis index {idx} out of range")))
            }
        }
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        match self {
            OutputState::Pure(psi) => psi.probabilities(),
            OutputState::Populations { probabilities, .. } => probabilities.clone(),
        }
    }

    /// The digits of the most likely basis state.
    pub fn most_likely_state(&self) -> Vec<usize> {
        match self {
            OutputState::Pure(psi) => psi.most_likely_state(),
            OutputState::Populations {
                dim,
                width,
                probabilities,
            } => {
                let best = probabilities
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("probabilities are not NaN"))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                StateVector::decode_index(*dim, *width, best)
            }
        }
    }

    /// The pure state, when the backend produced one.
    pub fn pure(&self) -> Option<&StateVector> {
        match self {
            OutputState::Pure(psi) => Some(psi),
            OutputState::Populations { .. } => None,
        }
    }
}

impl Serialize for OutputState {
    fn to_value(&self) -> Value {
        match self {
            OutputState::Pure(psi) => {
                Value::object(vec![("kind", "pure".to_value()), ("state", psi.to_value())])
            }
            OutputState::Populations {
                dim,
                width,
                probabilities,
            } => Value::object(vec![
                ("kind", "populations".to_value()),
                ("dim", dim.to_value()),
                ("width", width.to_value()),
                ("probabilities", probabilities.to_value()),
            ]),
        }
    }
}

impl Deserialize for OutputState {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value.field("kind")?.as_str()? {
            "pure" => Ok(OutputState::Pure(StateVector::from_value(
                value.field("state")?,
            )?)),
            "populations" => {
                let dim = value.field("dim")?.as_usize()?;
                let width = value.field("width")?.as_usize()?;
                let probabilities = Vec::<f64>::from_value(value.field("probabilities")?)?;
                let expected = dim
                    .checked_pow(width as u32)
                    .ok_or_else(|| SerdeError::custom("state size overflows usize"))?;
                if probabilities.len() != expected {
                    return Err(SerdeError::custom(format!(
                        "populations need {expected} entries, got {}",
                        probabilities.len()
                    )));
                }
                Ok(OutputState::Populations {
                    dim,
                    width,
                    probabilities,
                })
            }
            other => Err(SerdeError::custom(format!(
                "unknown output state kind {other:?}"
            ))),
        }
    }
}

impl Serialize for Outcome {
    fn to_value(&self) -> Value {
        match self {
            Outcome::States(states) => Value::object(vec![
                ("kind", "states".to_value()),
                ("states", states.to_value()),
            ]),
            Outcome::Fidelity(estimate) => Value::object(vec![
                ("kind", "fidelity".to_value()),
                ("estimate", estimate.to_value()),
                // The binomial error bar is derived, but carrying it on the
                // wire lets thin clients render bounds without re-deriving.
                ("binomial_sigma", estimate.binomial_sigma().to_value()),
            ]),
        }
    }
}

impl Deserialize for Outcome {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value.field("kind")?.as_str()? {
            "states" => Ok(Outcome::States(Vec::<OutputState>::from_value(
                value.field("states")?,
            )?)),
            "fidelity" => Ok(Outcome::Fidelity(FidelityEstimate::from_value(
                value.field("estimate")?,
            )?)),
            other => Err(SerdeError::custom(format!(
                "unknown outcome kind {other:?}"
            ))),
        }
    }
}

impl Serialize for ExecutionResult {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("backend", self.backend.to_value()),
            ("resources", self.resources.to_value()),
            ("outcome", self.outcome.to_value()),
        ])
    }
}

impl Deserialize for ExecutionResult {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(ExecutionResult {
            backend: BackendKind::from_value(value.field("backend")?)?,
            resources: ResourceReport::from_value(value.field("resources")?)?,
            outcome: Outcome::from_value(value.field("outcome")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{Circuit, Control, Gate};

    fn report() -> ResourceReport {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        ResourceReport::measure(&c)
    }

    #[test]
    fn fidelity_accessor_is_typed() {
        let result = ExecutionResult {
            backend: BackendKind::Trajectory,
            resources: report(),
            outcome: Outcome::Fidelity(FidelityEstimate {
                mean: 0.9,
                std_error: 0.01,
                trials: 10,
            }),
        };
        assert!((result.fidelity().unwrap().mean - 0.9).abs() < 1e-15);
        assert!(matches!(
            result.states().unwrap_err(),
            ApiError::WrongOutcome { .. }
        ));
    }

    #[test]
    fn execution_result_round_trips_through_json() {
        let psi = StateVector::from_basis_state(3, &[1, 1, 1]).unwrap();
        for outcome in [
            Outcome::States(vec![
                OutputState::Pure(psi.clone()),
                OutputState::Populations {
                    dim: 3,
                    width: 1,
                    probabilities: vec![0.25, 0.75, 0.0],
                },
            ]),
            Outcome::Fidelity(FidelityEstimate {
                mean: 0.987_654_321,
                std_error: 2e-4,
                trials: 400,
            }),
        ] {
            let result = ExecutionResult {
                backend: BackendKind::DensityMatrix,
                resources: report(),
                outcome,
            };
            let back = ExecutionResult::from_json(&result.to_json()).unwrap();
            assert_eq!(back, result);
        }
    }

    #[test]
    fn output_state_queries_agree_across_representations() {
        let psi = StateVector::from_basis_state(3, &[2, 0]).unwrap();
        let pure = OutputState::Pure(psi.clone());
        let populations = OutputState::Populations {
            dim: 3,
            width: 2,
            probabilities: psi.probabilities(),
        };
        for out in [&pure, &populations] {
            assert!((out.probability(&[2, 0]).unwrap() - 1.0).abs() < 1e-12);
            assert_eq!(out.most_likely_state(), vec![2, 0]);
            // A digit slice of the wrong length is an error, not a silent
            // lookup of some other basis state.
            assert!(out.probability(&[2]).is_err());
            assert!(out.probability(&[2, 0, 0]).is_err());
        }
        assert!(pure.pure().is_some());
        assert!(populations.pure().is_none());
    }
}
