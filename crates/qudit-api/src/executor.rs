//! The executor: compile-once job running with batch fan-out.

use crate::error::{ApiError, ApiResult};
use crate::result::{ExecutionResult, Outcome, OutputState};
use crate::spec::JobSpec;
use qudit_circuit::passes::{self, CompiledIr, PassLevel};
use qudit_circuit::{Circuit, Gate, Operation, RoutingSummary, Topology};
use qudit_core::{random_qubit_subspace_state, StateVector};
use qudit_noise::{
    BackendKind, CancelToken, CrossValidation, DensityNoiseSimulator, InputState,
    NoiseArtifactStats, SharedNoiseArtifacts, TrajectoryConfig, TrajectorySimulator,
};
use qudit_sim::{CompiledCircuit, CompiledDensityCircuit, DensityMatrix, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Structural fingerprint of a circuit: dimension, width, and per operation
/// the gate matrix's bit patterns plus its controls and targets. Two
/// circuits built by independent constructor calls share a key iff they are
/// structurally identical — the same idea as the simulator's plan cache,
/// lifted to job level (negative zero normalised for the same reason).
/// One operation's structural fingerprint: matrix bits, controls, targets.
type OpKey = (Vec<u64>, Vec<(usize, usize)>, Vec<usize>);

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CircuitKey {
    dim: usize,
    width: usize,
    ops: Vec<OpKey>,
}

impl CircuitKey {
    fn of(circuit: &Circuit) -> CircuitKey {
        let bit = |x: f64| if x == 0.0 { 0 } else { x.to_bits() };
        CircuitKey {
            dim: circuit.dim(),
            width: circuit.width(),
            ops: circuit
                .iter()
                .map(|op| {
                    (
                        op.gate()
                            .matrix()
                            .as_slice()
                            .iter()
                            .flat_map(|z| [bit(z.re), bit(z.im)])
                            .collect(),
                        op.control_pairs(),
                        op.targets().to_vec(),
                    )
                })
                .collect(),
        }
    }
}

/// Everything cached for one structurally distinct (circuit, level) pair:
/// the pass-pipeline output (the expensive part — for `Physical` levels it
/// includes the Di & Wei eigendecompositions) plus lazily built kernel
/// plans per backend. Every field is a `OnceLock` so the work happens
/// *outside* the executor's cache mutex: the map lock is only held for the
/// cheap get-or-insert of the (empty) entry, and concurrent jobs needing
/// the same entry block on its `OnceLock`, not on the whole cache.
#[derive(Default)]
struct CacheEntry {
    ir: OnceLock<Arc<CompiledIr>>,
    statevector: OnceLock<Arc<CompiledCircuit>>,
    density: OnceLock<Arc<CompiledDensityCircuit>>,
    /// Model-independent noise artifacts (program + replay circuits) with
    /// model-keyed site caches inside — see [`SharedNoiseArtifacts`].
    noise: OnceLock<Arc<SharedNoiseArtifacts>>,
}

impl CacheEntry {
    fn ir(
        &self,
        circuit: &Circuit,
        level: PassLevel,
        topology: Option<&Topology>,
    ) -> Arc<CompiledIr> {
        Arc::clone(
            self.ir
                .get_or_init(|| Arc::new(passes::compile_with_topology(circuit, level, topology))),
        )
    }

    fn statevector(&self, ir: &CompiledIr) -> Arc<CompiledCircuit> {
        Arc::clone(
            self.statevector
                .get_or_init(|| Arc::new(CompiledCircuit::compile_ir(ir))),
        )
    }

    fn density(&self, ir: &CompiledIr) -> Arc<CompiledDensityCircuit> {
        Arc::clone(
            self.density
                .get_or_init(|| Arc::new(CompiledDensityCircuit::compile_ir(ir))),
        )
    }

    /// The entry's shared noise artifacts, building them on first use.
    /// Fallible construction doesn't fit `get_or_init` directly, so build
    /// outside and let the first successful build win — a concurrent
    /// duplicate is benign (same inputs, and the loser's work is dropped).
    fn noise(&self, ir: &CompiledIr) -> ApiResult<Arc<SharedNoiseArtifacts>> {
        if let Some(artifacts) = self.noise.get() {
            return Ok(Arc::clone(artifacts));
        }
        let built = Arc::new(SharedNoiseArtifacts::from_ir(ir)?);
        Ok(Arc::clone(self.noise.get_or_init(|| built)))
    }
}

/// Compilation-cache key: one entry per (pass level, device topology,
/// structural circuit identity) triple — routed and unrouted compilations
/// of the same circuit are distinct entries.
type CompileKey = (PassLevel, Option<Topology>, CircuitKey);

/// The single runtime entry point: runs [`JobSpec`]s, compiling each
/// structurally distinct (circuit, pass level) pair exactly once.
///
/// The cache keys on circuit *structure* (gate matrix bits + controls +
/// targets), so jobs built from independent constructor calls — the normal
/// shape of a parameter sweep, where every job rebuilds "the" fig4 Toffoli
/// — share one compilation: the pass pipeline per (circuit, level), the
/// noise-free kernel plan sets per entry, and the per-gate state-vector
/// plans of noisy jobs through one shared [`Simulator`] plan cache.
/// Model-shaped artifacts are memoized too: each entry carries a
/// [`SharedNoiseArtifacts`] holding the noise program and compiled replay
/// circuits (model-independent, built once) plus the per-site channel and
/// superoperator plan sets keyed by the model's physics parameters — a
/// sweep over seeds or trial counts under one model compiles its channels
/// once. [`Executor::noise_artifact_stats`] reports the build/share
/// counters.
///
/// [`Executor::run_batch`] fans jobs out across rayon workers. Every job is
/// deterministic given its spec (all randomness is seeded from
/// [`JobSpec::seed`]), so batch results are **bit-identical** to running
/// the same specs sequentially — the batch determinism test pins this.
///
/// On top of the compilation cache sits a bounded LRU **result cache**
/// keyed on the spec's canonical wire form (the same key batch dedup
/// uses): repeated service traffic — the Zipf-shaped request mix the
/// `zipf` bench models — skips the whole simulation, not just the
/// compile. Determinism makes this sound: a cache hit is bit-identical to
/// re-running the spec, which the cache tests pin.
pub struct Executor {
    cache: Mutex<HashMap<CompileKey, Arc<CacheEntry>>>,
    /// Shared per-gate plan cache for the simulators noisy jobs construct.
    planner: Simulator,
    /// Jobs actually simulated (batch dedup and the result cache share
    /// results, so this can be smaller than the number of specs submitted)
    /// — observability for the dedup tests and the server's metrics.
    simulated: AtomicUsize,
    /// Finished results keyed on the canonical wire form; `result_capacity`
    /// bounds it (0 disables caching entirely).
    results: Mutex<ResultCache>,
    result_capacity: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::with_result_cache(RESULT_CACHE_CAP)
    }
}

/// Job-cache capacity: distinct (circuit, level) pairs held at once. A
/// batch sweep over the paper's constructions needs a few dozen; the cap
/// bounds growth when a long-lived executor sees an unbounded stream of
/// distinct circuits. Eviction is a wholesale clear — entries are
/// rebuildable and the common case re-warms in one compile each.
const JOB_CACHE_CAP: usize = 256;

/// Default result-cache capacity: finished results held at once. Sized for
/// a service working set (the Zipf bench's hot set is ~50 specs) while
/// bounding memory — fidelity results are tiny, but noise-free state
/// payloads can reach `16 B × 3^width` each.
const RESULT_CACHE_CAP: usize = 512;

/// The result cache's interior: wire-keyed results stamped for LRU
/// eviction, plus the counters [`ResultCacheStats`] reports.
#[derive(Default)]
struct ResultCache {
    map: HashMap<String, (u64, ExecutionResult)>,
    stamp: u64,
    hits: usize,
    misses: usize,
    trials_saved: usize,
}

/// A snapshot of the executor's result-cache counters — the service
/// metrics `/healthz` surfaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to a simulation.
    pub misses: usize,
    /// Monte Carlo trials the hits avoided re-running (the dominant cost
    /// a hit saves; noise-free hits save a replay but add nothing here).
    pub trials_saved: usize,
    /// Results currently held.
    pub entries: usize,
    /// The configured bound.
    pub capacity: usize,
}

impl Executor {
    /// Creates an executor with an empty compilation cache and the default
    /// result-cache capacity.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Creates an executor whose result cache holds at most `capacity`
    /// finished results (0 disables result caching; compilation caching is
    /// unaffected).
    pub fn with_result_cache(capacity: usize) -> Self {
        Executor {
            cache: Mutex::default(),
            planner: Simulator::default(),
            simulated: AtomicUsize::new(0),
            results: Mutex::default(),
            result_capacity: capacity,
        }
    }

    /// The number of distinct (circuit, level) compilations currently
    /// cached.
    pub fn cached_compilations(&self) -> usize {
        // Recover from poisoning: the cache holds only immutable
        // Arc<CacheEntry> values (each populated under its own OnceLock),
        // so a panic while the lock was held cannot leave a torn state.
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The number of jobs this executor has actually simulated. Batch
    /// dedup and the result cache share one simulation across structurally
    /// identical specs, so this counts real work, not submissions.
    pub fn jobs_simulated(&self) -> usize {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Aggregated noise-artifact counters over every cached entry: how many
    /// per-site channel/superoperator sets were compiled versus answered
    /// from the model-keyed cache. A seed sweep under one model should show
    /// `sites_shared` growing while `sites_built` stays put.
    pub fn noise_artifact_stats(&self) -> NoiseArtifactStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .values()
            .filter_map(|entry| entry.noise.get())
            .fold(NoiseArtifactStats::default(), |acc, artifacts| {
                acc.merge(artifacts.stats())
            })
    }

    /// A snapshot of the result-cache counters.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        let cache = self.results.lock().unwrap_or_else(|e| e.into_inner());
        ResultCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            trials_saved: cache.trials_saved,
            entries: cache.map.len(),
            capacity: self.result_capacity,
        }
    }

    /// Probes the result cache for a finished run of `spec` without
    /// simulating anything. A hit counts toward the hit/trials-saved
    /// metrics (the caller is serving it); a miss counts nothing — the
    /// miss is charged when the actual run happens, so a front end that
    /// probes first and queues on miss does not double-count.
    pub fn cached_result(&self, spec: &JobSpec) -> Option<ExecutionResult> {
        if self.result_capacity == 0 {
            return None;
        }
        self.lookup_result(&spec.to_json(), false)
    }

    /// Cache lookup by canonical wire key; refreshes the LRU stamp and the
    /// hit counters on a hit. `count_miss` charges the miss counter (the
    /// run path does; the public probe does not).
    fn lookup_result(&self, key: &str, count_miss: bool) -> Option<ExecutionResult> {
        let mut cache = self.results.lock().unwrap_or_else(|e| e.into_inner());
        cache.stamp += 1;
        let stamp = cache.stamp;
        let found = cache.map.get_mut(key).map(|entry| {
            entry.0 = stamp;
            entry.1.clone()
        });
        match found {
            Some(result) => {
                cache.hits += 1;
                if let Some(trials) = result.trials_run() {
                    cache.trials_saved += trials;
                }
                Some(result)
            }
            None => {
                if count_miss {
                    cache.misses += 1;
                }
                None
            }
        }
    }

    /// Stores a finished result, evicting the least-recently-used entry at
    /// capacity. Linear-scan eviction: at the default capacity one scan is
    /// noise next to the simulation the insert just paid for.
    fn store_result(&self, key: String, result: &ExecutionResult) {
        let mut cache = self.results.lock().unwrap_or_else(|e| e.into_inner());
        if cache.map.len() >= self.result_capacity && !cache.map.contains_key(&key) {
            if let Some(oldest) = cache
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                cache.map.remove(&oldest);
            }
        }
        cache.stamp += 1;
        let stamp = cache.stamp;
        cache.map.insert(key, (stamp, result.clone()));
    }

    /// Get-or-inserts the cache entry and ensures its IR is compiled. Only
    /// the map lookup holds the cache mutex; the pass pipeline itself runs
    /// under the entry's own `OnceLock`, so distinct circuits compile
    /// concurrently and cache readers never wait on a compile.
    fn entry(
        &self,
        circuit: &Circuit,
        level: PassLevel,
        topology: Option<&Topology>,
    ) -> (Arc<CacheEntry>, Arc<CompiledIr>) {
        let key = (level, topology.cloned(), CircuitKey::of(circuit));
        let entry = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = cache.get(&key) {
                Arc::clone(entry)
            } else {
                if cache.len() >= JOB_CACHE_CAP {
                    cache.clear();
                }
                let entry = Arc::new(CacheEntry::default());
                cache.insert(key, Arc::clone(&entry));
                entry
            }
        };
        let ir = entry.ir(circuit, level, topology);
        (entry, ir)
    }

    /// Runs one job.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ApiError`] if the circuit cannot be lowered for a
    /// noisy job, the noise model is unphysical for the circuit's
    /// dimension, or an input is invalid — never a panic.
    pub fn run(&self, spec: &JobSpec) -> ApiResult<ExecutionResult> {
        self.run_with(spec, &CancelToken::never())
    }

    /// Runs one job under a [`CancelToken`]: the simulation loops check the
    /// token between trials/frames, so an expired deadline (or a server
    /// shutdown) stops the job mid-run with [`ApiError::DeadlineExceeded`]
    /// instead of burning cores on a result nobody will read.
    ///
    /// # Errors
    ///
    /// [`ApiError::DeadlineExceeded`] once the token trips; otherwise the
    /// same conditions as [`Executor::run`].
    pub fn run_with(&self, spec: &JobSpec, cancel: &CancelToken) -> ApiResult<ExecutionResult> {
        cancel.check().map_err(ApiError::from)?;
        if self.result_capacity > 0 {
            let key = spec.to_json();
            if let Some(result) = self.lookup_result(&key, true) {
                return Ok(result);
            }
            let result = self.run_uncached(spec, cancel)?;
            self.store_result(key, &result);
            return Ok(result);
        }
        self.run_uncached(spec, cancel)
    }

    /// The simulation path behind [`Executor::run_with`], bypassing the
    /// result cache (the compilation cache still applies).
    fn run_uncached(&self, spec: &JobSpec, cancel: &CancelToken) -> ApiResult<ExecutionResult> {
        let (entry, ir) = self.entry(spec.circuit(), spec.level(), spec.topology());
        let resources = ir.report().post;
        // A routed job compiles to the *physical* circuit: inputs must be
        // embedded through the initial placement, and noise-free outputs
        // un-embedded through the final mapping, so callers keep logical
        // qudit labels end to end. The identity summary (all-to-all or an
        // already-routable circuit) skips both.
        let routing = ir.routing().filter(|summary| !summary.is_identity());
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let outcome = match spec.noise() {
            Some(model) => {
                let config = TrajectoryConfig {
                    trials: spec.trials(),
                    seed: spec.seed(),
                    level: spec.level(),
                    input: routed_input(spec.input(), routing),
                };
                let artifacts = entry.noise(&ir)?;
                let estimate = match spec.backend() {
                    BackendKind::Trajectory => {
                        TrajectorySimulator::from_artifacts_with(&artifacts, model, &self.planner)?
                            .run_with_precision(&config, spec.precision(), cancel)?
                    }
                    BackendKind::DensityMatrix => DensityNoiseSimulator::from_artifacts_with(
                        &artifacts,
                        model,
                        &self.planner,
                    )?
                    .run_with_precision(&config, spec.precision(), cancel)?,
                };
                Outcome::Fidelity(estimate)
            }
            None => {
                let mut inputs = self.job_inputs(spec)?;
                if let Some(summary) = routing {
                    for input in &mut inputs {
                        *input = input.permute_qudits(&summary.placement)?;
                    }
                }
                // Undoing the final mapping returns outputs in logical
                // qudit order, so routed and unrouted runs of the same job
                // are directly comparable.
                let unembed = routing.map(|summary| invert(&summary.final_mapping));
                let outputs: Vec<OutputState> = match spec.backend() {
                    BackendKind::Trajectory => {
                        let compiled = entry.statevector(&ir);
                        inputs
                            .into_iter()
                            .map(|input| {
                                let mut out = compiled.run(input);
                                if let Some(map) = &unembed {
                                    out = out
                                        .permute_qudits(map)
                                        .expect("a routing mapping is a permutation");
                                }
                                OutputState::Pure(out)
                            })
                            .collect()
                    }
                    BackendKind::DensityMatrix => {
                        let compiled = entry.density(&ir);
                        inputs
                            .into_iter()
                            .map(|input| {
                                let mut rho = compiled.run(DensityMatrix::from_pure(&input));
                                if let Some(map) = &unembed {
                                    permute_density(&mut rho, map, spec.circuit().dim());
                                }
                                OutputState::from_sim_output(qudit_noise::SimOutput::Mixed(rho))
                            })
                            .collect()
                    }
                };
                Outcome::States(outputs)
            }
        };
        Ok(ExecutionResult {
            backend: spec.backend(),
            resources,
            outcome,
        })
    }

    /// Runs a batch of jobs, fanning out across rayon workers.
    ///
    /// Jobs sharing a structurally identical circuit and level compile
    /// once — each entry's `OnceLock` makes the first worker to need it
    /// compile while the rest wait on that entry only, so *distinct*
    /// circuits compile concurrently. Going further, **structurally
    /// identical specs share one simulation**: every job is deterministic
    /// given its spec (all randomness is seeded from [`JobSpec::seed`]), so
    /// duplicate specs — the normal shape of repeated service traffic —
    /// are simulated once and the result cloned into each duplicate's slot.
    /// Results are returned in spec order and are bit-identical to calling
    /// [`Executor::run`] on each spec in sequence — the batch determinism
    /// and dedup tests pin this.
    pub fn run_batch(&self, specs: &[JobSpec]) -> Vec<ApiResult<ExecutionResult>> {
        self.run_batch_with(specs, &CancelToken::never())
    }

    /// [`Executor::run_batch`] under a shared [`CancelToken`] — one expired
    /// deadline cancels the whole batch's remaining work.
    pub fn run_batch_with(
        &self,
        specs: &[JobSpec],
        cancel: &CancelToken,
    ) -> Vec<ApiResult<ExecutionResult>> {
        // Canonical dedup key: the deterministic wire serialization covers
        // everything that can influence a result (circuit structure, level,
        // backend, model, trials, seed, input, sweep).
        let mut first_of: HashMap<String, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let canonical: Vec<usize> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                *first_of.entry(spec.to_json()).or_insert_with(|| {
                    unique.push(i);
                    unique.len() - 1
                })
            })
            .collect();
        let results: Vec<ApiResult<ExecutionResult>> = (0..unique.len())
            .into_par_iter()
            .map(|u| self.run_with(&specs[unique[u]], cancel))
            .collect();
        canonical.into_iter().map(|u| results[u].clone()).collect()
    }

    /// Cross-validates a noisy job: runs it on the exact density-matrix
    /// backend and on the trajectory backend (same circuit compilation,
    /// same seeded inputs) and wraps both in the standard confidence bound
    /// — the 3σ gate CI runs on a fixed seed set.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] for noise-free specs or when the exact
    /// leg would be density-infeasible, and any error either leg produces.
    pub fn cross_validate(&self, spec: &JobSpec, sigmas: f64) -> ApiResult<CrossValidation> {
        if spec.noise().is_none() {
            return Err(ApiError::spec(
                "cross-validation needs a noisy job (attach a noise model)",
            ));
        }
        let leg = |backend: BackendKind| -> ApiResult<JobSpec> {
            let mut builder = JobSpec::builder(spec.circuit().clone())
                .level(spec.level())
                .backend(backend)
                .noise(spec.noise().expect("checked above").clone())
                .trials(spec.trials())
                .seed(spec.seed())
                .input(spec.input().clone());
            // Both legs must route identically for the comparison to hold.
            if let Some(topology) = spec.topology() {
                builder = builder.topology(topology.clone());
            }
            builder.build()
        };
        let exact_spec = leg(BackendKind::DensityMatrix)?;
        let trajectory_spec = leg(BackendKind::Trajectory)?;
        let exact = *self.run(&exact_spec)?.fidelity()?;
        let estimate = *self.run(&trajectory_spec)?.fidelity()?;
        Ok(CrossValidation::from_runs(exact, estimate, sigmas))
    }

    /// Compiles a circuit for repeated noise-free state-vector replay — the
    /// façade's handle for perf harnesses and amplitude-level verification,
    /// which need to drive the compiled kernels directly without
    /// constructing simulator types themselves.
    pub fn compile_statevector(&self, circuit: &Circuit, level: PassLevel) -> CompiledStateJob {
        let (entry, ir) = self.entry(circuit, level, None);
        CompiledStateJob {
            compiled: entry.statevector(&ir),
            ir,
        }
    }

    /// The inputs of a noise-free job: the explicit sweep's basis states,
    /// or the single configured input (seeded for the random distribution).
    fn job_inputs(&self, spec: &JobSpec) -> ApiResult<Vec<StateVector>> {
        let dim = spec.circuit().dim();
        let width = spec.circuit().width();
        if !spec.sweep().is_empty() {
            return spec
                .sweep()
                .iter()
                .map(|digits| StateVector::from_basis_state(dim, digits).map_err(ApiError::from))
                .collect();
        }
        let input = match spec.input() {
            InputState::RandomQubitSubspace => {
                let mut rng = StdRng::seed_from_u64(spec.seed());
                random_qubit_subspace_state(dim, width, &mut rng)?
            }
            InputState::AllOnes => StateVector::from_basis_state(dim, &vec![1usize; width])?,
            InputState::Basis(digits) => StateVector::from_basis_state(dim, digits)?,
        };
        Ok(vec![input])
    }
}

/// The input distribution seen by the routed (physical) circuit: an
/// explicit basis state is relabeled onto the placement's sites, so logical
/// qudit `q` starts in its requested digit wherever it was placed. The
/// all-ones and random-qubit-subspace distributions are site-symmetric —
/// every noisy run compares against the ideal evolution of the *same*
/// routed circuit on the *same* input, so relabeling them changes nothing.
fn routed_input(input: &InputState, routing: Option<&RoutingSummary>) -> InputState {
    match (routing, input) {
        (Some(summary), InputState::Basis(digits)) => {
            let mut physical = vec![0usize; digits.len()];
            for (q, &digit) in digits.iter().enumerate() {
                physical[summary.placement[q]] = digit;
            }
            InputState::Basis(physical)
        }
        _ => input.clone(),
    }
}

/// The inverse of a permutation given as `map[q] = target position`.
fn invert(map: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; map.len()];
    for (q, &site) in map.iter().enumerate() {
        inv[site] = q;
    }
    inv
}

/// Applies the qudit permutation `map` (qudit `q` moves to position
/// `map[q]`) to a density matrix by decomposing it into SWAP
/// transpositions — the density backend has no native relabel, and a
/// handful of two-qudit SWAPs is noise next to the `O(d^2n)` evolution the
/// caller just paid for.
fn permute_density(rho: &mut DensityMatrix, map: &[usize], dim: usize) {
    let inv = invert(map);
    let mut location: Vec<usize> = (0..map.len()).collect();
    let mut holds: Vec<usize> = (0..map.len()).collect();
    for target in 0..map.len() {
        let wanted = inv[target];
        let current = location[wanted];
        if current != target {
            let op = Operation::new(Gate::swap(dim), Vec::new(), vec![target, current])
                .expect("SWAP on two distinct qudits is a valid operation");
            rho.apply_operation(&op);
            let displaced = holds[target];
            holds[target] = wanted;
            holds[current] = displaced;
            location[wanted] = target;
            location[displaced] = current;
        }
    }
}

/// A circuit compiled for noise-free state-vector replay through the
/// façade — see [`Executor::compile_statevector`].
pub struct CompiledStateJob {
    compiled: Arc<CompiledCircuit>,
    ir: Arc<CompiledIr>,
}

impl CompiledStateJob {
    /// Evolves `input` through the compiled circuit, parallelizing across
    /// rayon workers when a plan's work estimate clears the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Noise`] (a state-shape mismatch) if the input's
    /// dimension or width does not match the circuit.
    pub fn run(&self, input: StateVector) -> ApiResult<StateVector> {
        self.check_shape(&input)?;
        Ok(self.compiled.run(input))
    }

    /// Evolves `input` strictly on the calling thread — the baseline the
    /// perf snapshot's sequential column measures, and the right choice
    /// when the caller already saturates the cores (one job per worker).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledStateJob::run`].
    pub fn run_sequential(&self, input: StateVector) -> ApiResult<StateVector> {
        self.check_shape(&input)?;
        Ok(self.compiled.run_sequential(input))
    }

    fn check_shape(&self, input: &StateVector) -> ApiResult<()> {
        if input.dim() != self.compiled.dim() || input.num_qudits() != self.compiled.width() {
            return Err(ApiError::Noise(
                qudit_noise::NoiseError::StateShapeMismatch {
                    expected_dim: self.compiled.dim(),
                    expected_width: self.compiled.width(),
                    actual_dim: input.dim(),
                    actual_width: input.num_qudits(),
                },
            ));
        }
        Ok(())
    }

    /// The number of kernel invocations one replay performs (the post-pass
    /// operation count).
    pub fn op_count(&self) -> usize {
        self.ir.circuit().len()
    }

    /// Resources of the compiled (post-pass) circuit.
    pub fn resources(&self) -> qudit_circuit::ResourceReport {
        self.ir.report().post
    }

    /// The cache-blocked replay segmentation as `(op count, chunk amps)`
    /// pairs — chunk = 0 for op-at-a-time stretches. Diagnostic, surfaced
    /// for the kernel microbench so it can report blocking without
    /// reaching below the façade.
    pub fn replay_segments(&self) -> Vec<(usize, usize)> {
        self.compiled.replay_segments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{Control, Gate};
    use qudit_noise::models;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn noise_free_jobs_agree_across_backends() {
        let executor = Executor::new();
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            let spec = JobSpec::builder(toffoli_fig4())
                .backend(backend)
                .input(InputState::Basis(vec![1, 1, 0]))
                .build()
                .unwrap();
            let result = executor.run(&spec).unwrap();
            let out = &result.states().unwrap()[0];
            assert!((out.probability(&[1, 1, 1]).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn structurally_equal_circuits_compile_once() {
        let executor = Executor::new();
        for seed in 0..5u64 {
            // Each iteration rebuilds "the" Toffoli from scratch.
            let spec = JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .trials(2)
                .seed(seed)
                .build()
                .unwrap();
            executor.run(&spec).unwrap();
        }
        assert_eq!(executor.cached_compilations(), 1);
    }

    #[test]
    fn noisy_job_produces_a_fidelity_with_error_bars() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc_t1_gates())
            .backend(BackendKind::DensityMatrix)
            .input(InputState::AllOnes)
            .build()
            .unwrap();
        let result = executor.run(&spec).unwrap();
        let est = result.fidelity().unwrap();
        assert!(est.mean > 0.9 && est.mean < 1.0);
        assert!(est.binomial_sigma() >= 0.0);
        // The resource report describes the lowered circuit.
        assert_eq!(result.resources.two_qudit_gates(), 3);
    }

    #[test]
    fn logical_ablation_routes_through_the_level_knob() {
        // A genuine 3-qutrit op: the logical level must be more optimistic.
        let mut c = Circuit::new(3, 3);
        for _ in 0..4 {
            c.push_controlled(
                Gate::increment(3),
                &[Control::on_one(0), Control::on_two(1)],
                &[2],
            )
            .unwrap();
        }
        let executor = Executor::new();
        let base = JobSpec::builder(c.clone())
            .noise(models::sc())
            .backend(BackendKind::DensityMatrix)
            .input(InputState::AllOnes)
            .build()
            .unwrap();
        let logical = JobSpec::builder(c)
            .noise(models::sc())
            .backend(BackendKind::DensityMatrix)
            .level(PassLevel::NoisePreserving)
            .input(InputState::AllOnes)
            .build()
            .unwrap();
        let physical = executor.run(&base).unwrap().fidelity().unwrap().mean;
        let optimistic = executor.run(&logical).unwrap().fidelity().unwrap().mean;
        assert!(
            optimistic > physical,
            "logical {optimistic} must beat physical {physical}"
        );
    }

    #[test]
    fn sweep_returns_one_output_per_input() {
        let executor = Executor::new();
        let sweep = vec![vec![0, 0, 0], vec![1, 1, 0], vec![1, 1, 1]];
        let spec = JobSpec::builder(toffoli_fig4())
            .sweep(sweep.clone())
            .build()
            .unwrap();
        let result = executor.run(&spec).unwrap();
        let states = result.states().unwrap();
        assert_eq!(states.len(), 3);
        assert!((states[1].probability(&[1, 1, 1]).unwrap() - 1.0).abs() < 1e-12);
        assert!((states[2].probability(&[1, 1, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_validation_passes_on_the_fig4_toffoli() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc_t1_gates())
            .trials(200)
            .input(InputState::AllOnes)
            .build()
            .unwrap();
        let cv = executor.cross_validate(&spec, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "trajectory {} vs exact {} exceeds bound {}",
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
    }

    #[test]
    fn a_caught_panic_does_not_disable_the_executor() {
        // Regression: the job cache used `.lock().expect("job cache
        // poisoned")`, so one panicking job while holding the lock bricked
        // the shared Executor for every later caller. Poison the mutex the
        // hard way and verify the executor keeps serving.
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .input(InputState::Basis(vec![1, 1, 0]))
            .build()
            .unwrap();
        executor.run(&spec).unwrap();

        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = executor.cache.lock().unwrap();
            panic!("job panicked while holding the cache lock");
        }));
        assert!(poison.is_err());
        assert!(executor.cache.is_poisoned(), "test must actually poison");

        // Both the metric and the run path must recover.
        assert_eq!(executor.cached_compilations(), 1);
        let result = executor.run(&spec).unwrap();
        let out = &result.states().unwrap()[0];
        assert!((out.probability(&[1, 1, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_dedup_simulates_identical_specs_once() {
        let executor = Executor::new();
        let make = |seed: u64| {
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .trials(4)
                .seed(seed)
                .input(InputState::AllOnes)
                .build()
                .unwrap()
        };
        // Six submissions, three structurally distinct specs.
        let specs = vec![make(1), make(2), make(1), make(3), make(2), make(1)];
        let before = executor.jobs_simulated();
        let deduped = executor.run_batch(&specs);
        assert_eq!(executor.jobs_simulated() - before, 3);

        // Bit-identical to the non-deduped path (fresh executor, one run
        // per spec, in order).
        let plain = Executor::new();
        for (spec, got) in specs.iter().zip(&deduped) {
            let expected = plain.run(spec).unwrap();
            assert_eq!(got.as_ref().unwrap(), &expected);
        }
        // Duplicates really share: slots 0, 2 and 5 are the same spec.
        assert_eq!(deduped[0], deduped[2]);
        assert_eq!(deduped[0], deduped[5]);
    }

    #[test]
    fn seed_sweep_shares_noise_artifacts_across_runs() {
        // Result caching off so every spec really simulates; each run still
        // finds the entry's channel compilations already built.
        let executor = Executor::with_result_cache(0);
        let make = |seed: u64| {
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .trials(2)
                .seed(seed)
                .build()
                .unwrap()
        };
        for seed in 0..4 {
            executor.run(&make(seed)).unwrap();
        }
        let stats = executor.noise_artifact_stats();
        assert_eq!(stats.sites_built, 1, "one model, one site compilation");
        assert_eq!(stats.sites_shared, 3, "later seeds reuse it");

        // A different model on the same entry builds its own set once.
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc_t1_gates())
            .trials(2)
            .build()
            .unwrap();
        executor.run(&spec).unwrap();
        executor.run(&spec).unwrap();
        let stats = executor.noise_artifact_stats();
        assert_eq!((stats.sites_built, stats.sites_shared), (2, 4));
    }

    #[test]
    fn result_cache_hit_is_bit_identical_and_skips_simulation() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(8)
            .build()
            .unwrap();
        let miss = executor.run(&spec).unwrap();
        let after_miss = executor.jobs_simulated();
        let hit = executor.run(&spec).unwrap();
        // No new simulation, and the payload is bit-identical (PartialEq
        // on f64 fields is exact equality).
        assert_eq!(executor.jobs_simulated(), after_miss);
        assert_eq!(hit, miss);
        assert_eq!(
            hit.fidelity().unwrap().mean.to_bits(),
            miss.fidelity().unwrap().mean.to_bits()
        );
        let stats = executor.result_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.trials_saved, 8);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cached_result_probe_counts_hits_but_not_misses() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(4)
            .build()
            .unwrap();
        assert!(executor.cached_result(&spec).is_none());
        // A probe miss charges nothing — the queued run pays the miss.
        assert_eq!(executor.result_cache_stats().misses, 0);
        let ran = executor.run(&spec).unwrap();
        let probed = executor.cached_result(&spec).unwrap();
        assert_eq!(probed, ran);
        let stats = executor.result_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_the_result_cache() {
        let executor = Executor::with_result_cache(0);
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(4)
            .build()
            .unwrap();
        executor.run(&spec).unwrap();
        executor.run(&spec).unwrap();
        assert_eq!(executor.jobs_simulated(), 2);
        assert_eq!(
            executor.result_cache_stats(),
            ResultCacheStats {
                capacity: 0,
                ..ResultCacheStats::default()
            }
        );
        assert!(executor.cached_result(&spec).is_none());
    }

    #[test]
    fn result_cache_evicts_least_recently_used_at_capacity() {
        let executor = Executor::with_result_cache(2);
        let make = |seed: u64| {
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .trials(2)
                .seed(seed)
                .input(InputState::AllOnes)
                .build()
                .unwrap()
        };
        executor.run(&make(1)).unwrap();
        executor.run(&make(2)).unwrap();
        // Touch seed 1 so seed 2 is the LRU victim when seed 3 arrives.
        executor.run(&make(1)).unwrap();
        executor.run(&make(3)).unwrap();
        assert_eq!(executor.result_cache_stats().entries, 2);
        assert!(executor.cached_result(&make(1)).is_some());
        assert!(executor.cached_result(&make(2)).is_none());
        assert!(executor.cached_result(&make(3)).is_some());
    }

    #[test]
    fn adaptive_precision_runs_fewer_trials_than_the_fixed_budget() {
        let executor = Executor::new();
        let base = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(2048)
            .build()
            .unwrap();
        let adaptive = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(2048)
            .precision(qudit_noise::Precision::TargetSigma {
                sigma: 0.02,
                min_trials: 8,
                max_trials: 2048,
            })
            .build()
            .unwrap();
        let fixed = executor.run(&base).unwrap();
        let early = executor.run(&adaptive).unwrap();
        let trials = early.trials_run().unwrap();
        assert!(trials < 2048, "adaptive ran the whole budget ({trials})");
        assert!(early.fidelity().unwrap().conservative_sigma() <= 0.02);
        assert_eq!(fixed.trials_run(), Some(2048));
        // Distinct wire keys: the two specs must not collide in the cache.
        assert_ne!(fixed, early);
    }

    #[test]
    fn expired_deadline_maps_to_deadline_exceeded() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(50_000)
            .build()
            .unwrap();
        let token = qudit_noise::CancelToken::new();
        token.cancel();
        assert_eq!(
            executor.run_with(&spec, &token),
            Err(ApiError::DeadlineExceeded)
        );
    }

    /// A star-interaction circuit: qudit 0 talks to every other qudit —
    /// unroutable without SWAPs on any bounded-degree topology.
    fn star_circuit(width: usize) -> Circuit {
        let mut c = Circuit::new(3, width);
        for q in 1..width {
            c.push_controlled(Gate::x(3), &[Control::on_one(0)], &[q])
                .unwrap();
        }
        c
    }

    #[test]
    fn routed_noise_free_job_matches_the_unrouted_outputs() {
        // |10000⟩ through the star circuit flips every other qudit to |1⟩;
        // routed on a line (which needs SWAPs) the un-embedded output must
        // land on the same logical basis labels, for both backends.
        let executor = Executor::new();
        for backend in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            let spec = |topology: Option<Topology>| {
                let mut builder = JobSpec::builder(star_circuit(5))
                    .backend(backend)
                    .input(InputState::Basis(vec![1, 0, 0, 0, 0]));
                if let Some(t) = topology {
                    builder = builder.topology(t);
                }
                builder.build().unwrap()
            };
            let base = executor.run(&spec(None)).unwrap();
            let routed = executor
                .run(&spec(Some(Topology::linear(5).unwrap())))
                .unwrap();
            assert!(routed.resources.routed.unwrap().inserted_swaps > 0);
            assert!(base.resources.routed.is_none());
            let want = &base.states().unwrap()[0];
            let got = &routed.states().unwrap()[0];
            for digits in [vec![1usize, 1, 1, 1, 1], vec![0usize; 5]] {
                assert!(
                    (want.probability(&digits).unwrap() - got.probability(&digits).unwrap()).abs()
                        < 1e-12,
                    "{backend:?} disagrees on {digits:?}"
                );
            }
        }
    }

    #[test]
    fn routed_and_unrouted_jobs_get_distinct_compilations() {
        let executor = Executor::new();
        let base = JobSpec::builder(star_circuit(4)).build().unwrap();
        let routed = JobSpec::builder(star_circuit(4))
            .topology(Topology::ring(4).unwrap())
            .build()
            .unwrap();
        executor.run(&base).unwrap();
        executor.run(&routed).unwrap();
        assert_eq!(executor.cached_compilations(), 2);
        // Distinct wire keys keep them apart in the result cache too.
        assert_ne!(base.to_json(), routed.to_json());
    }

    #[test]
    fn routed_noisy_job_runs_and_reports_routed_costs() {
        let executor = Executor::new();
        let spec = JobSpec::builder(star_circuit(4))
            .noise(models::sc())
            .trials(8)
            .input(InputState::Basis(vec![1, 1, 0, 0]))
            .topology(Topology::linear(4).unwrap())
            .build()
            .unwrap();
        let result = executor.run(&spec).unwrap();
        let est = result.fidelity().unwrap();
        assert!(est.mean > 0.0 && est.mean <= 1.0);
        let routed = result.resources.routed.unwrap();
        assert!(routed.inserted_swaps > 0);
        assert!(routed.routed_two_qudit_gates > 3);
    }

    #[test]
    fn cross_validation_carries_the_topology_into_both_legs() {
        let executor = Executor::new();
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc_t1_gates())
            .trials(100)
            .input(InputState::AllOnes)
            .topology(Topology::linear(3).unwrap())
            .build()
            .unwrap();
        let cv = executor.cross_validate(&spec, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "trajectory {} vs exact {} exceeds bound {}",
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
    }

    #[test]
    fn compiled_state_job_rejects_bad_shapes() {
        let executor = Executor::new();
        let job = executor.compile_statevector(&toffoli_fig4(), PassLevel::Ideal);
        assert!(job.op_count() >= 1);
        let bad = StateVector::from_basis_state(3, &[1, 1]).unwrap();
        assert!(job.run(bad).is_err());
        let good = StateVector::from_basis_state(3, &[1, 1, 0]).unwrap();
        let out = job.run(good).unwrap();
        assert!((out.probability(&[1, 1, 1]).unwrap() - 1.0).abs() < 1e-12);
    }
}
