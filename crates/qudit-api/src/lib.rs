//! # qudit-api
//!
//! The public entry point of the qutrits workspace: a builder-validated job
//! description, a compiling/caching executor, batch execution, and a JSON
//! wire format — the façade every consumer (examples, bench binaries,
//! verification helpers, a future server front end) goes through instead of
//! wiring simulators together by hand.
//!
//! * [`JobSpec`] — one validated description of a run: circuit + compiler
//!   [`PassLevel`] + [`BackendKind`] + optional
//!   [`NoiseModel`] + trials/seed + input (or an explicit basis-state
//!   sweep). Constructed through [`JobSpec::builder`]; invalid combinations
//!   are rejected with a typed [`ApiError`] at build time, not mid-run.
//! * [`Executor`] — compiles once per structurally distinct (circuit,
//!   level) pair and runs jobs; [`Executor::run_batch`] fans a slice of
//!   jobs out across rayon workers with results bit-identical to running
//!   them sequentially.
//! * [`ExecutionResult`] — the typed outcome: output states for noise-free
//!   jobs, a [`FidelityEstimate`] with
//!   binomial error bar for noisy jobs, plus the compiled circuit's
//!   [`ResourceReport`].
//! * Wire format — [`JobSpec`] and [`ExecutionResult`] round-trip through
//!   JSON ([`JobSpec::to_json`] / [`JobSpec::from_json`]), so jobs can be
//!   shipped to a service, queued, or checked in as golden files.
//!
//! ## Example
//!
//! ```
//! use qudit_api::{Executor, JobSpec};
//! use qudit_circuit::{Circuit, Control, Gate};
//! use qudit_noise::models;
//!
//! // The paper's Figure 4 Toffoli-via-qutrits under the SC noise model.
//! let mut circuit = Circuit::new(3, 3);
//! circuit.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
//! circuit.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])?;
//! circuit.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])?;
//!
//! let job = JobSpec::builder(circuit)
//!     .noise(models::sc())
//!     .trials(40)
//!     .seed(2019)
//!     .build()?;
//!
//! let executor = Executor::new();
//! let estimate = executor.run(&job)?.fidelity()?.clone();
//! assert!(estimate.mean > 0.9);
//!
//! // The same job as JSON — the wire format a server front end consumes.
//! let wire = job.to_json();
//! assert_eq!(JobSpec::from_json(&wire)?, job);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cli;
mod error;
mod executor;
mod result;
mod spec;

pub use cli::CliArgs;
pub use error::{ApiError, ApiResult};
pub use executor::{CompiledStateJob, Executor, ResultCacheStats};
pub use result::{ExecutionResult, Outcome, OutputState};
pub use spec::{JobSpec, JobSpecBuilder, DENSITY_MAX_ENTRIES};

// Re-export the vocabulary types a façade caller needs, so consumers can
// depend on `qudit-api` alone.
pub use qudit_circuit::{Circuit, PassLevel, ResourceReport, RoutedCosts, Topology, TopologyKind};
pub use qudit_noise::{
    BackendKind, CancelToken, CrossValidation, FidelityEstimate, InputState, NoiseArtifactStats,
    NoiseModel, Precision,
};

/// The parameterized algorithm library (`qudit-algos`): QFT, adders, a
/// multiplier, phase estimation and GHZ/W preparation — every generator
/// returns a [`Circuit`] ready for [`JobSpec::builder`].
pub use qudit_algos as algos;
