//! The validated job description and its JSON wire format.

use crate::cli::CliArgs;
use crate::error::{ApiError, ApiResult};
use qudit_circuit::{Circuit, PassLevel, Topology};
use qudit_noise::{BackendKind, InputState, NoiseModel, Precision};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The largest density matrix a job may allocate per run: `3^14` entries
/// (7 qutrits, ~76 MB). Beyond this, random-input averaging fans one ρ out
/// per rayon worker and a laptop run degrades into swapping or an OOM kill,
/// so [`JobSpec::builder`] rejects the spec with a typed error instead.
pub const DENSITY_MAX_ENTRIES: u128 = 4_782_969; // 3^14

/// One validated description of a simulation job.
///
/// A spec is either **noisy** (a [`NoiseModel`] is attached: the job
/// estimates the mean fidelity over `trials` seeded runs of the configured
/// input distribution) or **noise-free** (no model: the job evolves the
/// configured input — or each basis state of an explicit `sweep` — and
/// returns the output states).
///
/// Construct through [`JobSpec::builder`] (or [`JobSpec::from_cli_args`] /
/// [`JobSpec::from_json`], which funnel into the same validation), so every
/// spec that exists is runnable: bad level/noise combinations, out-of-range
/// basis digits and infeasible density-matrix widths are rejected with a
/// typed [`ApiError`] instead of panicking mid-run.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    circuit: Circuit,
    level: PassLevel,
    backend: BackendKind,
    noise: Option<NoiseModel>,
    trials: usize,
    seed: u64,
    input: InputState,
    sweep: Vec<Vec<usize>>,
    precision: Precision,
    topology: Option<Topology>,
}

impl JobSpec {
    /// Starts building a spec for `circuit` with the defaults: trajectory
    /// backend, 100 trials, seed 2019, random-qubit-subspace inputs, no
    /// noise, and a pass level resolved at build time (`Physical` for noisy
    /// jobs, `Ideal` for noise-free ones).
    pub fn builder(circuit: Circuit) -> JobSpecBuilder {
        JobSpecBuilder {
            circuit,
            level: None,
            backend: BackendKind::Trajectory,
            noise: None,
            trials: 100,
            seed: 2019,
            input: InputState::RandomQubitSubspace,
            sweep: Vec::new(),
            precision: Precision::FixedTrials,
            topology: None,
        }
    }

    /// Builds a spec from `circuit`, an optional noise model, and the
    /// shared CLI surface: `--backend`, `--level`, `--trials <n>` and
    /// `--seed <n>` — the one helper every bench binary parses its job
    /// through (replacing the per-binary flag-parsing copies).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] on an unparsable flag or an invalid
    /// resulting spec.
    pub fn from_cli_args(
        circuit: Circuit,
        noise: Option<NoiseModel>,
        args: &CliArgs,
    ) -> ApiResult<JobSpec> {
        let mut builder = JobSpec::builder(circuit);
        if let Some(model) = noise {
            builder = builder.noise(model);
        }
        builder.cli(args)?.build()
    }

    /// The circuit to run.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiler pass level the job compiles at.
    pub fn level(&self) -> PassLevel {
        self.level
    }

    /// The simulation backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The noise model, if this is a fidelity job.
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// Number of Monte Carlo trials (noisy jobs).
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Base RNG seed; trial `i` uses `seed + i`.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The input-state distribution.
    pub fn input(&self) -> &InputState {
        &self.input
    }

    /// The explicit basis-state sweep (noise-free jobs); empty when the
    /// single configured input runs instead.
    pub fn sweep(&self) -> &[Vec<usize>] {
        &self.sweep
    }

    /// How many trials a noisy run executes: the fixed [`JobSpec::trials`]
    /// count (the default), or adaptive early stopping toward a target
    /// error bar.
    pub fn precision(&self) -> &Precision {
        &self.precision
    }

    /// The hardware connectivity the job is routed for; `None` means
    /// all-to-all (no routing pass runs).
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Serializes the spec to compact JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Serializes the spec to human-readable JSON (deterministic output —
    /// suitable for golden files).
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a spec from JSON, running the full builder validation — a
    /// deserialized spec satisfies exactly the invariants a
    /// programmatically built one does.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Wire`] on malformed JSON or a payload of the
    /// wrong shape, and [`ApiError::Spec`] on a well-formed but invalid
    /// job description (so a server front end can distinguish a malformed
    /// request from a fixable one).
    pub fn from_json(text: &str) -> ApiResult<JobSpec> {
        let value = serde::json::parse(text).map_err(ApiError::from)?;
        JobSpec::from_wire_value(&value)
    }

    /// Rebuilds a spec from a parsed wire value: field/shape failures are
    /// [`ApiError::Wire`], builder validation failures keep their own typed
    /// variant.
    fn from_wire_value(value: &Value) -> ApiResult<JobSpec> {
        let circuit = Circuit::from_value(value.field("circuit")?)?;
        let mut builder = JobSpec::builder(circuit)
            .level(PassLevel::from_value(value.field("level")?)?)
            .backend(BackendKind::from_value(value.field("backend")?)?)
            .trials(value.field("trials")?.as_usize()?)
            .seed(value.field("seed")?.as_u64()?)
            .input(InputState::from_value(value.field("input")?)?)
            .sweep(Vec::<Vec<usize>>::from_value(value.field("sweep")?)?);
        if let Some(model) = Option::<NoiseModel>::from_value(value.field("noise")?)? {
            builder = builder.noise(model);
        }
        // Absent on pre-precision payloads: those parse as FixedTrials and
        // run bit-identically to what they always did.
        if let Some(precision) = value.get("precision") {
            builder = builder.precision(Precision::from_value(precision)?);
        }
        // Absent on pre-routing payloads (and on every unrouted job): those
        // compile all-to-all and run bit-identically to what they always did.
        if let Some(topology) = value.get("topology") {
            builder = builder.topology(Topology::from_value(topology)?);
        }
        builder.build()
    }
}

/// Builder for [`JobSpec`] — see [`JobSpec::builder`].
#[derive(Clone, Debug)]
pub struct JobSpecBuilder {
    circuit: Circuit,
    level: Option<PassLevel>,
    backend: BackendKind,
    noise: Option<NoiseModel>,
    trials: usize,
    seed: u64,
    input: InputState,
    sweep: Vec<Vec<usize>>,
    precision: Precision,
    topology: Option<Topology>,
}

impl JobSpecBuilder {
    /// Sets the compiler pass level. When not set, noisy jobs default to
    /// [`PassLevel::Physical`] and noise-free jobs to [`PassLevel::Ideal`].
    pub fn level(mut self, level: PassLevel) -> Self {
        self.level = Some(level);
        self
    }

    /// Selects the simulation backend.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a noise model, turning the job into a fidelity estimate.
    pub fn noise(mut self, model: NoiseModel) -> Self {
        self.noise = Some(model);
        self
    }

    /// Sets the Monte Carlo trial count.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the input-state distribution.
    pub fn input(mut self, input: InputState) -> Self {
        self.input = input;
        self
    }

    /// Sets an explicit basis-state sweep: the job evolves every listed
    /// basis state through one circuit compilation (noise-free jobs only —
    /// this is what exhaustive verification runs on).
    pub fn sweep(mut self, states: Vec<Vec<usize>>) -> Self {
        self.sweep = states;
        self
    }

    /// Selects how many trials a noisy run executes: the fixed
    /// [`JobSpecBuilder::trials`] count (the default) or adaptive early
    /// stopping toward a target error bar, with [`JobSpec::trials`] ignored
    /// in favour of the precision's own bounds.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Routes the job for a hardware connectivity graph: the compiler maps
    /// the circuit's qudits onto the topology's sites and inserts
    /// qudit-SWAPs so every two-qudit interaction acts on adjacent sites.
    /// When not set, the job compiles for all-to-all connectivity and no
    /// routing pass runs.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Applies the shared CLI overrides (`--backend`, `--level`,
    /// `--trials`, `--seed`) on top of whatever the builder holds.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] on an unparsable flag value.
    pub fn cli(mut self, args: &CliArgs) -> ApiResult<Self> {
        self.backend = args.backend_or(self.backend)?;
        if let Some(level) = args.level()? {
            self.level = Some(level);
        }
        self.trials = args.flag_or("--trials", self.trials)?;
        self.seed = args.flag_or("--seed", self.seed)?;
        Ok(self)
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] when:
    ///
    /// * a noise model is attached at an optimizing pass level (`Ideal` /
    ///   `PhysicalIdeal` change which errors would be charged);
    /// * `trials` is zero;
    /// * a basis input or sweep entry has the wrong width or digits `>=
    ///   dim`;
    /// * a sweep is combined with a noise model;
    /// * an adaptive [`Precision::TargetSigma`] has a non-finite or
    ///   non-positive `sigma`, `min_trials` of zero, `min_trials >
    ///   max_trials`, or is attached to a noise-free job (nothing is
    ///   sampled, so there is no error bar to drive);
    /// * a noise model's optional channels are invalid for the circuit's
    ///   dimension (e.g. leakage on a `d = 2` circuit, or a non-finite
    ///   rate);
    /// * a topology's site count differs from the circuit's width;
    /// * the density-matrix backend would need more than
    ///   [`DENSITY_MAX_ENTRIES`] entries for this circuit.
    pub fn build(self) -> ApiResult<JobSpec> {
        let level = self.level.unwrap_or(if self.noise.is_some() {
            PassLevel::Physical
        } else {
            PassLevel::Ideal
        });
        if self.noise.is_some() && !level.supports_noise() {
            return Err(ApiError::spec(format!(
                "pass level {:?} optimizes across error sites; noisy jobs support \
                 \"physical\" and \"noise-preserving\" (logical) only",
                level.name()
            )));
        }
        if self.trials == 0 {
            return Err(ApiError::spec("trials must be at least 1"));
        }
        if self.noise.is_some() && !self.sweep.is_empty() {
            return Err(ApiError::spec(
                "an explicit basis sweep applies to noise-free jobs only; noisy jobs \
                 draw inputs from the configured distribution",
            ));
        }
        if let Precision::TargetSigma {
            sigma,
            min_trials,
            max_trials,
        } = self.precision
        {
            if self.noise.is_none() {
                return Err(ApiError::spec(
                    "adaptive precision applies to noisy jobs only; a noise-free job \
                     evolves states exactly and has no error bar to drive",
                ));
            }
            if !sigma.is_finite() || sigma <= 0.0 {
                return Err(ApiError::spec(format!(
                    "target sigma must be a finite positive number, got {sigma}"
                )));
            }
            if min_trials == 0 {
                return Err(ApiError::spec("min_trials must be at least 1"));
            }
            if min_trials > max_trials {
                return Err(ApiError::spec(format!(
                    "min_trials {min_trials} exceeds max_trials {max_trials}"
                )));
            }
        }
        let dim = self.circuit.dim();
        let width = self.circuit.width();
        if let Some(model) = &self.noise {
            model
                .validate_channels(dim)
                .map_err(|e| ApiError::spec(format!("invalid noise channel: {e}")))?;
        }
        if let Some(topology) = &self.topology {
            if topology.sites() != width {
                return Err(ApiError::spec(format!(
                    "topology {topology} has {} site(s), but the circuit has width {width}",
                    topology.sites()
                )));
            }
        }
        let check_digits = |what: &str, digits: &[usize]| -> ApiResult<()> {
            if digits.len() != width {
                return Err(ApiError::spec(format!(
                    "{what} has {} digit(s), but the circuit has width {width}",
                    digits.len()
                )));
            }
            if let Some(&bad) = digits.iter().find(|&&d| d >= dim) {
                return Err(ApiError::spec(format!(
                    "{what} contains digit {bad}, which exceeds dimension {dim}"
                )));
            }
            Ok(())
        };
        if let InputState::Basis(digits) = &self.input {
            check_digits("the basis input", digits)?;
        }
        for digits in &self.sweep {
            check_digits("a sweep entry", digits)?;
        }
        if self.backend == BackendKind::DensityMatrix {
            // checked_pow: an overflowing width is by definition infeasible,
            // and wrapping must not let it sneak past the threshold.
            let entries = (dim as u128).checked_pow(2 * width as u32);
            if entries.is_none_or(|e| e > DENSITY_MAX_ENTRIES) {
                return Err(ApiError::spec(format!(
                    "the density-matrix backend would need {} entries (~{} MB) for this \
                     {width}-qudit d={dim} circuit; reduce the width (≤ 7 qutrits is \
                     feasible) or use the trajectory backend",
                    entries.map_or("> u128::MAX".to_string(), |e| e.to_string()),
                    entries.map_or("huge".to_string(), |e| (e.saturating_mul(16)
                        / (1024 * 1024))
                        .to_string()),
                )));
            }
        }
        Ok(JobSpec {
            circuit: self.circuit,
            level,
            backend: self.backend,
            noise: self.noise,
            trials: self.trials,
            seed: self.seed,
            input: self.input,
            sweep: self.sweep,
            precision: self.precision,
            topology: self.topology,
        })
    }
}

impl Serialize for JobSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("circuit", self.circuit.to_value()),
            ("level", self.level.to_value()),
            ("backend", self.backend.to_value()),
            ("noise", self.noise.to_value()),
            ("trials", self.trials.to_value()),
            ("seed", self.seed.to_value()),
            ("input", self.input.to_value()),
            ("sweep", self.sweep.to_value()),
            ("precision", self.precision.to_value()),
        ];
        // Only-when-Some: unrouted specs keep their pre-routing byte layout,
        // so golden files, result-cache keys and batch-dedup keys are
        // untouched by the field's existence.
        if let Some(topology) = &self.topology {
            fields.push(("topology", topology.to_value()));
        }
        Value::object(fields)
    }
}

impl Deserialize for JobSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        JobSpec::from_wire_value(value).map_err(|e| SerdeError::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::{Control, Gate};
    use qudit_noise::models;

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn defaults_resolve_by_noise_presence() {
        let noisefree = JobSpec::builder(toffoli_fig4()).build().unwrap();
        assert_eq!(noisefree.level(), PassLevel::Ideal);
        let noisy = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .build()
            .unwrap();
        assert_eq!(noisy.level(), PassLevel::Physical);
    }

    #[test]
    fn noisy_jobs_reject_optimizing_levels() {
        for level in [PassLevel::Ideal, PassLevel::PhysicalIdeal] {
            let err = JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .level(level)
                .build()
                .unwrap_err();
            assert!(matches!(err, ApiError::Spec { .. }), "{err}");
        }
        // The logical ablation level is allowed.
        JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .level(PassLevel::NoisePreserving)
            .build()
            .unwrap();
    }

    #[test]
    fn invalid_noise_channels_are_rejected_at_build_time() {
        // Leakage needs a |2⟩ level: invalid on a qubit circuit.
        let mut qubit_circuit = Circuit::new(2, 1);
        qubit_circuit.push_gate(Gate::x(2), &[0]).unwrap();
        let err = JobSpec::builder(qubit_circuit)
            .noise(models::sc().with_leakage(1e-4))
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::Spec { .. }), "{err}");
        // Non-finite rates are rejected regardless of dimension.
        let err = JobSpec::builder(toffoli_fig4())
            .noise(models::sc().with_crosstalk(f64::NAN))
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::Spec { .. }), "{err}");
        // Valid channels on a qutrit circuit build fine.
        JobSpec::builder(toffoli_fig4())
            .noise(models::sc().with_leakage(1e-4).with_overrotation(0.01))
            .build()
            .unwrap();
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(JobSpec::builder(toffoli_fig4()).trials(0).build().is_err());
        assert!(JobSpec::builder(toffoli_fig4())
            .input(InputState::Basis(vec![1, 1]))
            .build()
            .is_err());
        assert!(JobSpec::builder(toffoli_fig4())
            .input(InputState::Basis(vec![1, 1, 3]))
            .build()
            .is_err());
        assert!(JobSpec::builder(toffoli_fig4())
            .sweep(vec![vec![0, 0, 0], vec![0, 3, 0]])
            .build()
            .is_err());
        assert!(JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .sweep(vec![vec![0, 0, 0]])
            .build()
            .is_err());
    }

    #[test]
    fn density_backend_rejects_infeasible_widths() {
        // 8 qutrits → 3^16 ≈ 43M entries (~690 MB per ρ): refuse loudly.
        let circuit = Circuit::new(3, 8);
        let err = JobSpec::builder(circuit)
            .backend(BackendKind::DensityMatrix)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("density-matrix"), "{err}");
        // 7 qutrits is within the documented bound.
        JobSpec::builder(Circuit::new(3, 7))
            .backend(BackendKind::DensityMatrix)
            .build()
            .unwrap();
    }

    #[test]
    fn cli_overrides_apply() {
        let args = CliArgs::new(
            [
                "--backend",
                "density",
                "--trials",
                "7",
                "--seed",
                "42",
                "--level",
                "logical",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        let spec = JobSpec::from_cli_args(toffoli_fig4(), Some(models::sc()), &args).unwrap();
        assert_eq!(spec.backend(), BackendKind::DensityMatrix);
        assert_eq!(spec.trials(), 7);
        assert_eq!(spec.seed(), 42);
        assert_eq!(spec.level(), PassLevel::NoisePreserving);
    }

    #[test]
    fn target_sigma_is_validated() {
        let adaptive = |sigma, min_trials, max_trials| Precision::TargetSigma {
            sigma,
            min_trials,
            max_trials,
        };
        // Valid on a noisy job.
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .precision(adaptive(5e-3, 16, 4096))
            .build()
            .unwrap();
        assert_eq!(*spec.precision(), adaptive(5e-3, 16, 4096));
        // Rejected on a noise-free job and on malformed bounds.
        for builder in [
            JobSpec::builder(toffoli_fig4()).precision(adaptive(5e-3, 16, 4096)),
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .precision(adaptive(0.0, 16, 4096)),
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .precision(adaptive(f64::NAN, 16, 4096)),
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .precision(adaptive(5e-3, 0, 4096)),
            JobSpec::builder(toffoli_fig4())
                .noise(models::sc())
                .precision(adaptive(5e-3, 64, 16)),
        ] {
            let err = builder.build().unwrap_err();
            assert!(matches!(err, ApiError::Spec { .. }), "{err}");
        }
    }

    #[test]
    fn wire_payload_without_precision_parses_as_fixed_trials() {
        // A pre-precision payload — exactly what an old client or golden
        // file sends. Strip the new field from a current serialization.
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .trials(24)
            .build()
            .unwrap();
        let json = spec
            .to_json()
            .replace(",\"precision\":{\"kind\":\"fixed\"}", "");
        assert!(!json.contains("precision"), "field not stripped: {json}");
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(*back.precision(), Precision::FixedTrials);
    }

    #[test]
    fn topology_must_match_the_circuit_width() {
        let err = JobSpec::builder(toffoli_fig4())
            .topology(Topology::linear(5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::Spec { .. }), "{err}");
        let spec = JobSpec::builder(toffoli_fig4())
            .topology(Topology::ring(3).unwrap())
            .build()
            .unwrap();
        assert_eq!(spec.topology().unwrap().sites(), 3);
    }

    #[test]
    fn topology_round_trips_and_unrouted_specs_omit_the_field() {
        let routed = JobSpec::builder(toffoli_fig4())
            .noise(models::sc())
            .topology(Topology::linear(3).unwrap())
            .build()
            .unwrap();
        let back = JobSpec::from_json(&routed.to_json()).unwrap();
        assert_eq!(back, routed);
        assert_eq!(back.topology(), Some(&Topology::linear(3).unwrap()));
        // An unrouted spec's wire form has no topology key at all — the
        // pre-routing byte layout (golden files, cache keys) is preserved.
        let unrouted = JobSpec::builder(toffoli_fig4()).build().unwrap();
        assert!(!unrouted.to_json().contains("topology"));
        assert_eq!(JobSpec::from_json(&unrouted.to_json()).unwrap(), unrouted);
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let spec = JobSpec::builder(toffoli_fig4())
            .noise(models::sc_t1_gates())
            .trials(40)
            .seed(7)
            .input(InputState::AllOnes)
            .precision(Precision::TargetSigma {
                sigma: 5e-3,
                min_trials: 8,
                max_trials: 512,
            })
            .build()
            .unwrap();
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let back = JobSpec::from_json(&spec.to_json_pretty()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn json_deserialization_revalidates_with_typed_errors() {
        // A wire-level spec with zero trials must be rejected even though
        // the JSON itself is well-formed — and as a *spec* error, so a
        // server can tell it apart from a malformed payload.
        let spec = JobSpec::builder(toffoli_fig4()).build().unwrap();
        let tampered = spec.to_json().replace("\"trials\":100", "\"trials\":0");
        assert!(matches!(
            JobSpec::from_json(&tampered).unwrap_err(),
            ApiError::Spec { .. }
        ));
        // Whereas truncated JSON is a wire error.
        assert!(matches!(
            JobSpec::from_json("{\"circuit\":").unwrap_err(),
            ApiError::Wire { .. }
        ));
    }
}
