//! Shared `--key value` CLI parsing for the bench binaries and examples —
//! the one implementation replacing the per-binary `parse_flag` /
//! `parse_flag_or` / `backend_from_args` copies that used to live in the
//! bench crate.

use crate::error::{ApiError, ApiResult};
use qudit_circuit::PassLevel;
use qudit_noise::BackendKind;

/// A parsed argument list with typed `--key value` accessors.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    args: Vec<String>,
}

impl CliArgs {
    /// Captures the process arguments (skipping the program name).
    pub fn from_env() -> Self {
        CliArgs {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Wraps an explicit argument list.
    pub fn new(args: Vec<String>) -> Self {
        CliArgs { args }
    }

    /// The raw value following `--key`, if present.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Whether the bare switch `key` is present.
    pub fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// The value following `--key`: `Ok(None)` when the flag is absent, an
    /// error when the flag is present but its value is missing (a trailing
    /// `--key` must not silently run the default).
    fn value_of(&self, key: &str) -> ApiResult<Option<&str>> {
        match self.flag(key) {
            Some(raw) => Ok(Some(raw)),
            None if self.has(key) => {
                Err(ApiError::spec(format!("flag {key} is missing its value")))
            }
            None => Ok(None),
        }
    }

    /// Parses `--key value` as a `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] when the flag is present but its value is
    /// missing or does not parse — a typo fails loudly instead of silently
    /// running the default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> ApiResult<T> {
        match self.value_of(key)? {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ApiError::spec(format!("flag {key} has invalid value {raw:?}"))),
        }
    }

    /// Parses the shared `--backend` switch, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] (listing the accepted values) on an
    /// unrecognised backend name or a missing value.
    pub fn backend_or(&self, default: BackendKind) -> ApiResult<BackendKind> {
        match self.value_of("--backend")? {
            None => Ok(default),
            Some(raw) => BackendKind::from_flag(raw).ok_or_else(|| {
                ApiError::spec(format!(
                    "unknown backend {raw:?}; expected \"trajectory\" or \"density\""
                ))
            }),
        }
    }

    /// Parses the shared `--level` switch: `Ok(None)` when absent, so
    /// callers keep their own default. The single parse point —
    /// [`JobSpecBuilder::cli`](crate::JobSpecBuilder::cli) and
    /// [`CliArgs::level_or`] both route through it.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] on an unrecognised level name.
    pub fn level(&self) -> ApiResult<Option<PassLevel>> {
        match self.value_of("--level")? {
            None => Ok(None),
            Some(raw) => PassLevel::from_flag(raw).map(Some).ok_or_else(|| {
                ApiError::spec(format!(
                    "unknown pass level {raw:?}; expected \"physical\", \"logical\", \
                     \"ideal\" or \"physical-ideal\""
                ))
            }),
        }
    }

    /// Parses the shared `--level` switch, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Spec`] on an unrecognised level name.
    pub fn level_or(&self, default: PassLevel) -> ApiResult<PassLevel> {
        Ok(self.level()?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_parse_with_defaults() {
        let a = args(&["--controls", "9", "--trials", "40"]);
        assert_eq!(a.flag_or("--controls", 5usize).unwrap(), 9);
        assert_eq!(a.flag_or("--trials", 100usize).unwrap(), 40);
        assert_eq!(a.flag_or("--seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn invalid_values_fail_loudly() {
        let a = args(&["--trials", "many"]);
        assert!(a.flag_or("--trials", 100usize).is_err());
        let a = args(&["--backend", "qft"]);
        assert!(a.backend_or(BackendKind::Trajectory).is_err());
        let a = args(&["--level", "turbo"]);
        assert!(a.level_or(PassLevel::Physical).is_err());
    }

    #[test]
    fn trailing_flag_without_value_fails_instead_of_defaulting() {
        for a in [args(&["--trials"]), args(&["--controls", "5", "--trials"])] {
            assert!(a.flag_or("--trials", 100usize).is_err());
        }
        assert!(args(&["--backend"])
            .backend_or(BackendKind::Trajectory)
            .is_err());
        assert!(args(&["--level"]).level_or(PassLevel::Physical).is_err());
    }

    #[test]
    fn backend_and_level_parse() {
        let a = args(&["--backend", "density", "--level", "logical"]);
        assert_eq!(
            a.backend_or(BackendKind::Trajectory).unwrap(),
            BackendKind::DensityMatrix
        );
        assert_eq!(
            a.level_or(PassLevel::Physical).unwrap(),
            PassLevel::NoisePreserving
        );
        let none = args(&[]);
        assert_eq!(
            none.backend_or(BackendKind::Trajectory).unwrap(),
            BackendKind::Trajectory
        );
    }
}
