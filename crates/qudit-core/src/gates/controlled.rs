//! Builders for controlled gate matrices with arbitrary control levels.
//!
//! For qubits a control "activates" when the control qubit is |1⟩; for
//! qutrits the paper's circuits condition on |1⟩ (red controls) or |2⟩ (blue
//! controls), and the incrementer additionally uses |0⟩ controls. These
//! builders produce the full matrix of a controlled operation over the
//! combined control ⊗ target space, with the controls ordered before the
//! target (most-significant first).

use crate::complex::Complex;
use crate::matrix::CMatrix;

/// Builds the matrix of a singly-controlled gate.
///
/// The resulting matrix acts on a two-qudit space ordered
/// `control ⊗ target`; the `target_gate` is applied when the control qudit
/// (of dimension `control_dim`) is in basis state `control_level`.
///
/// # Panics
///
/// Panics if `control_level >= control_dim` or `target_gate` is not square.
///
/// # Examples
///
/// ```
/// use qudit_core::gates::{controlled_matrix, qubit};
///
/// // An ordinary CNOT: control dimension 2, activate on |1>.
/// let cnot = controlled_matrix(2, 1, &qubit::x());
/// assert!(cnot.is_unitary(1e-12));
/// ```
pub fn controlled_matrix(
    control_dim: usize,
    control_level: usize,
    target_gate: &CMatrix,
) -> CMatrix {
    controlled_matrix_multi(&[(control_dim, control_level)], target_gate)
}

/// Builds the matrix of a multiply-controlled gate.
///
/// `controls` is a list of `(dimension, activation_level)` pairs ordered from
/// the most significant qudit downward; the target space comes last. The
/// `target_gate` is applied only when *every* control is in its activation
/// level.
///
/// # Panics
///
/// Panics if any activation level is out of range or `target_gate` is not
/// square.
pub fn controlled_matrix_multi(controls: &[(usize, usize)], target_gate: &CMatrix) -> CMatrix {
    assert!(target_gate.is_square(), "target gate must be square");
    let t = target_gate.rows();
    let control_space: usize = controls.iter().map(|&(d, _)| d).product();
    for &(d, level) in controls {
        assert!(
            level < d,
            "control level {level} out of range for dimension {d}"
        );
    }
    let n = control_space * t;
    let mut out = CMatrix::identity(n);

    // The "active" control block index within the control space.
    let mut active_index = 0usize;
    for &(d, level) in controls {
        active_index = active_index * d + level;
    }

    let base = active_index * t;
    for r in 0..t {
        for c in 0..t {
            out.set(base + r, base + c, target_gate.get(r, c));
        }
    }
    // Clear the identity diagonal inside the active block where the gate has
    // zero entries (identity was seeded above).
    for r in 0..t {
        if target_gate.get(r, r) == Complex::ZERO {
            // already overwritten by the loop above; nothing to do, but keep
            // the branch to document intent
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{qubit, qutrit};

    const TOL: f64 = 1e-10;

    #[test]
    fn cnot_truth_table() {
        let cnot = controlled_matrix(2, 1, &qubit::x());
        // Basis order: |control, target> → index 2*control + target.
        let perm = cnot.as_permutation(TOL).expect("cnot is a permutation");
        assert_eq!(perm, vec![0, 1, 3, 2]);
    }

    #[test]
    fn zero_controlled_not() {
        let c0x = controlled_matrix(2, 0, &qubit::x());
        let perm = c0x.as_permutation(TOL).expect("permutation");
        assert_eq!(perm, vec![1, 0, 2, 3]);
    }

    #[test]
    fn qutrit_one_controlled_plus_one() {
        // |1>-controlled X+1 on a qutrit pair: the first gate of Figure 4.
        let g = controlled_matrix(3, 1, &qutrit::x_plus_1());
        assert!(g.is_unitary(TOL));
        let perm = g.as_permutation(TOL).expect("permutation");
        // Control=1 block (indices 3,4,5) is cyclically shifted; others fixed.
        assert_eq!(perm, vec![0, 1, 2, 4, 5, 3, 6, 7, 8]);
    }

    #[test]
    fn qutrit_two_controlled_x() {
        // |2>-controlled X01 on the target: the middle gate of Figure 4.
        let g = controlled_matrix(3, 2, &qutrit::x01());
        let perm = g.as_permutation(TOL).expect("permutation");
        assert_eq!(perm, vec![0, 1, 2, 3, 4, 5, 7, 6, 8]);
    }

    #[test]
    fn multi_control_only_activates_on_all_matching() {
        // Two qubit controls activating on |1>,|1>, qubit target → Toffoli.
        let toffoli = controlled_matrix_multi(&[(2, 1), (2, 1)], &qubit::x());
        let perm = toffoli.as_permutation(TOL).expect("permutation");
        assert_eq!(perm, vec![0, 1, 2, 3, 4, 5, 7, 6]);
    }

    #[test]
    fn mixed_dimension_controls() {
        // Qutrit control on |2>, qubit control on |1>, qubit target.
        let g = controlled_matrix_multi(&[(3, 2), (2, 1)], &qubit::x());
        assert!(g.is_unitary(TOL));
        let perm = g.as_permutation(TOL).expect("permutation");
        // Active block starts at (2*2 + 1)*2 = 10.
        let mut expected: Vec<usize> = (0..12).collect();
        expected.swap(10, 11);
        assert_eq!(perm, expected);
    }

    #[test]
    fn controlled_phase_is_diagonal() {
        let cz = controlled_matrix(2, 1, &qubit::z());
        assert!(cz.is_unitary(TOL));
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(cz.get(r, c).abs() < TOL);
                }
            }
        }
        assert!(cz.get(3, 3).approx_eq(Complex::real(-1.0), TOL));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_control_level() {
        let _ = controlled_matrix(2, 2, &qubit::x());
    }
}
