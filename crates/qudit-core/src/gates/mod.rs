//! Gate-matrix library.
//!
//! Provides the unitary matrices for the standard qubit gate set, the qutrit
//! gate set used by the paper (the five classical permutations `X01`, `X02`,
//! `X12`, `X+1`, `X−1`, the ternary clock `Z3` and Fourier `H3` gates), the
//! generalised `d`-level shift/clock/Fourier gates, and builders for
//! controlled gates with arbitrary control levels.

pub mod controlled;
pub mod qubit;
pub mod qudit;
pub mod qutrit;

pub use controlled::{controlled_matrix, controlled_matrix_multi};
pub use qubit::*;
pub use qudit::*;
pub use qutrit::*;
