//! Generalised `d`-level qudit gate matrices.
//!
//! These generalise the qutrit gates of the paper to arbitrary dimension,
//! which the simulator supports (the paper's simulator is parameterised by
//! `d` as well; `d = 3` is the case of interest).

use crate::complex::Complex;
use crate::matrix::CMatrix;
use std::f64::consts::PI;

/// The generalised shift gate `X_d : |k⟩ → |k+1 mod d⟩`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn shift(d: usize) -> CMatrix {
    assert!(d >= 2, "qudit dimension must be at least 2");
    let perm: Vec<usize> = (0..d).map(|k| (k + 1) % d).collect();
    CMatrix::permutation(&perm)
}

/// The generalised shift by `amount`: `|k⟩ → |k+amount mod d⟩`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn shift_by(d: usize, amount: usize) -> CMatrix {
    assert!(d >= 2, "qudit dimension must be at least 2");
    let perm: Vec<usize> = (0..d).map(|k| (k + amount) % d).collect();
    CMatrix::permutation(&perm)
}

/// The generalised clock gate `Z_d = diag(1, ω, ω², …)` with `ω = e^{2πi/d}`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn clock(d: usize) -> CMatrix {
    assert!(d >= 2, "qudit dimension must be at least 2");
    let omega = Complex::cis(2.0 * PI / d as f64);
    let diag: Vec<Complex> = (0..d).map(|k| omega.powf(k as f64)).collect();
    CMatrix::diagonal(&diag)
}

/// The generalised Fourier gate `F_d[j][k] = ω^{jk} / √d`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn fourier(d: usize) -> CMatrix {
    assert!(d >= 2, "qudit dimension must be at least 2");
    let omega = Complex::cis(2.0 * PI / d as f64);
    let s = 1.0 / (d as f64).sqrt();
    let mut m = CMatrix::zeros(d, d);
    for j in 0..d {
        for k in 0..d {
            m.set(j, k, omega.powf((j * k) as f64).scale(s));
        }
    }
    m
}

/// The level-swap gate exchanging basis states `a` and `b` of a `d`-level
/// qudit.
///
/// # Panics
///
/// Panics if `a == b` or either level is `>= d`.
pub fn level_swap(d: usize, a: usize, b: usize) -> CMatrix {
    assert!(a < d && b < d && a != b, "invalid levels for swap");
    let mut perm: Vec<usize> = (0..d).collect();
    perm.swap(a, b);
    CMatrix::permutation(&perm)
}

/// The generalised Pauli operator `X^j Z^k` for a `d`-level qudit.
///
/// The set `{X^j Z^k : j, k ∈ 0..d}` forms the error basis used by the
/// symmetric depolarizing channel of the paper's Appendix A.1.1.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn generalized_pauli(d: usize, j: usize, k: usize) -> CMatrix {
    assert!(d >= 2, "qudit dimension must be at least 2");
    &shift(d).pow((j % d) as u32) * &clock(d).pow((k % d) as u32)
}

/// Returns all `d²` generalised Pauli operators in lexicographic `(j, k)`
/// order, starting with the identity.
pub fn pauli_basis(d: usize) -> Vec<CMatrix> {
    let mut out = Vec::with_capacity(d * d);
    for j in 0..d {
        for k in 0..d {
            out.push(generalized_pauli(d, j, k));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::qutrit;

    const TOL: f64 = 1e-10;

    #[test]
    fn shift_matches_qutrit_plus_one() {
        assert!(shift(3).approx_eq(&qutrit::x_plus_1(), TOL));
        assert!(shift_by(3, 2).approx_eq(&qutrit::x_minus_1(), TOL));
    }

    #[test]
    fn clock_matches_qutrit_z3() {
        assert!(clock(3).approx_eq(&qutrit::z3(), TOL));
    }

    #[test]
    fn fourier_is_unitary_for_various_d() {
        for d in 2..=6 {
            assert!(fourier(d).is_unitary(TOL), "fourier({d}) not unitary");
        }
    }

    #[test]
    fn shift_to_the_d_is_identity() {
        for d in 2..=5 {
            assert!(shift(d).pow(d as u32).approx_eq(&CMatrix::identity(d), TOL));
        }
    }

    #[test]
    fn clock_shift_commutation_relation() {
        // Z X = ω X Z
        for d in 2..=5 {
            let omega = Complex::cis(2.0 * PI / d as f64);
            let zx = &clock(d) * &shift(d);
            let xz = (&shift(d) * &clock(d)).scale(omega);
            assert!(zx.approx_eq(&xz, TOL), "commutation failed for d={d}");
        }
    }

    #[test]
    fn pauli_basis_has_d_squared_elements_first_identity() {
        let basis = pauli_basis(3);
        assert_eq!(basis.len(), 9);
        assert!(basis[0].approx_eq(&CMatrix::identity(3), TOL));
        for m in &basis {
            assert!(m.is_unitary(TOL));
        }
    }

    #[test]
    fn pauli_basis_is_trace_orthogonal() {
        // Tr(P_i† P_j) = d δ_ij — the defining property of a nice error basis.
        let d = 3;
        let basis = pauli_basis(d);
        for (i, a) in basis.iter().enumerate() {
            for (j, b) in basis.iter().enumerate() {
                let tr = (&a.adjoint() * b).trace();
                if i == j {
                    assert!(tr.approx_eq(Complex::real(d as f64), 1e-9));
                } else {
                    assert!(tr.abs() < 1e-9, "basis elements {i},{j} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn level_swap_is_self_inverse() {
        let s = level_swap(4, 1, 3);
        assert!((&s * &s).approx_eq(&CMatrix::identity(4), TOL));
    }

    #[test]
    fn qubit_case_reduces_to_pauli() {
        assert!(generalized_pauli(2, 1, 0).approx_eq(&crate::gates::qubit::x(), TOL));
        assert!(generalized_pauli(2, 0, 1).approx_eq(&crate::gates::qubit::z(), TOL));
    }
}
