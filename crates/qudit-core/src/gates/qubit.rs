//! Standard single-qubit gate matrices.

use crate::complex::Complex;
use crate::matrix::CMatrix;
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// The qubit Pauli-X (NOT) gate.
pub fn x() -> CMatrix {
    CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
}

/// The qubit Pauli-Y gate.
pub fn y() -> CMatrix {
    CMatrix::from_rows(&[
        &[Complex::ZERO, Complex::new(0.0, -1.0)],
        &[Complex::I, Complex::ZERO],
    ])
}

/// The qubit Pauli-Z gate.
pub fn z() -> CMatrix {
    CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
}

/// The qubit Hadamard gate.
pub fn h() -> CMatrix {
    CMatrix::from_real_rows(&[
        &[FRAC_1_SQRT_2, FRAC_1_SQRT_2],
        &[FRAC_1_SQRT_2, -FRAC_1_SQRT_2],
    ])
}

/// The phase gate `S = diag(1, i)`.
pub fn s() -> CMatrix {
    CMatrix::diagonal(&[Complex::ONE, Complex::I])
}

/// The `T` gate `diag(1, e^{iπ/4})`.
pub fn t() -> CMatrix {
    CMatrix::diagonal(&[Complex::ONE, Complex::cis(PI / 4.0)])
}

/// Rotation about the X axis by `theta`.
pub fn rx(theta: f64) -> CMatrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    CMatrix::from_rows(&[&[c, s], &[s, c]])
}

/// Rotation about the Y axis by `theta`.
pub fn ry(theta: f64) -> CMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    CMatrix::from_real_rows(&[&[c, -s], &[s, c]])
}

/// Rotation about the Z axis by `theta`.
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::diagonal(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)])
}

/// A phase gate `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> CMatrix {
    CMatrix::diagonal(&[Complex::ONE, Complex::cis(phi)])
}

/// The `X^t` gate: a fractional power of the Pauli-X.
///
/// `x_pow(1.0)` is `X`, `x_pow(0.5)` is the square root of `X` (with global
/// phase chosen so that `x_pow(a) · x_pow(b) = x_pow(a + b)`).
///
/// These small-angle controlled roots are the gates the paper notes the
/// Gidney qubit-only construction requires.
pub fn x_pow(t: f64) -> CMatrix {
    // X = H Z H; X^t = H diag(1, e^{iπ t}) H.
    let hm = h();
    let d = CMatrix::diagonal(&[Complex::ONE, Complex::cis(PI * t)]);
    &(&hm * &d) * &hm
}

/// The `Z^t` gate `diag(1, e^{iπ t})`.
pub fn z_pow(t: f64) -> CMatrix {
    CMatrix::diagonal(&[Complex::ONE, Complex::cis(PI * t)])
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn all_gates_are_unitary() {
        for m in [
            x(),
            y(),
            z(),
            h(),
            s(),
            t(),
            rx(0.3),
            ry(1.1),
            rz(2.7),
            phase(0.4),
        ] {
            assert!(m.is_unitary(TOL));
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        assert!((&h() * &h()).approx_eq(&CMatrix::identity(2), TOL));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!((&s() * &s()).approx_eq(&z(), TOL));
        assert!((&t() * &t()).approx_eq(&s(), TOL));
    }

    #[test]
    fn hzh_equals_x() {
        let hzh = &(&h() * &z()) * &h();
        assert!(hzh.approx_eq(&x(), TOL));
    }

    #[test]
    fn x_pow_composes_additively() {
        let a = x_pow(0.25);
        let b = x_pow(0.75);
        assert!((&a * &b).approx_eq(&x_pow(1.0), TOL));
        assert!(x_pow(1.0).approx_eq(&x(), TOL));
    }

    #[test]
    fn sqrt_x_squares_to_x() {
        let v = x_pow(0.5);
        assert!((&v * &v).approx_eq(&x(), TOL));
        assert!(v.is_unitary(TOL));
    }

    #[test]
    fn rotations_compose() {
        let r = &rx(0.3) * &rx(0.4);
        assert!(r.approx_eq(&rx(0.7), TOL));
    }

    #[test]
    fn y_equals_i_x_z() {
        let ixz = (&x() * &z()).scale(Complex::I);
        assert!(ixz.approx_eq(&y(), TOL));
    }
}
