//! Qutrit (`d = 3`) gate matrices.
//!
//! The paper's constructions use the five non-trivial classical permutations
//! of the qutrit basis (Figure 3): the three level swaps `X01`, `X02`, `X12`
//! and the two cyclic shifts `X+1`, `X−1`, along with the ternary clock gate
//! `Z3` and the ternary Fourier (generalised Hadamard) gate `H3`.

use crate::complex::Complex;
use crate::matrix::CMatrix;
use std::f64::consts::PI;

/// Number of levels in a qutrit.
pub const QUTRIT_DIM: usize = 3;

/// The qutrit swap of levels |0⟩ and |1⟩, leaving |2⟩ fixed.
pub fn x01() -> CMatrix {
    CMatrix::permutation(&[1, 0, 2])
}

/// The qutrit swap of levels |0⟩ and |2⟩, leaving |1⟩ fixed.
pub fn x02() -> CMatrix {
    CMatrix::permutation(&[2, 1, 0])
}

/// The qutrit swap of levels |1⟩ and |2⟩, leaving |0⟩ fixed.
pub fn x12() -> CMatrix {
    CMatrix::permutation(&[0, 2, 1])
}

/// The qutrit cyclic increment `|k⟩ → |k+1 mod 3⟩` (written `X+1` in the
/// paper).
pub fn x_plus_1() -> CMatrix {
    CMatrix::permutation(&[1, 2, 0])
}

/// The qutrit cyclic decrement `|k⟩ → |k−1 mod 3⟩` (written `X−1` in the
/// paper).
pub fn x_minus_1() -> CMatrix {
    CMatrix::permutation(&[2, 0, 1])
}

/// The ternary clock gate `Z3 = diag(1, ω, ω²)` with `ω = e^{2πi/3}`.
pub fn z3() -> CMatrix {
    let omega = Complex::cis(2.0 * PI / 3.0);
    CMatrix::diagonal(&[Complex::ONE, omega, omega * omega])
}

/// The ternary Fourier transform (generalised Hadamard) gate,
/// `H3[j][k] = ω^{jk} / √3`.
pub fn h3() -> CMatrix {
    let omega = Complex::cis(2.0 * PI / 3.0);
    let s = 1.0 / (3.0f64).sqrt();
    let mut m = CMatrix::zeros(3, 3);
    for j in 0..3 {
        for k in 0..3 {
            m.set(j, k, omega.powf((j * k) as f64).scale(s));
        }
    }
    m
}

/// A rotation by `theta` in the two-dimensional subspace spanned by levels
/// `a` and `b` of a qutrit (a "Givens rotation" between levels).
///
/// # Panics
///
/// Panics if `a == b` or either level is out of range.
pub fn subspace_ry(a: usize, b: usize, theta: f64) -> CMatrix {
    assert!(a < 3 && b < 3 && a != b, "levels must be distinct and < 3");
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    let mut m = CMatrix::identity(3);
    m.set(a, a, Complex::real(c));
    m.set(a, b, Complex::real(-s));
    m.set(b, a, Complex::real(s));
    m.set(b, b, Complex::real(c));
    m
}

/// A phase applied to a single qutrit level: `diag` with `e^{iφ}` at `level`.
///
/// # Panics
///
/// Panics if `level >= 3`.
pub fn level_phase(level: usize, phi: f64) -> CMatrix {
    assert!(level < 3, "level out of range");
    let mut diag = [Complex::ONE; 3];
    diag[level] = Complex::cis(phi);
    CMatrix::diagonal(&diag)
}

/// Embeds a single-qubit gate into qutrit space, acting on the given two
/// levels and leaving the third level untouched.
///
/// # Panics
///
/// Panics if `gate` is not 2×2 or the levels are invalid.
pub fn embed_qubit_gate(gate: &CMatrix, level_a: usize, level_b: usize) -> CMatrix {
    assert_eq!(gate.rows(), 2, "expected a single-qubit gate");
    assert_eq!(gate.cols(), 2, "expected a single-qubit gate");
    gate.embed(3, &[level_a, level_b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::qubit;

    const TOL: f64 = 1e-10;

    #[test]
    fn permutation_gates_are_unitary_permutations() {
        for m in [x01(), x02(), x12(), x_plus_1(), x_minus_1()] {
            assert!(m.is_unitary(TOL));
            assert!(m.is_permutation(TOL));
        }
    }

    #[test]
    fn swaps_are_self_inverse() {
        for m in [x01(), x02(), x12()] {
            assert!((&m * &m).approx_eq(&CMatrix::identity(3), TOL));
        }
    }

    #[test]
    fn plus_and_minus_are_inverses() {
        assert!((&x_plus_1() * &x_minus_1()).approx_eq(&CMatrix::identity(3), TOL));
        assert!((&x_minus_1() * &x_plus_1()).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn plus_one_cubed_is_identity() {
        assert!(x_plus_1().pow(3).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn plus_one_is_x01_then_x12_composition() {
        // The paper writes X+1 = X12 · X01 as operators (first swap 0↔1 then
        // 1↔2): |0⟩→|1⟩→|2⟩? No: X+1 maps |0⟩→|1⟩, |1⟩→|2⟩, |2⟩→|0⟩.
        // Applying X01 first (|0⟩↔|1⟩) then X12 (|1⟩↔|2⟩):
        //   |0⟩ → |1⟩ → |2⟩  ✗ (want |1⟩)
        // Applying X12 first then X01:
        //   |0⟩ → |0⟩ → |1⟩  ✓, |1⟩ → |2⟩ → |2⟩ ✓, |2⟩ → |1⟩ → |0⟩ ✓
        let composed = &x01() * &x12();
        assert!(composed.approx_eq(&x_plus_1(), TOL));
    }

    #[test]
    fn x_plus_1_permutation_action() {
        assert_eq!(x_plus_1().as_permutation(TOL), Some(vec![1, 2, 0]));
        assert_eq!(x_minus_1().as_permutation(TOL), Some(vec![2, 0, 1]));
        assert_eq!(x02().as_permutation(TOL), Some(vec![2, 1, 0]));
    }

    #[test]
    fn z3_has_unit_eigenvalue_spacing() {
        let z = z3();
        assert!(z.is_unitary(TOL));
        assert!(z.pow(3).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn h3_is_unitary_and_diagonalises_shift() {
        let f = h3();
        assert!(f.is_unitary(TOL));
        // F† X+1 F should be diagonal (the clock gate up to ordering).
        let d = &(&f.adjoint() * &x_plus_1()) * &f;
        for r in 0..3 {
            for c in 0..3 {
                if r != c {
                    assert!(d.get(r, c).abs() < 1e-9, "off-diagonal element too large");
                }
            }
        }
    }

    #[test]
    fn embedded_qubit_x_matches_x01() {
        let e = embed_qubit_gate(&qubit::x(), 0, 1);
        assert!(e.approx_eq(&x01(), TOL));
        let e02 = embed_qubit_gate(&qubit::x(), 0, 2);
        assert!(e02.approx_eq(&x02(), TOL));
    }

    #[test]
    fn subspace_rotation_is_unitary_and_composes() {
        let r = subspace_ry(0, 2, 0.4);
        assert!(r.is_unitary(TOL));
        let r2 = &subspace_ry(0, 2, 0.4) * &subspace_ry(0, 2, 0.6);
        assert!(r2.approx_eq(&subspace_ry(0, 2, 1.0), TOL));
    }

    #[test]
    fn level_phase_only_affects_one_level() {
        let p = level_phase(2, 1.0);
        assert_eq!(p.get(0, 0), Complex::ONE);
        assert_eq!(p.get(1, 1), Complex::ONE);
        assert!(p.get(2, 2).approx_eq(Complex::cis(1.0), TOL));
    }
}
