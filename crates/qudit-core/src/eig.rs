//! Eigendecomposition of small normal matrices.
//!
//! The physical-lowering compiler pass (`qudit-circuit`) synthesises the
//! Di & Wei two-qudit realisation of a multiply-controlled gate from the
//! spectral decomposition of its target unitary: `U = Q · diag(e^{iθ}) · Q†`.
//! Gate matrices are tiny (`d × d` with `d ≤ ~5`), so a cyclic complex
//! Jacobi sweep is both simple and numerically robust at these sizes.
//!
//! The solver works in two layers:
//!
//! * [`eig_hermitian`] — classic cyclic Jacobi for complex Hermitian
//!   matrices: each off-diagonal entry is phased to a real value and
//!   annihilated with a Givens rotation; sweeps repeat until the
//!   off-diagonal mass is negligible.
//! * [`eig_unitary`] — a unitary `U` is normal, so it shares eigenvectors
//!   with the Hermitian pencil `H(γ) = (U + U†)/2 + γ·(U − U†)/(2i)`.
//!   Diagonalising `H(γ)` for a generic `γ` yields `Q`; the eigenvalues are
//!   read off the diagonal of `Q†UQ`. A degenerate `γ` (two distinct
//!   eigenphases colliding in `cos θ + γ sin θ`) is detected by a residual
//!   check and another `γ` is tried.

use crate::complex::Complex;
use crate::matrix::CMatrix;

/// Off-diagonal mass below which a Jacobi sweep is considered converged.
const JACOBI_TOL: f64 = 1e-14;

/// Hard cap on Jacobi sweeps (far beyond what a `d ≤ 8` matrix needs).
const MAX_SWEEPS: usize = 64;

/// Mixing coefficients tried for the Hermitian pencil `H(γ)`. The first is
/// an arbitrary irrational-ish constant; the rest only matter if a matrix
/// manages to collide eigenphases under the earlier ones.
const GAMMA_CANDIDATES: [f64; 4] = [0.730_112_978_309, 0.310_998_124_87, 1.618_033_988_75, -0.41];

/// Diagonalises a complex Hermitian matrix with cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, Q)` with `A = Q · diag(eigenvalues) · Q†` and `Q`
/// unitary. Eigenvalues are in the order produced by the sweeps (not
/// sorted); callers who need pairing with a second matrix read it through
/// `Q` anyway.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn eig_hermitian(a: &CMatrix) -> (Vec<f64>, CMatrix) {
    assert!(a.is_square(), "eigendecomposition needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut q = CMatrix::identity(n);

    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for r in (p + 1)..n {
                off += m.get(p, r).norm_sqr();
            }
        }
        if off.sqrt() <= JACOBI_TOL {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m.get(p, r);
                if apq.abs() <= JACOBI_TOL * 0.01 {
                    continue;
                }
                // Phase the pivot to a real value, then rotate it away.
                let phase = apq.scale(1.0 / apq.abs());
                let app = m.get(p, p).re;
                let aqq = m.get(r, r).re;
                let theta = 0.5 * (2.0 * apq.abs()).atan2(app - aqq);
                let (s, c) = theta.sin_cos();
                // Column rotation J restricted to the (p, r) plane:
                //   col_p ← c·col_p + s·phasē·col_r
                //   col_r ← −s·phase·col_p + c·col_r
                let jpp = Complex::real(c);
                let jpr = phase.scale(-s);
                let jrp = phase.conj().scale(s);
                let jrr = Complex::real(c);
                // m ← J† m J; q ← q J.
                for row in 0..n {
                    let xp = m.get(row, p);
                    let xr = m.get(row, r);
                    m.set(row, p, xp * jpp + xr * jrp);
                    m.set(row, r, xp * jpr + xr * jrr);
                }
                for col in 0..n {
                    let xp = m.get(p, col);
                    let xr = m.get(r, col);
                    m.set(p, col, xp * jpp.conj() + xr * jrp.conj());
                    m.set(r, col, xp * jpr.conj() + xr * jrr.conj());
                }
                for row in 0..n {
                    let xp = q.get(row, p);
                    let xr = q.get(row, r);
                    q.set(row, p, xp * jpp + xr * jrp);
                    q.set(row, r, xp * jpr + xr * jrr);
                }
            }
        }
    }

    let eigenvalues = (0..n).map(|i| m.get(i, i).re).collect();
    (eigenvalues, q)
}

/// Diagonalises a unitary matrix: returns `(eigenvalues, Q)` with
/// `U = Q · diag(eigenvalues) · Q†`, `Q` unitary and every eigenvalue on the
/// unit circle.
///
/// Returns `None` when no tried pencil produces a decomposition within
/// `tol` — in practice only for inputs that are not (close to) unitary.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn eig_unitary(u: &CMatrix, tol: f64) -> Option<(Vec<Complex>, CMatrix)> {
    assert!(u.is_square(), "eigendecomposition needs a square matrix");
    let n = u.rows();
    let udag = u.adjoint();
    let half = Complex::real(0.5);
    let half_over_i = Complex::new(0.0, -0.5);
    let h1 = (u + &udag).scale(half);
    let h2 = (u - &udag).scale(half_over_i);

    for &gamma in &GAMMA_CANDIDATES {
        let pencil = &h1 + &h2.scale(Complex::real(gamma));
        let (_, q) = eig_hermitian(&pencil);
        // Read the eigenvalues of U through Q and verify the residual: a
        // degenerate γ leaves U non-diagonal in this basis.
        let d = &(&q.adjoint() * u) * &q;
        let mut eigenvalues = Vec::with_capacity(n);
        for i in 0..n {
            let lambda = d.get(i, i);
            // Project onto the unit circle; unitarity puts it there already
            // up to rounding.
            let r = lambda.abs();
            if (r - 1.0).abs() > tol.max(1e-9) {
                eigenvalues.clear();
                break;
            }
            eigenvalues.push(lambda.scale(1.0 / r));
        }
        if eigenvalues.len() != n {
            continue;
        }
        let rebuilt = &(&q * &CMatrix::diagonal(&eigenvalues)) * &q.adjoint();
        if rebuilt.max_abs_diff(u) <= tol {
            return Some((eigenvalues, q));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::random::complex_gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_unitary(n: usize, rng: &mut StdRng) -> CMatrix {
        // Gram–Schmidt on a Gaussian matrix.
        let mut cols: Vec<Vec<Complex>> = (0..n)
            .map(|_| (0..n).map(|_| complex_gaussian(rng)).collect())
            .collect();
        for i in 0..n {
            let (done, rest) = cols.split_at_mut(i);
            let col = &mut rest[0];
            for prev in done.iter() {
                let proj: Complex = prev
                    .iter()
                    .zip(col.iter())
                    .map(|(a, b)| a.conj() * *b)
                    .sum();
                for (x, y) in col.iter_mut().zip(prev.iter()) {
                    *x -= proj * *y;
                }
            }
            let norm: f64 = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            for z in col.iter_mut() {
                *z = z.scale(1.0 / norm);
            }
        }
        let mut m = CMatrix::zeros(n, n);
        for (c, col) in cols.iter().enumerate() {
            for (r, z) in col.iter().enumerate() {
                m.set(r, c, *z);
            }
        }
        m
    }

    #[test]
    fn hermitian_jacobi_diagonalises_random_matrices() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 2..=6 {
            let g = random_unitary(n, &mut rng);
            // A random Hermitian matrix: G D G† with real D.
            let d: Vec<Complex> = (0..n).map(|i| Complex::real(i as f64 - 1.3)).collect();
            let a = &(&g * &CMatrix::diagonal(&d)) * &g.adjoint();
            let (evals, q) = eig_hermitian(&a);
            assert!(q.is_unitary(1e-10), "Q must be unitary at n={n}");
            let lam: Vec<Complex> = evals.iter().map(|&x| Complex::real(x)).collect();
            let rebuilt = &(&q * &CMatrix::diagonal(&lam)) * &q.adjoint();
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-10,
                "residual {} at n={n}",
                rebuilt.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn unitary_eig_handles_standard_gates() {
        for u in [
            gates::qutrit::x_plus_1(),
            gates::qudit::shift(4),
            gates::qudit::level_swap(3, 0, 2),
            gates::qudit::fourier(3),
            gates::qudit::clock(5),
            gates::qubit::h().embed(3, &[0, 1]),
            CMatrix::identity(3),
        ] {
            let (evals, q) = eig_unitary(&u, 1e-10).expect("decomposition");
            assert!(q.is_unitary(1e-10));
            let rebuilt = &(&q * &CMatrix::diagonal(&evals)) * &q.adjoint();
            assert!(rebuilt.max_abs_diff(&u) < 1e-10);
            for e in evals {
                assert!((e.abs() - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn unitary_eig_handles_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(2019);
        for n in 2..=5 {
            for _ in 0..8 {
                let u = random_unitary(n, &mut rng);
                let (evals, q) = eig_unitary(&u, 1e-9).expect("decomposition");
                let rebuilt = &(&q * &CMatrix::diagonal(&evals)) * &q.adjoint();
                assert!(
                    rebuilt.max_abs_diff(&u) < 1e-9,
                    "residual {} at n={n}",
                    rebuilt.max_abs_diff(&u)
                );
            }
        }
    }

    #[test]
    fn non_unitary_input_is_rejected() {
        let a = CMatrix::from_real_rows(&[&[2.0, 0.0], &[0.0, 0.5]]);
        assert!(eig_unitary(&a, 1e-9).is_none());
    }
}
