//! # qudit-core
//!
//! Foundational math for the qutrits reproduction workspace: a minimal
//! complex-number type, dense complex matrices, state vectors over registers
//! of `d`-level qudits, a library of qubit/qutrit/qudit gate matrices, and
//! `O(d^N)` random state generation.
//!
//! This crate corresponds to the mathematical substrate that the paper's
//! Cirq extension relies on (state vectors, gate matrices, random states); the
//! circuit IR lives in `qudit-circuit`, the state-vector simulator in
//! `qudit-sim`, and the noise models in `qudit-noise`.
//!
//! ## Example
//!
//! ```
//! use qudit_core::{gates, StateVector};
//!
//! // Build the |1>-controlled X+1 gate of the paper's Figure 4 and check it
//! // is unitary.
//! let gate = gates::controlled_matrix(3, 1, &gates::qutrit::x_plus_1());
//! assert!(gate.is_unitary(1e-12));
//!
//! // Represent the |11> qutrit state.
//! let psi = StateVector::from_basis_state(3, &[1, 1])?;
//! assert_eq!(psi.num_qudits(), 2);
//! # Ok::<(), qudit_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod eig;
mod error;
pub mod gates;
mod matrix;
mod random;
#[cfg(feature = "serde")]
mod serde_impls;
mod statevec;

pub use complex::Complex;
pub use eig::{eig_hermitian, eig_unitary};
pub use error::{CoreError, CoreResult};
pub use matrix::CMatrix;
pub use random::{complex_gaussian, random_basis_state, random_qubit_subspace_state, random_state};
pub use statevec::StateVector;

/// The qutrit dimension (`d = 3`), re-exported for convenience.
pub const QUTRIT: usize = 3;

/// The qubit dimension (`d = 2`), re-exported for convenience.
pub const QUBIT: usize = 2;
