//! Random state generation.
//!
//! The paper (Section 6.2) points out that drawing a Haar-random state by
//! generating a full `d^N × d^N` unitary and truncating a column is
//! needlessly expensive; the first column can be computed directly in
//! `O(d^N)` space and time. Sampling i.i.d. complex Gaussians and normalising
//! produces exactly the distribution of the first column of a Haar-random
//! unitary, which is what we do here.

use crate::complex::Complex;
use crate::error::CoreResult;
use crate::statevec::StateVector;
use rand::Rng;

/// Draws a standard complex Gaussian (mean 0, unit variance per component)
/// via the Box–Muller transform — the building block for Haar-distributed
/// states and unitaries (i.i.d. Gaussian entries, then normalise).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R) -> Complex {
    // Box–Muller: two uniforms → two independent normals.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    Complex::new(r * theta.cos(), r * theta.sin())
}

/// Generates a Haar-distributed random pure state of `num_qudits` qudits of
/// dimension `dim`, in `O(dim^num_qudits)` time and space.
///
/// # Errors
///
/// Returns an error if `dim < 2`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let psi = qudit_core::random_state(3, 4, &mut rng)?;
/// assert!((psi.norm() - 1.0).abs() < 1e-9);
/// # Ok::<(), qudit_core::CoreError>(())
/// ```
pub fn random_state<R: Rng + ?Sized>(
    dim: usize,
    num_qudits: usize,
    rng: &mut R,
) -> CoreResult<StateVector> {
    let mut sv = StateVector::zero_state(dim, num_qudits)?;
    for amp in sv.amplitudes_mut() {
        *amp = complex_gaussian(rng);
    }
    sv.renormalize();
    Ok(sv)
}

/// Generates a random computational basis state (uniformly among the `d^N`
/// basis states). Useful for sampling classical inputs during verification.
///
/// # Errors
///
/// Returns an error if `dim < 2`.
pub fn random_basis_state<R: Rng + ?Sized>(
    dim: usize,
    num_qudits: usize,
    rng: &mut R,
) -> CoreResult<StateVector> {
    let digits: Vec<usize> = (0..num_qudits).map(|_| rng.gen_range(0..dim)).collect();
    StateVector::from_basis_state(dim, &digits)
}

/// Generates a random state restricted to the qubit (`|0⟩`,`|1⟩`) subspace of
/// each qudit. The paper's circuits take qubit inputs even though the qudits
/// are three-level, so noise benchmarks draw inputs from this distribution.
///
/// # Errors
///
/// Returns an error if `dim < 2`.
pub fn random_qubit_subspace_state<R: Rng + ?Sized>(
    dim: usize,
    num_qudits: usize,
    rng: &mut R,
) -> CoreResult<StateVector> {
    let mut sv = StateVector::zero_state(dim, num_qudits)?;
    let amps = sv.amplitudes_mut();
    for (idx, amp) in amps.iter_mut().enumerate() {
        let digits = StateVector::decode_index(dim, num_qudits, idx);
        *amp = if digits.iter().all(|&d| d < 2) {
            complex_gaussian(rng)
        } else {
            Complex::ZERO
        };
    }
    sv.renormalize();
    Ok(sv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_state_is_normalised() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let sv = random_state(3, 3, &mut rng).unwrap();
            assert!((sv.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_state_is_reproducible_with_seed() {
        let a = random_state(3, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = random_state(3, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_states() {
        let a = random_state(3, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = random_state(3, 2, &mut StdRng::seed_from_u64(2)).unwrap();
        assert!(a.fidelity(&b) < 0.999);
    }

    #[test]
    fn basis_state_sampling_yields_valid_states() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let sv = random_basis_state(3, 4, &mut rng).unwrap();
            let probs = sv.probabilities();
            let max: f64 = probs.iter().cloned().fold(0.0, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "should be a pure basis state");
        }
    }

    #[test]
    fn qubit_subspace_state_has_no_two_amplitude() {
        let mut rng = StdRng::seed_from_u64(9);
        let sv = random_qubit_subspace_state(3, 3, &mut rng).unwrap();
        for idx in 0..sv.len() {
            let digits = StateVector::decode_index(3, 3, idx);
            if digits.contains(&2) {
                assert!(sv.amplitudes()[idx].abs() < 1e-12);
            }
        }
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_amplitude_magnitude_is_uniformish() {
        // For a Haar-random state of dimension D, E[|amp|^2] = 1/D.
        let mut rng = StdRng::seed_from_u64(17);
        let d_total = 27usize;
        let trials = 200;
        let mut acc = vec![0.0f64; d_total];
        for _ in 0..trials {
            let sv = random_state(3, 3, &mut rng).unwrap();
            for (i, a) in sv.amplitudes().iter().enumerate() {
                acc[i] += a.norm_sqr();
            }
        }
        for v in acc {
            let mean = v / trials as f64;
            assert!((mean - 1.0 / d_total as f64).abs() < 0.02);
        }
    }
}
