//! Error types for the `qudit-core` crate.

use std::error::Error;
use std::fmt;

/// Convenience result alias for `qudit-core` operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced by core math operations.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A buffer did not have the expected number of elements.
    ShapeMismatch {
        /// Number of elements required.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// A qudit dimension outside the supported range was requested.
    InvalidDimension {
        /// The offending dimension.
        dimension: usize,
    },
    /// A basis level was outside `0..dimension`.
    InvalidLevel {
        /// The offending level.
        level: usize,
        /// The qudit dimension.
        dimension: usize,
    },
    /// A state vector was not normalised when it had to be.
    NotNormalized {
        /// The measured norm.
        norm: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ShapeMismatch { expected, actual } => {
                write!(f, "expected {expected} elements but got {actual}")
            }
            CoreError::InvalidDimension { dimension } => {
                write!(
                    f,
                    "invalid qudit dimension {dimension} (must be at least 2)"
                )
            }
            CoreError::InvalidLevel { level, dimension } => {
                write!(f, "level {level} is out of range for dimension {dimension}")
            }
            CoreError::NotNormalized { norm } => {
                write!(f, "state vector is not normalised (norm {norm})")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CoreError::ShapeMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "expected 4 elements but got 3");
        let e = CoreError::InvalidLevel {
            level: 3,
            dimension: 3,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
