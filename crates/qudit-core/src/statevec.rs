//! Dense state vectors over registers of `d`-level qudits.
//!
//! A register of `n` qudits of dimension `d` is represented by `d^n` complex
//! amplitudes. Basis states are indexed big-endian: qudit 0 is the most
//! significant digit, matching the ordering used by the controlled-gate
//! matrix builders and by Cirq (which the paper's simulator extends).

use crate::complex::Complex;
use crate::error::{CoreError, CoreResult};

/// A dense state vector for `num_qudits` qudits, each of dimension `dim`.
///
/// # Examples
///
/// ```
/// use qudit_core::StateVector;
///
/// // |102⟩ for three qutrits.
/// let psi = StateVector::from_basis_state(3, &[1, 0, 2]).unwrap();
/// assert_eq!(psi.num_qudits(), 3);
/// assert!((psi.probability(&[1, 0, 2]).unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    dim: usize,
    num_qudits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros basis state `|00…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDimension`] if `dim < 2`.
    pub fn zero_state(dim: usize, num_qudits: usize) -> CoreResult<Self> {
        if dim < 2 {
            return Err(CoreError::InvalidDimension { dimension: dim });
        }
        let len = dim.pow(num_qudits as u32);
        let mut amps = vec![Complex::ZERO; len];
        amps[0] = Complex::ONE;
        Ok(StateVector {
            dim,
            num_qudits,
            amps,
        })
    }

    /// Creates the computational basis state given by `digits` (one entry per
    /// qudit, most significant first).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDimension`] if `dim < 2`, or
    /// [`CoreError::InvalidLevel`] if any digit is `>= dim`.
    pub fn from_basis_state(dim: usize, digits: &[usize]) -> CoreResult<Self> {
        let mut sv = StateVector::zero_state(dim, digits.len())?;
        let idx = Self::encode_digits(dim, digits)?;
        sv.amps[0] = Complex::ZERO;
        sv.amps[idx] = Complex::ONE;
        Ok(sv)
    }

    /// Creates a state vector from raw amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `amps.len() != dim^num_qudits`,
    /// [`CoreError::InvalidDimension`] if `dim < 2`, or
    /// [`CoreError::NotNormalized`] if the amplitudes are not normalised to
    /// within `1e-6`.
    pub fn from_amplitudes(dim: usize, num_qudits: usize, amps: Vec<Complex>) -> CoreResult<Self> {
        if dim < 2 {
            return Err(CoreError::InvalidDimension { dimension: dim });
        }
        let expected = dim.pow(num_qudits as u32);
        if amps.len() != expected {
            return Err(CoreError::ShapeMismatch {
                expected,
                actual: amps.len(),
            });
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-6 {
            return Err(CoreError::NotNormalized { norm: norm.sqrt() });
        }
        Ok(StateVector {
            dim,
            num_qudits,
            amps,
        })
    }

    /// Reorders the qudits: qudit `q` of `self` becomes qudit `map[q]` of
    /// the result. `map` must be a permutation of `0..num_qudits`. This is
    /// how routed execution embeds a logical state onto placed sites (and
    /// un-embeds the output through the inverse of the final mapping).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `map` is not a permutation
    /// of the qudit indices.
    pub fn permute_qudits(&self, map: &[usize]) -> CoreResult<StateVector> {
        let n = self.num_qudits;
        let mut seen = vec![false; n];
        if map.len() != n
            || !map
                .iter()
                .all(|&m| m < n && !std::mem::replace(&mut seen[m], true))
        {
            return Err(CoreError::ShapeMismatch {
                expected: n,
                actual: map.len(),
            });
        }
        let mut amps = vec![Complex::ZERO; self.amps.len()];
        // Per-qudit stride of the flat index, most significant digit first.
        let stride: Vec<usize> = (0..n).map(|q| self.dim.pow((n - 1 - q) as u32)).collect();
        for (idx, &amp) in self.amps.iter().enumerate() {
            let digits = StateVector::decode_index(self.dim, n, idx);
            let new_idx: usize = digits
                .iter()
                .enumerate()
                .map(|(q, &d)| d * stride[map[q]])
                .sum();
            amps[new_idx] = amp;
        }
        Ok(StateVector {
            dim: self.dim,
            num_qudits: n,
            amps,
        })
    }

    /// Encodes per-qudit digits into a flat basis-state index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidLevel`] if any digit is `>= dim`.
    pub fn encode_digits(dim: usize, digits: &[usize]) -> CoreResult<usize> {
        let mut idx = 0usize;
        for &d in digits {
            if d >= dim {
                return Err(CoreError::InvalidLevel {
                    level: d,
                    dimension: dim,
                });
            }
            idx = idx * dim + d;
        }
        Ok(idx)
    }

    /// Decodes a flat basis-state index into per-qudit digits
    /// (most significant first).
    pub fn decode_index(dim: usize, num_qudits: usize, mut index: usize) -> Vec<usize> {
        let mut digits = vec![0usize; num_qudits];
        for slot in digits.iter_mut().rev() {
            *slot = index % dim;
            index /= dim;
        }
        digits
    }

    /// The per-qudit dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of qudits in the register.
    #[inline]
    pub fn num_qudits(&self) -> usize {
        self.num_qudits
    }

    /// The number of amplitudes (`dim^num_qudits`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Returns `true` if the register has no qudits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_qudits == 0
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable view of the amplitudes.
    ///
    /// Callers are responsible for maintaining normalisation (or calling
    /// [`StateVector::renormalize`]).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// Immutable view of the amplitudes in contiguous chunks of `chunk_len`
    /// (the final chunk may be shorter).
    ///
    /// When `chunk_len` is `dim^k` the chunks are exactly the amplitude
    /// groups spanned by the `k` least-significant qudits — the layout the
    /// simulator's contiguous gate kernels exploit.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    #[inline]
    pub fn amplitude_chunks(&self, chunk_len: usize) -> std::slice::Chunks<'_, Complex> {
        self.amps.chunks(chunk_len)
    }

    /// Mutable view of the amplitudes in contiguous chunks of `chunk_len`.
    ///
    /// The chunks are non-overlapping, so they can be handed to independent
    /// workers; see [`StateVector::amplitude_chunks`] for the layout
    /// guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    #[inline]
    pub fn amplitude_chunks_mut(&mut self, chunk_len: usize) -> std::slice::ChunksMut<'_, Complex> {
        self.amps.chunks_mut(chunk_len)
    }

    /// The amplitude of the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidLevel`] if any digit is out of range.
    pub fn amplitude(&self, digits: &[usize]) -> CoreResult<Complex> {
        let idx = Self::encode_digits(self.dim, digits)?;
        Ok(self.amps[idx])
    }

    /// The probability of measuring the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidLevel`] if any digit is out of range.
    pub fn probability(&self, digits: &[usize]) -> CoreResult<f64> {
        Ok(self.amplitude(digits)?.norm_sqr())
    }

    /// The Euclidean norm of the state vector.
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales the amplitudes to unit norm.
    ///
    /// Returns the norm prior to rescaling. A zero-norm state is left
    /// untouched and `0.0` is returned.
    pub fn renormalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
        n
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different shapes.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        assert_eq!(self.num_qudits, other.num_qudits, "width mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The fidelity `|⟨self|other⟩|²` — the paper's reliability metric
    /// (squared overlap between ideal and actual output states).
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// The probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Returns the basis state digits with the highest probability.
    pub fn most_likely_state(&self) -> Vec<usize> {
        let (idx, _) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.norm_sqr()
                    .partial_cmp(&b.norm_sqr())
                    .expect("probabilities are not NaN")
            })
            .expect("state vector is non-empty");
        Self::decode_index(self.dim, self.num_qudits, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_has_single_amplitude() {
        let sv = StateVector::zero_state(3, 2).unwrap();
        assert_eq!(sv.len(), 9);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert!((sv.probability(&[0, 0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn basis_state_round_trip() {
        let sv = StateVector::from_basis_state(3, &[2, 1, 0, 2]).unwrap();
        assert_eq!(sv.most_likely_state(), vec![2, 1, 0, 2]);
    }

    #[test]
    fn encode_decode_are_inverses() {
        for idx in 0..27 {
            let digits = StateVector::decode_index(3, 3, idx);
            assert_eq!(StateVector::encode_digits(3, &digits).unwrap(), idx);
        }
    }

    #[test]
    fn encoding_is_big_endian() {
        // |1,0⟩ for qutrits should be index 3 (qudit 0 most significant).
        assert_eq!(StateVector::encode_digits(3, &[1, 0]).unwrap(), 3);
        assert_eq!(StateVector::encode_digits(3, &[0, 1]).unwrap(), 1);
    }

    #[test]
    fn rejects_invalid_dimension_and_levels() {
        assert!(StateVector::zero_state(1, 2).is_err());
        assert!(StateVector::from_basis_state(3, &[3]).is_err());
    }

    #[test]
    fn from_amplitudes_validates_norm() {
        let bad = vec![Complex::ONE; 4];
        assert!(matches!(
            StateVector::from_amplitudes(2, 2, bad),
            Err(CoreError::NotNormalized { .. })
        ));
        let good = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.5, 0.0),
            Complex::new(0.5, 0.0),
            Complex::new(0.5, 0.0),
        ];
        assert!(StateVector::from_amplitudes(2, 2, good).is_ok());
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let sv = StateVector::from_basis_state(3, &[1, 2]).unwrap();
        assert!((sv.fidelity(&sv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::from_basis_state(3, &[0, 0]).unwrap();
        let b = StateVector::from_basis_state(3, &[2, 2]).unwrap();
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut sv = StateVector::zero_state(2, 2).unwrap();
        sv.amplitudes_mut()[0] = Complex::new(0.25, 0.0);
        sv.amplitudes_mut()[3] = Complex::new(0.25, 0.0);
        let prior = sv.renormalize();
        assert!(prior < 1.0);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_chunks_cover_the_buffer_disjointly() {
        let mut sv = StateVector::from_basis_state(3, &[1, 2, 0]).unwrap();
        assert_eq!(sv.amplitude_chunks(3).count(), 9);
        assert_eq!(sv.amplitude_chunks(9).count(), 3);
        let total: usize = sv.amplitude_chunks(4).map(<[Complex]>::len).sum();
        assert_eq!(total, 27);
        // Chunks of dim^k lines up with the groups of the k last qudits:
        // |12x⟩ occupies chunk index 1*3+2 = 5 of the dim^1 chunking.
        for (i, chunk) in sv.amplitude_chunks_mut(3).enumerate() {
            let sum: f64 = chunk.iter().map(|a| a.norm_sqr()).sum();
            if i == 5 {
                assert!((sum - 1.0).abs() < 1e-12);
            } else {
                assert!(sum < 1e-12);
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let sv = StateVector::from_basis_state(4, &[3, 1]).unwrap();
        let total: f64 = sv.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permute_qudits_moves_digits_to_mapped_positions() {
        // |0 1 2⟩ under map [2, 0, 1]: qudit 0 → position 2, qudit 1 → 0,
        // qudit 2 → 1, so the result is |1 2 0⟩.
        let sv = StateVector::from_basis_state(3, &[0, 1, 2]).unwrap();
        let moved = sv.permute_qudits(&[2, 0, 1]).unwrap();
        let expected = StateVector::from_basis_state(3, &[1, 2, 0]).unwrap();
        assert_eq!(moved.amplitudes(), expected.amplitudes());

        // The inverse permutation restores the original state.
        let back = moved.permute_qudits(&[1, 2, 0]).unwrap();
        assert_eq!(back.amplitudes(), sv.amplitudes());

        // The identity map is the identity.
        let same = sv.permute_qudits(&[0, 1, 2]).unwrap();
        assert_eq!(same.amplitudes(), sv.amplitudes());
    }

    #[test]
    fn permute_qudits_rejects_non_permutations() {
        let sv = StateVector::from_basis_state(2, &[0, 1]).unwrap();
        assert!(sv.permute_qudits(&[0]).is_err());
        assert!(sv.permute_qudits(&[0, 0]).is_err());
        assert!(sv.permute_qudits(&[0, 2]).is_err());
    }
}
