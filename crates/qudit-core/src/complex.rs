//! A minimal, dependency-free complex number type used throughout the
//! workspace.
//!
//! The simulator only needs double-precision complex arithmetic (addition,
//! multiplication, conjugation, magnitude, and the complex exponential), so we
//! implement it here instead of pulling in an external crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use qudit_core::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns the complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns the squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Constructs a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-magnitude phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Returns the complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns the principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs().sqrt();
        let theta = self.arg() / 2.0;
        Complex::from_polar(r, theta)
    }

    /// Returns the principal value of `self` raised to a real power.
    pub fn powf(self, exponent: f64) -> Self {
        if self == Complex::ZERO {
            return Complex::ZERO;
        }
        let r = self.abs().powf(exponent);
        let theta = self.arg() * exponent;
        Complex::from_polar(r, theta)
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is exactly zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempted to invert zero");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + c)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert!(((a * b) - Complex::new(5.0, 5.0)).abs() < TOL);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let a = Complex::new(0.3, -0.7);
        assert_eq!(a.conj(), Complex::new(0.3, 0.7));
        assert!((a * a.conj()).im.abs() < TOL);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < TOL);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, -3.0);
        let b = Complex::new(0.5, 1.5);
        let c = a * b;
        assert!((c / b - a).abs() < TOL);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_imaginary_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(Complex::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-10));
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = Complex::new(0.6, 0.8); // unit magnitude
        let cubed = z * z * z;
        assert!(z.powf(3.0).approx_eq(cubed, 1e-10));
    }

    #[test]
    fn recip_multiplies_to_one() {
        let z = Complex::new(1.25, -0.5);
        assert!((z * z.recip()).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn sum_over_iterator() {
        let zs = [Complex::new(1.0, 1.0); 4];
        let total: Complex = zs.iter().sum();
        assert_eq!(total, Complex::new(4.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
