//! Hand-written `serde` implementations for the core math types — the
//! bottom layer of the workspace's JSON wire format (the long-stubbed
//! `serde` feature of this crate).
//!
//! Representations:
//!
//! * [`Complex`] — a two-element array `[re, im]` (compact: amplitude lists
//!   dominate serialized payloads).
//! * [`CMatrix`] — `{"rows", "cols", "data"}` with row-major data; shape is
//!   re-validated on deserialization.
//! * [`StateVector`] — `{"dim", "qudits", "amplitudes"}`; deserialization
//!   goes through [`StateVector::from_amplitudes`], so shape and
//!   normalisation are re-validated.
//!
//! Floats use the shim's shortest-roundtrip rendering, so every value
//! round-trips bit-for-bit.

use crate::complex::Complex;
use crate::matrix::CMatrix;
use crate::statevec::StateVector;
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for Complex {
    fn to_value(&self) -> Value {
        Value::Array(vec![Value::Float(self.re), Value::Float(self.im)])
    }
}

impl Deserialize for Complex {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let parts = value.as_array()?;
        if parts.len() != 2 {
            return Err(Error::custom(format!(
                "complex number needs [re, im], got {} element(s)",
                parts.len()
            )));
        }
        Ok(Complex::new(parts[0].as_f64()?, parts[1].as_f64()?))
    }
}

impl Serialize for CMatrix {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("rows", self.rows().to_value()),
            ("cols", self.cols().to_value()),
            ("data", self.as_slice().to_vec().to_value()),
        ])
    }
}

impl Deserialize for CMatrix {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let rows = value.field("rows")?.as_usize()?;
        let cols = value.field("cols")?.as_usize()?;
        let data = Vec::<Complex>::from_value(value.field("data")?)?;
        CMatrix::from_vec(rows, cols, data).map_err(|e| Error::custom(e.to_string()))
    }
}

impl Serialize for StateVector {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("dim", self.dim().to_value()),
            ("qudits", self.num_qudits().to_value()),
            ("amplitudes", self.amplitudes().to_vec().to_value()),
        ])
    }
}

impl Deserialize for StateVector {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let dim = value.field("dim")?.as_usize()?;
        let qudits = value.field("qudits")?.as_usize()?;
        let amps = Vec::<Complex>::from_value(value.field("amplitudes")?)?;
        StateVector::from_amplitudes(dim, qudits, amps).map_err(|e| Error::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    #[test]
    fn complex_round_trips() {
        let z = Complex::new(0.1, -2.5e-7);
        let back: Complex = json::from_str(&json::to_string(&z)).unwrap();
        assert_eq!(back.re.to_bits(), z.re.to_bits());
        assert_eq!(back.im.to_bits(), z.im.to_bits());
    }

    #[test]
    fn matrix_round_trips_and_validates_shape() {
        let m = crate::gates::qudit::fourier(3);
        let back: CMatrix = json::from_str(&json::to_string(&m)).unwrap();
        assert_eq!(back, m);
        // 2x2 shape with 3 entries must be rejected.
        let bad = r#"{"rows":2,"cols":2,"data":[[1.0,0.0],[0.0,0.0],[0.0,0.0]]}"#;
        assert!(json::from_str::<CMatrix>(bad).is_err());
    }

    #[test]
    fn state_vector_round_trips_and_revalidates() {
        let psi = StateVector::from_basis_state(3, &[1, 2, 0]).unwrap();
        let back: StateVector = json::from_str(&json::to_string(&psi)).unwrap();
        assert_eq!(back.amplitudes(), psi.amplitudes());
        assert_eq!(back.dim(), 3);
        // An unnormalised amplitude list must be rejected.
        let bad = r#"{"dim":2,"qudits":1,"amplitudes":[[2.0,0.0],[0.0,0.0]]}"#;
        assert!(json::from_str::<StateVector>(bad).is_err());
    }
}
