//! Dense complex matrices.
//!
//! Gate matrices in this workspace are tiny (at most `d^3 × d^3` for a
//! three-qudit gate with `d = 3`), so a simple row-major `Vec`-backed dense
//! matrix is the right tool. The full `d^N × d^N` circuit unitary is never
//! materialised — the simulator applies gates directly to state vectors (see
//! the `qudit-sim` crate).

use crate::complex::Complex;
use crate::error::{CoreError, CoreResult};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qudit_core::{CMatrix, Complex};
///
/// let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(x.clone() * x, CMatrix::identity(2));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> CoreResult<Self> {
        if data.len() != rows * cols {
            return Err(CoreError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(CMatrix { rows, cols, data })
    }

    /// Creates a matrix from nested complex rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix from nested real-valued rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row length");
            data.extend(row.iter().map(|&x| Complex::real(x)));
        }
        CMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[Complex]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &z) in diag.iter().enumerate() {
            m.set(i, i, z);
        }
        m
    }

    /// Creates the `n × n` permutation matrix sending basis state `i` to
    /// `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permutation(perm: &[usize]) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut m = CMatrix::zeros(n, n);
        for (src, &dst) in perm.iter().enumerate() {
            m.set(dst, src, Complex::ONE);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: Complex) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Returns the underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<Complex> {
        self.data
    }

    /// Returns the conjugate transpose (adjoint, `†`).
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c).conj());
            }
        }
        out
    }

    /// Returns the entrywise complex conjugate (no transposition).
    ///
    /// For a unitary `U` this is the matrix that acts on the *column* index
    /// of a density matrix: `U·ρ·U†` vectorises to `(U ⊗ conj(U))·vec(ρ)`.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Returns the (non-conjugated) transpose.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Returns the trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Returns the Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        let mut out = CMatrix::zeros(rows, cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self.get(r1, c1);
                if a == Complex::ZERO {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out.set(
                            r1 * other.rows + r2,
                            c1 * other.cols + c2,
                            a * other.get(r2, c2),
                        );
                    }
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        for (slot, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = Complex::ZERO;
            for (a, x) in row.iter().zip(v.iter()) {
                acc += *a * *x;
            }
            *slot = acc;
        }
        out
    }

    /// Returns the largest absolute difference between entries of two
    /// matrices of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` if all entries are within `tol` of the other matrix's.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// Returns `true` if `self · self† = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let product = self * &self.adjoint();
        product.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` if the matrix equals its own adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Returns `true` if every entry is 0 or 1 and each column *and* each
    /// row has exactly one nonzero entry — i.e. the matrix is a (classical)
    /// permutation. Row occupancy must be checked too: a column-wise test
    /// alone accepts non-bijective 0/1 matrices like `[[1,1],[0,0]]`, which
    /// are not permutations (and which the simulator's permutation fast
    /// path would silently mis-apply).
    pub fn is_permutation(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let mut row_taken = vec![false; self.rows];
        for c in 0..self.cols {
            let mut ones = 0usize;
            for (r, taken) in row_taken.iter_mut().enumerate() {
                let z = self.get(r, c);
                if z.approx_eq(Complex::ONE, tol) {
                    if *taken {
                        return false;
                    }
                    *taken = true;
                    ones += 1;
                } else if !z.approx_eq(Complex::ZERO, tol) {
                    return false;
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the matrix is the identity within `tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` if every off-diagonal entry is within `tol` of zero —
    /// i.e. the matrix acts by scaling each basis state independently.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c && self.get(r, c).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Interprets the matrix as a diagonal operator and returns its
    /// diagonal entries (exactly as stored — entries are not snapped).
    ///
    /// Returns `None` if any off-diagonal entry exceeds `tol`.
    pub fn as_diagonal(&self, tol: f64) -> Option<Vec<Complex>> {
        if !self.is_diagonal(tol) {
            return None;
        }
        Some((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Returns `true` if `self · other = I` within `tol` — i.e. the two
    /// matrices are mutual inverses. For unitaries this recognises adjacent
    /// `U`/`U†` pairs (the circuit-compiler cancellation pass uses exactly
    /// this check).
    pub fn is_inverse_of(&self, other: &CMatrix, tol: f64) -> bool {
        if !self.is_square() || self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        (self * other).is_identity(tol)
    }

    /// Interprets the matrix as a permutation and returns the map
    /// `input basis index → output basis index`.
    ///
    /// Returns `None` if the matrix is not a permutation matrix.
    pub fn as_permutation(&self, tol: f64) -> Option<Vec<usize>> {
        if !self.is_permutation(tol) {
            return None;
        }
        let mut perm = vec![0usize; self.cols];
        for (c, slot) in perm.iter_mut().enumerate() {
            for r in 0..self.rows {
                if self.get(r, c).approx_eq(Complex::ONE, tol) {
                    *slot = r;
                }
            }
        }
        Some(perm)
    }

    /// Matrix power by repeated squaring (integer exponents only).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut exponent: u32) -> CMatrix {
        assert!(self.is_square(), "power of a non-square matrix");
        let mut result = CMatrix::identity(self.rows);
        let mut base = self.clone();
        while exponent > 0 {
            if exponent & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            exponent >>= 1;
        }
        result
    }

    /// Embeds a `k × k` matrix into an `n × n` identity, acting on the basis
    /// states listed in `levels` (in order).
    ///
    /// This is how qubit gates are lifted to qutrit space: e.g. embedding the
    /// qubit `X` on levels `[0, 1]` of a qutrit yields `X01`.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.rows`, any level is out of range, or
    /// levels repeat.
    pub fn embed(&self, n: usize, levels: &[usize]) -> CMatrix {
        assert!(self.is_square(), "embed requires a square matrix");
        assert_eq!(levels.len(), self.rows, "level count must match size");
        let mut seen = vec![false; n];
        for &l in levels {
            assert!(l < n, "level out of range");
            assert!(!seen[l], "repeated level");
            seen[l] = true;
        }
        let mut out = CMatrix::identity(n);
        for (i, &li) in levels.iter().enumerate() {
            for (j, &lj) in levels.iter().enumerate() {
                out.set(li, lj, self.get(i, j));
            }
        }
        out
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                let z = self.get(r, c);
                write!(f, "{:.3}{:+.3}i ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) + a * rhs.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }
}

impl Mul for CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: CMatrix) -> CMatrix {
        &self * &rhs
    }
}

impl Add for CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: CMatrix) -> CMatrix {
        &self + &rhs
    }
}

impl Sub for CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: CMatrix) -> CMatrix {
        &self - &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn identity_is_unitary_and_hermitian() {
        let i = CMatrix::identity(3);
        assert!(i.is_unitary(1e-12));
        assert!(i.is_hermitian(1e-12));
        assert!(i.is_permutation(1e-12));
    }

    #[test]
    fn identity_and_diagonal_detection() {
        assert!(CMatrix::identity(4).is_identity(1e-12));
        assert!(!pauli_x().is_identity(1e-12));
        assert!(pauli_z().is_diagonal(1e-12));
        assert!(!pauli_x().is_diagonal(1e-12));
        let d = pauli_z().as_diagonal(1e-12).unwrap();
        assert_eq!(d, vec![Complex::ONE, Complex::real(-1.0)]);
        assert!(pauli_x().as_diagonal(1e-12).is_none());
        // Non-square matrices are neither.
        assert!(!CMatrix::zeros(2, 3).is_diagonal(1e-12));
    }

    #[test]
    fn inverse_detection() {
        let x = pauli_x();
        assert!(x.is_inverse_of(&x, 1e-12), "X is self-inverse");
        assert!(!x.is_inverse_of(&pauli_z(), 1e-12));
        // Shift and its adjoint are inverses on a qutrit.
        let shift = CMatrix::permutation(&[1, 2, 0]);
        assert!(shift.is_inverse_of(&shift.adjoint(), 1e-12));
        assert!(!shift.is_inverse_of(&shift, 1e-12));
        // Shape mismatches are simply "not inverse".
        assert!(!x.is_inverse_of(&CMatrix::identity(3), 1e-12));
    }

    #[test]
    fn multiplication_shapes() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(3, 4);
        let c = &a * &b;
        assert_eq!((c.rows(), c.cols()), (2, 4));
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let z = pauli_z();
        // XZ = -ZX
        let xz = &x * &z;
        let zx = &z * &x;
        assert!(xz.approx_eq(&zx.scale(Complex::real(-1.0)), 1e-12));
        // X^2 = I
        assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn conj_is_adjoint_of_transpose() {
        let m = CMatrix::from_rows(&[
            &[Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)],
            &[Complex::I, Complex::new(0.0, -3.0)],
        ]);
        assert!(m.conj().approx_eq(&m.transpose().adjoint(), 1e-15));
        assert_eq!(m.conj().get(0, 0), Complex::new(1.0, -2.0));
    }

    #[test]
    fn adjoint_of_product_reverses_order() {
        let x = pauli_x();
        let z = pauli_z();
        let lhs = (&x * &z).adjoint();
        let rhs = &z.adjoint() * &x.adjoint();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i2 = CMatrix::identity(2);
        let xi = x.kron(&i2);
        assert_eq!((xi.rows(), xi.cols()), (4, 4));
        // (X ⊗ I)|00> = |10>
        let v = xi.mul_vec(&[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO]);
        assert!(v[2].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn trace_of_pauli_is_zero() {
        assert!(pauli_x().trace().approx_eq(Complex::ZERO, 1e-12));
        assert!(pauli_z().trace().approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn non_bijective_zero_one_matrix_is_not_permutation() {
        // Column-wise counting alone would accept this: each column has
        // exactly one 1, but both land in row 0.
        let m = CMatrix::from_real_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(!m.is_permutation(1e-12));
        assert_eq!(m.as_permutation(1e-12), None);
    }

    #[test]
    fn permutation_round_trip() {
        let perm = vec![2usize, 0, 1];
        let m = CMatrix::permutation(&perm);
        assert!(m.is_unitary(1e-12));
        assert_eq!(m.as_permutation(1e-12), Some(perm));
    }

    #[test]
    fn embed_x_on_levels_0_2() {
        let x = pauli_x();
        let x02 = x.embed(3, &[0, 2]);
        // Swaps |0> and |2>, leaves |1> fixed.
        assert_eq!(x02.as_permutation(1e-12), Some(vec![2, 1, 0]));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = pauli_x();
        assert!(x.pow(0).approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(x.pow(3).approx_eq(&x, 1e-12));
        assert!(x.pow(4).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn mul_vec_applies_matrix() {
        let z = pauli_z();
        let v = z.mul_vec(&[Complex::new(0.6, 0.0), Complex::new(0.0, 0.8)]);
        assert!(v[0].approx_eq(Complex::new(0.6, 0.0), 1e-12));
        assert!(v[1].approx_eq(Complex::new(0.0, -0.8), 1e-12));
    }

    #[test]
    fn from_vec_rejects_bad_shapes() {
        assert!(CMatrix::from_vec(2, 2, vec![Complex::ZERO; 3]).is_err());
        assert!(CMatrix::from_vec(2, 2, vec![Complex::ZERO; 4]).is_ok());
    }

    #[test]
    fn diagonal_builder() {
        let d = CMatrix::diagonal(&[Complex::ONE, Complex::I]);
        assert_eq!(d.get(1, 1), Complex::I);
        assert_eq!(d.get(0, 1), Complex::ZERO);
        assert!(d.is_unitary(1e-12));
    }

    #[test]
    fn non_square_is_not_unitary() {
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-12));
    }
}
