//! Property-based tests (proptest) for the core math types: complex
//! arithmetic, matrix algebra, basis-index encoding, and state-vector
//! invariants.

use proptest::prelude::*;
use qudit_core::{gates, CMatrix, Complex, StateVector};

fn arb_complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

fn arb_unit_complex() -> impl Strategy<Value = Complex> {
    (0.0f64..std::f64::consts::TAU).prop_map(Complex::cis)
}

proptest! {
    #[test]
    fn complex_addition_is_commutative(a in arb_complex(), b in arb_complex()) {
        prop_assert!((a + b).approx_eq(b + a, 1e-12));
    }

    #[test]
    fn complex_multiplication_is_associative(
        a in arb_complex(),
        b in arb_complex(),
        c in arb_complex()
    ) {
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conjugation_distributes_over_products(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
    }

    #[test]
    fn norm_is_multiplicative(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-7);
    }

    #[test]
    fn unit_phases_stay_on_the_unit_circle(a in arb_unit_complex(), b in arb_unit_complex()) {
        prop_assert!(((a * b).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication(a in arb_complex(), b in arb_complex()) {
        prop_assume!(b.abs() > 1e-3);
        prop_assert!(((a * b) / b - a).abs() < 1e-7);
    }
}

fn arb_permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #[test]
    fn permutation_matrices_are_unitary_and_invert(perm in arb_permutation(5)) {
        let m = CMatrix::permutation(&perm);
        prop_assert!(m.is_unitary(1e-12));
        let product = &m * &m.adjoint();
        prop_assert!(product.approx_eq(&CMatrix::identity(5), 1e-12));
        prop_assert_eq!(m.as_permutation(1e-12), Some(perm));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(j1 in 0usize..3, k1 in 0usize..3, j2 in 0usize..3, k2 in 0usize..3) {
        let a = gates::qudit::generalized_pauli(3, j1, k1);
        let b = gates::qudit::generalized_pauli(3, j2, k2);
        prop_assert!(a.kron(&b).is_unitary(1e-9));
    }

    #[test]
    fn matrix_product_of_unitaries_is_unitary(theta in 0.0f64..std::f64::consts::TAU, phi in 0.0f64..std::f64::consts::TAU) {
        let a = gates::qutrit::subspace_ry(0, 1, theta);
        let b = gates::qutrit::subspace_ry(1, 2, phi);
        prop_assert!((&a * &b).is_unitary(1e-9));
    }

    #[test]
    fn embed_preserves_unitarity(theta in 0.0f64..std::f64::consts::TAU) {
        let g = gates::qubit::rx(theta);
        prop_assert!(g.embed(3, &[0, 2]).is_unitary(1e-9));
    }
}

proptest! {
    #[test]
    fn encode_decode_round_trip(
        digits in proptest::collection::vec(0usize..3, 1..8)
    ) {
        let idx = StateVector::encode_digits(3, &digits).unwrap();
        prop_assert_eq!(StateVector::decode_index(3, digits.len(), idx), digits);
    }

    #[test]
    fn basis_states_are_normalised_and_orthogonal(
        a in proptest::collection::vec(0usize..3, 3),
        b in proptest::collection::vec(0usize..3, 3)
    ) {
        let sa = StateVector::from_basis_state(3, &a).unwrap();
        let sb = StateVector::from_basis_state(3, &b).unwrap();
        prop_assert!((sa.norm() - 1.0).abs() < 1e-12);
        let f = sa.fidelity(&sb);
        if a == b {
            prop_assert!((f - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(f < 1e-12);
        }
    }

    #[test]
    fn random_states_are_normalised(seed in 0u64..5000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sv = qudit_core::random_state(3, 4, &mut rng).unwrap();
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renormalisation_is_idempotent(seed in 0u64..5000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sv = qudit_core::random_state(2, 3, &mut rng).unwrap();
        let first = sv.renormalize();
        let second = sv.renormalize();
        prop_assert!((first - 1.0).abs() < 1e-9);
        prop_assert!((second - 1.0).abs() < 1e-12);
    }
}
