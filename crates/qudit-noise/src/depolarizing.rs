//! Symmetric depolarizing gate-error channels (Appendix A.1.1).
//!
//! For a `d`-level qudit the error basis is the set of generalised Paulis
//! `X^j Z^k`. A single-qudit gate error applies each non-identity basis
//! element with equal probability `p1` (so `d² − 1` error channels: 3 for a
//! qubit, 8 for a qutrit). A two-qudit gate error applies each non-identity
//! tensor pair with probability `p2` (`d⁴ − 1` channels: 15 for qubits, 80
//! for qutrits). This is exactly the model in the paper's Equations 3–6, and
//! is the source of the qutrit "per-operation cost": the no-error probability
//! drops from `1 − 15 p2` to `1 − 80 p2` for two-qudit gates.

use crate::error::{NoiseError, NoiseResult};
use crate::kraus::Channel;
use qudit_core::gates::qudit::pauli_basis;
use qudit_core::CMatrix;

/// Builds the single-qudit symmetric depolarizing channel with per-error
/// probability `p1` for dimension `d`.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidProbability`] if `p1 < 0` or the total error
/// probability `(d² − 1)·p1` exceeds 1.
pub fn single_qudit_depolarizing(d: usize, p1: f64) -> NoiseResult<Channel> {
    let channels = (d * d - 1) as f64;
    validate_probability("p1", p1, channels)?;
    let mut probs = Vec::with_capacity(d * d);
    let mut unitaries = Vec::with_capacity(d * d);
    probs.push(1.0 - channels * p1);
    unitaries.push(CMatrix::identity(d));
    for (i, pauli) in pauli_basis(d).into_iter().enumerate() {
        if i == 0 {
            continue;
        }
        probs.push(p1);
        unitaries.push(pauli);
    }
    Ok(Channel::MixedUnitary { probs, unitaries })
}

/// Builds the two-qudit symmetric depolarizing channel with per-error
/// probability `p2` for dimension `d` (acting on a `d² `-dimensional pair).
///
/// # Errors
///
/// Returns [`NoiseError::InvalidProbability`] if `p2 < 0` or the total error
/// probability `(d⁴ − 1)·p2` exceeds 1.
pub fn two_qudit_depolarizing(d: usize, p2: f64) -> NoiseResult<Channel> {
    let channels = (d * d * d * d - 1) as f64;
    validate_probability("p2", p2, channels)?;
    let basis = pauli_basis(d);
    let mut probs = Vec::with_capacity(d.pow(4));
    let mut unitaries = Vec::with_capacity(d.pow(4));
    probs.push(1.0 - channels * p2);
    unitaries.push(CMatrix::identity(d * d));
    for (i, a) in basis.iter().enumerate() {
        for (j, b) in basis.iter().enumerate() {
            if i == 0 && j == 0 {
                continue;
            }
            probs.push(p2);
            unitaries.push(a.kron(b));
        }
    }
    Ok(Channel::MixedUnitary { probs, unitaries })
}

/// The probability that *no* error occurs for a single-qudit gate:
/// `1 − (d² − 1)·p1`.
pub fn single_qudit_no_error_probability(d: usize, p1: f64) -> f64 {
    1.0 - ((d * d - 1) as f64) * p1
}

/// The probability that *no* error occurs for a two-qudit gate:
/// `1 − (d⁴ − 1)·p2`.
pub fn two_qudit_no_error_probability(d: usize, p2: f64) -> f64 {
    1.0 - ((d.pow(4) - 1) as f64) * p2
}

/// The paper's qutrit-vs-qubit reliability ratio for two-qudit gates,
/// `(1 − 80 p2) / (1 − 15 p2)` (Section 7.1.1).
pub fn qutrit_two_qudit_reliability_ratio(p2: f64) -> f64 {
    two_qudit_no_error_probability(3, p2) / two_qudit_no_error_probability(2, p2)
}

fn validate_probability(name: &str, p: f64, channels: f64) -> NoiseResult<()> {
    if p < 0.0 || !(p * channels).is_finite() || p * channels > 1.0 {
        return Err(NoiseError::InvalidProbability {
            parameter: name.to_string(),
            value: p,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_channel_has_four_branches() {
        let c = single_qudit_depolarizing(2, 1e-3).unwrap();
        assert_eq!(c.num_branches(), 4);
        c.validate().unwrap();
    }

    #[test]
    fn qutrit_channel_has_nine_branches() {
        let c = single_qudit_depolarizing(3, 1e-3).unwrap();
        assert_eq!(c.num_branches(), 9);
        c.validate().unwrap();
    }

    #[test]
    fn two_qubit_channel_has_sixteen_branches() {
        let c = two_qudit_depolarizing(2, 1e-4).unwrap();
        assert_eq!(c.num_branches(), 16);
        c.validate().unwrap();
    }

    #[test]
    fn two_qutrit_channel_has_eighty_one_branches() {
        let c = two_qudit_depolarizing(3, 1e-4).unwrap();
        assert_eq!(c.num_branches(), 81);
        c.validate().unwrap();
    }

    #[test]
    fn no_error_probabilities_match_paper_formulas() {
        let p2 = 1e-3 / 15.0;
        assert!((two_qudit_no_error_probability(2, p2) - (1.0 - 15.0 * p2)).abs() < 1e-15);
        assert!((two_qudit_no_error_probability(3, p2) - (1.0 - 80.0 * p2)).abs() < 1e-15);
        // Ratio is below 1: qutrit gates are less reliable per operation.
        let ratio = qutrit_two_qudit_reliability_ratio(p2);
        assert!(ratio < 1.0 && ratio > 0.99);
    }

    #[test]
    fn rejects_unphysical_probabilities() {
        assert!(single_qudit_depolarizing(3, -0.1).is_err());
        assert!(single_qudit_depolarizing(3, 0.2).is_err()); // 8 * 0.2 > 1
        assert!(two_qudit_depolarizing(3, 0.02).is_err()); // 80 * 0.02 > 1
    }

    #[test]
    fn zero_probability_is_identity_channel() {
        let c = single_qudit_depolarizing(3, 0.0).unwrap();
        match &c {
            Channel::MixedUnitary { probs, .. } => {
                assert!((probs[0] - 1.0).abs() < 1e-15);
                assert!(probs[1..].iter().all(|&p| p == 0.0));
            }
            _ => panic!("expected mixed unitary"),
        }
    }
}
