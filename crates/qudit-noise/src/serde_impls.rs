//! Hand-written `serde` implementations for the noise layer of the JSON
//! wire format: noise models, backend selectors, input-state
//! distributions, and fidelity estimates.

use crate::backend::BackendKind;
use crate::models::NoiseModel;
use crate::trajectory::{FidelityEstimate, InputState, Precision};
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for NoiseModel {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name", self.name.to_value()),
            ("p1", self.p1.to_value()),
            ("p2", self.p2.to_value()),
            ("t1", self.t1.to_value()),
            ("gate_time_1q", self.gate_time_1q.to_value()),
            ("gate_time_2q", self.gate_time_2q.to_value()),
        ];
        // Only-when-Some: a model without the optional channels keeps its
        // pre-extension byte layout, so golden files, result-cache keys and
        // batch-dedup keys are untouched by the fields' existence.
        if let Some(p) = self.leak_rate {
            fields.push(("leak_rate", p.to_value()));
        }
        if let Some(eps) = self.overrotation {
            fields.push(("overrotation", eps.to_value()));
        }
        if let Some(zeta) = self.crosstalk {
            fields.push(("crosstalk", zeta.to_value()));
        }
        Value::object(fields)
    }
}

impl Deserialize for NoiseModel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // The optional channels are absent on pre-extension payloads: those
        // parse to `None` and run bit-identically to what they always did.
        let optional = |name: &str| -> Result<Option<f64>, Error> {
            value.get(name).map(|v| v.as_f64()).transpose()
        };
        Ok(NoiseModel {
            name: String::from_value(value.field("name")?)?,
            p1: value.field("p1")?.as_f64()?,
            p2: value.field("p2")?.as_f64()?,
            t1: Option::<f64>::from_value(value.field("t1")?)?,
            gate_time_1q: value.field("gate_time_1q")?.as_f64()?,
            gate_time_2q: value.field("gate_time_2q")?.as_f64()?,
            leak_rate: optional("leak_rate")?,
            overrotation: optional("overrotation")?,
            crosstalk: optional("crosstalk")?,
        })
    }
}

impl Serialize for BackendKind {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for BackendKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let name = value.as_str()?;
        BackendKind::from_flag(name)
            .ok_or_else(|| Error::custom(format!("unknown backend {name:?}")))
    }
}

impl Serialize for InputState {
    fn to_value(&self) -> Value {
        match self {
            InputState::RandomQubitSubspace => {
                Value::object(vec![("kind", "random-qubit-subspace".to_value())])
            }
            InputState::AllOnes => Value::object(vec![("kind", "all-ones".to_value())]),
            InputState::Basis(digits) => Value::object(vec![
                ("kind", "basis".to_value()),
                ("digits", digits.to_value()),
            ]),
        }
    }
}

impl Deserialize for InputState {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.field("kind")?.as_str()? {
            "random-qubit-subspace" => Ok(InputState::RandomQubitSubspace),
            "all-ones" => Ok(InputState::AllOnes),
            "basis" => Ok(InputState::Basis(Vec::<usize>::from_value(
                value.field("digits")?,
            )?)),
            other => Err(Error::custom(format!("unknown input state kind {other:?}"))),
        }
    }
}

impl Serialize for Precision {
    fn to_value(&self) -> Value {
        match self {
            Precision::FixedTrials => Value::object(vec![("kind", "fixed".to_value())]),
            Precision::TargetSigma {
                sigma,
                min_trials,
                max_trials,
            } => Value::object(vec![
                ("kind", "target-sigma".to_value()),
                ("sigma", sigma.to_value()),
                ("min_trials", min_trials.to_value()),
                ("max_trials", max_trials.to_value()),
            ]),
        }
    }
}

impl Deserialize for Precision {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.field("kind")?.as_str()? {
            "fixed" => Ok(Precision::FixedTrials),
            "target-sigma" => Ok(Precision::TargetSigma {
                sigma: value.field("sigma")?.as_f64()?,
                min_trials: value.field("min_trials")?.as_usize()?,
                max_trials: value.field("max_trials")?.as_usize()?,
            }),
            other => Err(Error::custom(format!("unknown precision kind {other:?}"))),
        }
    }
}

impl Serialize for FidelityEstimate {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("mean", self.mean.to_value()),
            ("std_error", self.std_error.to_value()),
            ("trials", self.trials.to_value()),
        ])
    }
}

impl Deserialize for FidelityEstimate {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(FidelityEstimate {
            mean: value.field("mean")?.as_f64()?,
            std_error: value.field("std_error")?.as_f64()?,
            trials: value.field("trials")?.as_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use serde::json;

    #[test]
    fn every_paper_model_round_trips() {
        for model in models::all_models() {
            let back: NoiseModel = json::from_str(&json::to_string(&model)).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    fn optional_channel_fields_round_trip_and_stay_absent_otherwise() {
        // A plain model's wire form carries none of the new keys — the
        // pre-extension byte layout is preserved exactly.
        let plain = models::sc();
        let json = json::to_string(&plain);
        for key in ["leak_rate", "overrotation", "crosstalk"] {
            assert!(!json.contains(key), "unexpected {key} in {json}");
        }
        let back: NoiseModel = json::from_str(&json).unwrap();
        assert_eq!(back, plain);
        // An extended model round-trips all three fields.
        let extended = models::sc()
            .with_leakage(1e-3)
            .with_overrotation(0.02)
            .with_crosstalk(2e4);
        let back: NoiseModel = json::from_str(&json::to_string(&extended)).unwrap();
        assert_eq!(back, extended);
        assert_eq!(back.leak_rate, Some(1e-3));
        assert_eq!(back.overrotation, Some(0.02));
        assert_eq!(back.crosstalk, Some(2e4));
    }

    #[test]
    fn backend_kind_round_trips() {
        for kind in [BackendKind::Trajectory, BackendKind::DensityMatrix] {
            let back: BackendKind = json::from_str(&json::to_string(&kind)).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn input_state_round_trips() {
        for input in [
            InputState::RandomQubitSubspace,
            InputState::AllOnes,
            InputState::Basis(vec![1, 0, 2]),
        ] {
            let back: InputState = json::from_str(&json::to_string(&input)).unwrap();
            assert_eq!(back, input);
        }
    }

    #[test]
    fn precision_round_trips() {
        for precision in [
            Precision::FixedTrials,
            Precision::TargetSigma {
                sigma: 5e-3,
                min_trials: 32,
                max_trials: 4096,
            },
        ] {
            let back: Precision = json::from_str(&json::to_string(&precision)).unwrap();
            assert_eq!(back, precision);
        }
    }

    #[test]
    fn fidelity_estimate_round_trips_bit_exact() {
        let est = FidelityEstimate {
            mean: 0.903_712_345_678_9,
            std_error: 1.25e-3,
            trials: 400,
        };
        let back: FidelityEstimate = json::from_str(&json::to_string(&est)).unwrap();
        assert_eq!(back.mean.to_bits(), est.mean.to_bits());
        assert_eq!(back.std_error.to_bits(), est.std_error.to_bits());
        assert_eq!(back.trials, est.trials);
    }
}
