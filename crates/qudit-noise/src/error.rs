//! Error types for the `qudit-noise` crate.

use std::error::Error;
use std::fmt;

/// Convenience result alias for noise operations.
pub type NoiseResult<T> = Result<T, NoiseError>;

/// Errors produced while constructing or applying noise channels.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum NoiseError {
    /// A probability parameter was outside `[0, 1]` or made the channel
    /// non-physical.
    InvalidProbability {
        /// Name of the parameter.
        parameter: String,
        /// Its value.
        value: f64,
    },
    /// The Kraus operators do not satisfy the completeness relation
    /// `Σ K†K = I`.
    NotTracePreserving {
        /// Largest deviation from the identity.
        deviation: f64,
    },
    /// A channel was applied to a state of the wrong dimension.
    DimensionMismatch {
        /// Dimension expected by the channel.
        expected: usize,
        /// Dimension found.
        actual: usize,
    },
    /// A noise-model parameter was missing or inconsistent.
    InvalidModel {
        /// Human-readable description.
        reason: String,
    },
    /// A simulation run failed (e.g. an invalid input specification for the
    /// circuit, propagated from the core state constructors).
    Simulation {
        /// Human-readable description.
        reason: String,
    },
    /// A noisy simulation was requested at a compiler pass level that does
    /// not preserve error sites (the optimizing `Ideal` / `PhysicalIdeal`
    /// levels).
    UnsupportedLevel {
        /// The rejected level's stable name.
        level: &'static str,
    },
    /// The run's [`CancelToken`](crate::CancelToken) tripped (deadline
    /// expired or cancellation requested) before the simulation finished.
    Cancelled,
    /// An input state's shape did not match the circuit it was run through.
    StateShapeMismatch {
        /// Qudit dimension expected by the circuit.
        expected_dim: usize,
        /// Register width expected by the circuit.
        expected_width: usize,
        /// Qudit dimension of the offending state.
        actual_dim: usize,
        /// Register width of the offending state.
        actual_width: usize,
    },
}

impl From<qudit_core::CoreError> for NoiseError {
    fn from(e: qudit_core::CoreError) -> Self {
        NoiseError::Simulation {
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidProbability { parameter, value } => {
                write!(
                    f,
                    "probability parameter {parameter} = {value} is not physical"
                )
            }
            NoiseError::NotTracePreserving { deviation } => {
                write!(
                    f,
                    "kraus operators are not trace preserving (deviation {deviation})"
                )
            }
            NoiseError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "channel dimension {expected} does not match state dimension {actual}"
                )
            }
            NoiseError::InvalidModel { reason } => write!(f, "invalid noise model: {reason}"),
            NoiseError::Simulation { reason } => write!(f, "simulation failed: {reason}"),
            NoiseError::UnsupportedLevel { level } => {
                write!(
                    f,
                    "pass level {level:?} optimizes across error sites; noisy runs support \
                     \"physical\" and \"noise-preserving\" only"
                )
            }
            NoiseError::Cancelled => {
                write!(
                    f,
                    "simulation cancelled before completion (deadline or shutdown)"
                )
            }
            NoiseError::StateShapeMismatch {
                expected_dim,
                expected_width,
                actual_dim,
                actual_width,
            } => {
                write!(
                    f,
                    "input state has dimension {actual_dim} and width {actual_width}, but the \
                     circuit needs dimension {expected_dim} and width {expected_width}"
                )
            }
        }
    }
}

impl Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NoiseError::InvalidProbability {
            parameter: "p2".to_string(),
            value: 1.5,
        };
        assert!(e.to_string().contains("p2"));
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoiseError>();
    }
}
