//! Quantum noise channels in the Kraus operator formalism (Appendix A.1).
//!
//! A channel `E(σ) = Σ_i K_i σ K_i†` is represented either as a general set
//! of Kraus operators, or — when every operator is a scaled unitary, as in
//! the depolarizing channel — as a probabilistic mixture of unitaries, which
//! admits a much cheaper trajectory sampling rule (the branch probabilities
//! are state-independent).

use crate::error::{NoiseError, NoiseResult};
use qudit_core::{CMatrix, Complex, StateVector};
// Channel branches are applied on the calling thread: trajectory trials
// already run one per core, so per-branch fan-out would only oversubscribe.
use qudit_sim::apply_matrix_sequential as apply_matrix;
use qudit_sim::ApplyPlan;
use rand::Rng;

/// A quantum noise channel acting on one or more qudits.
#[derive(Clone, Debug, PartialEq)]
pub enum Channel {
    /// A probabilistic mixture of unitaries: with probability `probs[i]` the
    /// unitary `unitaries[i]` is applied. Branch probabilities do not depend
    /// on the state, so trajectory sampling is a single weighted draw.
    MixedUnitary {
        /// Branch probabilities (must sum to 1).
        probs: Vec<f64>,
        /// The unitary applied on each branch.
        unitaries: Vec<CMatrix>,
    },
    /// A general Kraus channel. Branch probabilities are state-dependent
    /// (`p_i = ‖K_i|ψ⟩‖²`), as required for amplitude damping.
    Kraus {
        /// The Kraus operators.
        operators: Vec<CMatrix>,
    },
}

impl Channel {
    /// The Hilbert-space dimension the channel acts on (`d` for one qudit,
    /// `d²` for two, …).
    pub fn dim(&self) -> usize {
        match self {
            Channel::MixedUnitary { unitaries, .. } => {
                unitaries.first().map(CMatrix::rows).unwrap_or(0)
            }
            Channel::Kraus { operators } => operators.first().map(CMatrix::rows).unwrap_or(0),
        }
    }

    /// The number of Kraus operators / branches (the paper's "error
    /// channels" count: 4 or 16 for qubits, 9 or 81 for qutrits).
    pub fn num_branches(&self) -> usize {
        match self {
            Channel::MixedUnitary { probs, .. } => probs.len(),
            Channel::Kraus { operators } => operators.len(),
        }
    }

    /// Validates that the channel is completely positive and trace
    /// preserving: probabilities sum to one (mixed-unitary form) or
    /// `Σ K†K = I` (Kraus form).
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::NotTracePreserving`] or
    /// [`NoiseError::InvalidProbability`] when the condition fails.
    pub fn validate(&self) -> NoiseResult<()> {
        match self {
            Channel::MixedUnitary { probs, unitaries } => {
                let total: f64 = probs.iter().sum();
                if (total - 1.0).abs() > 1e-9 {
                    return Err(NoiseError::InvalidProbability {
                        parameter: "sum of branch probabilities".to_string(),
                        value: total,
                    });
                }
                if probs.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                    return Err(NoiseError::InvalidProbability {
                        parameter: "branch probability".to_string(),
                        value: *probs
                            .iter()
                            .find(|&&p| !(0.0..=1.0).contains(&p))
                            .expect("found above"),
                    });
                }
                for u in unitaries {
                    if !u.is_unitary(1e-8) {
                        return Err(NoiseError::InvalidModel {
                            reason: "mixed-unitary branch is not unitary".to_string(),
                        });
                    }
                }
                Ok(())
            }
            Channel::Kraus { operators } => {
                let d = self.dim();
                let mut sum = CMatrix::zeros(d, d);
                for k in operators {
                    sum = &sum + &(&k.adjoint() * k);
                }
                let deviation = sum.max_abs_diff(&CMatrix::identity(d));
                if deviation > 1e-8 {
                    return Err(NoiseError::NotTracePreserving { deviation });
                }
                Ok(())
            }
        }
    }

    /// The superoperator `Σᵢ wᵢ·Kᵢ ⊗ conj(Kᵢ)` of the channel as a dense
    /// matrix over the combined `(row ⊗ column)` space of the targeted
    /// qudits, with `wᵢ` the branch probability for mixed-unitary channels
    /// and 1 for general Kraus channels.
    ///
    /// Feeding this to
    /// [`DensityMatrix::apply_superoperator`](qudit_sim::DensityMatrix::apply_superoperator)
    /// applies the channel *exactly* — the density-matrix backend's
    /// deterministic counterpart of [`Channel::apply_trajectory`].
    pub fn superoperator(&self) -> CMatrix {
        let d2 = self.dim() * self.dim();
        let mut total = CMatrix::zeros(d2, d2);
        match self {
            Channel::MixedUnitary { probs, unitaries } => {
                for (&p, u) in probs.iter().zip(unitaries) {
                    if p == 0.0 {
                        continue;
                    }
                    total = &total + &u.kron(&u.conj()).scale(Complex::real(p));
                }
            }
            Channel::Kraus { operators } => {
                for k in operators {
                    total = &total + &k.kron(&k.conj());
                }
            }
        }
        total
    }

    /// Precompiles the channel's trajectory branches for one fixed
    /// `(register shape, qudit set)` site, so the Monte Carlo loop does no
    /// plan building per application.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match `dim^qudits.len()`, or
    /// the qudit indices are invalid for the register.
    pub fn compile(&self, dim: usize, width: usize, qudits: &[usize]) -> CompiledChannel {
        let expected = dim.pow(qudits.len() as u32);
        assert_eq!(
            self.dim(),
            expected,
            "channel dimension does not match targeted qudits"
        );
        match self {
            Channel::MixedUnitary { probs, unitaries } => CompiledChannel {
                kind: CompiledKind::MixedUnitary {
                    probs: probs.clone(),
                    plans: unitaries
                        .iter()
                        .map(|u| {
                            if is_identity(u) {
                                None
                            } else {
                                Some(ApplyPlan::for_matrix(dim, width, u, qudits))
                            }
                        })
                        .collect(),
                },
            },
            Channel::Kraus { operators } => CompiledChannel {
                kind: CompiledKind::Kraus {
                    plans: operators
                        .iter()
                        .map(|k| ApplyPlan::for_matrix(dim, width, k, qudits))
                        .collect(),
                },
            },
        }
    }

    /// Composes this channel with a `later` one: the returned channel
    /// applies `self` first, then `later` (`E = later ∘ self`).
    ///
    /// Both channels must be mixed-unitary — the branch product of two
    /// state-independent mixtures is again a state-independent mixture with
    /// the outer-product branch probabilities, so the composite keeps the
    /// cheap single-draw trajectory rule. This is how the per-gate error is
    /// assembled from its physical pieces (coherent over-rotation, leakage,
    /// depolarizing) as *one* site, charged identically by both backends.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidModel`] when either channel is a general
    /// Kraus channel or the dimensions differ.
    pub fn then(&self, later: &Channel) -> NoiseResult<Channel> {
        let (p_a, u_a) = match self {
            Channel::MixedUnitary { probs, unitaries } => (probs, unitaries),
            Channel::Kraus { .. } => {
                return Err(NoiseError::InvalidModel {
                    reason: "channel composition requires mixed-unitary channels".to_string(),
                })
            }
        };
        let (p_b, u_b) = match later {
            Channel::MixedUnitary { probs, unitaries } => (probs, unitaries),
            Channel::Kraus { .. } => {
                return Err(NoiseError::InvalidModel {
                    reason: "channel composition requires mixed-unitary channels".to_string(),
                })
            }
        };
        if self.dim() != later.dim() {
            return Err(NoiseError::InvalidModel {
                reason: format!(
                    "cannot compose a dimension-{} channel with a dimension-{} channel",
                    self.dim(),
                    later.dim()
                ),
            });
        }
        let mut probs = Vec::with_capacity(p_a.len() * p_b.len());
        let mut unitaries = Vec::with_capacity(p_a.len() * p_b.len());
        // Earlier channel's branches vary fastest so that composing with a
        // single-branch (deterministic) later channel preserves branch order.
        for (pb, ub) in p_b.iter().zip(u_b) {
            for (pa, ua) in p_a.iter().zip(u_a) {
                probs.push(pa * pb);
                unitaries.push(ub * ua);
            }
        }
        Ok(Channel::MixedUnitary { probs, unitaries })
    }

    /// Samples one trajectory branch of the channel and applies it to the
    /// given qudits of the state, renormalising afterwards.
    ///
    /// Returns the index of the branch that was applied.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match `dim^qudits.len()` for
    /// the state's qudit dimension.
    pub fn apply_trajectory<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qudits: &[usize],
        rng: &mut R,
    ) -> usize {
        let expected = state.dim().pow(qudits.len() as u32);
        assert_eq!(
            self.dim(),
            expected,
            "channel dimension does not match targeted qudits"
        );
        match self {
            Channel::MixedUnitary { probs, unitaries } => {
                let r: f64 = rng.gen_range(0.0..1.0);
                let chosen = weighted_pick(probs, r);
                // Identity branches are usually first and dominant; skip the
                // work when the chosen unitary is exactly the identity.
                let u = &unitaries[chosen];
                if !is_identity(u) {
                    apply_matrix(state, u, qudits);
                }
                chosen
            }
            Channel::Kraus { operators } => {
                // Branch probabilities are ‖K_i|ψ⟩‖²; compute them by
                // applying each operator to a scratch copy.
                let mut branch_states: Vec<StateVector> = Vec::with_capacity(operators.len());
                let mut probs: Vec<f64> = Vec::with_capacity(operators.len());
                for k in operators {
                    let mut scratch = state.clone();
                    apply_matrix(&mut scratch, k, qudits);
                    let p = scratch.norm().powi(2);
                    probs.push(p);
                    branch_states.push(scratch);
                }
                let total: f64 = probs.iter().sum();
                let r: f64 = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
                let chosen = weighted_pick(&probs, r);
                *state = branch_states.swap_remove(chosen);
                state.renormalize();
                chosen
            }
        }
    }
}

/// A [`Channel`] precompiled for one `(dim, width, qudit set)` site: every
/// branch operator has a prebuilt [`ApplyPlan`], so trajectory sampling does
/// no per-application planning. Immutable and `Sync` — one compiled site is
/// shared by all Monte Carlo trials.
#[derive(Clone, Debug)]
pub struct CompiledChannel {
    kind: CompiledKind,
}

#[derive(Clone, Debug)]
enum CompiledKind {
    /// Branch probabilities are state-independent; identity branches (the
    /// dominant no-error case) are `None` and cost nothing to apply.
    MixedUnitary {
        probs: Vec<f64>,
        plans: Vec<Option<ApplyPlan>>,
    },
    /// Branch probabilities are `‖Kᵢ|ψ⟩‖²`, recomputed per application.
    Kraus { plans: Vec<ApplyPlan> },
}

impl CompiledChannel {
    /// Samples one branch and applies it on the calling thread,
    /// renormalising afterwards for state-dependent (Kraus) branches.
    ///
    /// Returns the index of the branch that was applied. Matches
    /// [`Channel::apply_trajectory`] draw-for-draw, so a trajectory built on
    /// compiled sites consumes the RNG stream identically.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the plans.
    pub fn apply_trajectory<R: Rng + ?Sized>(&self, state: &mut StateVector, rng: &mut R) -> usize {
        match &self.kind {
            CompiledKind::MixedUnitary { probs, plans } => {
                let r: f64 = rng.gen_range(0.0..1.0);
                let chosen = weighted_pick(probs, r);
                if let Some(plan) = &plans[chosen] {
                    plan.apply_sequential(state);
                }
                chosen
            }
            CompiledKind::Kraus { plans } => {
                let mut branch_states: Vec<StateVector> = Vec::with_capacity(plans.len());
                let mut probs: Vec<f64> = Vec::with_capacity(plans.len());
                for plan in plans {
                    let mut scratch = state.clone();
                    plan.apply_sequential(&mut scratch);
                    probs.push(scratch.norm().powi(2));
                    branch_states.push(scratch);
                }
                let total: f64 = probs.iter().sum();
                let r: f64 = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
                let chosen = weighted_pick(&probs, r);
                *state = branch_states.swap_remove(chosen);
                state.renormalize();
                chosen
            }
        }
    }
}

/// Index of the first branch whose cumulative weight exceeds `r`, falling
/// back to the last branch (guards against floating-point undershoot).
fn weighted_pick(probs: &[f64], r: f64) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

fn is_identity(m: &CMatrix) -> bool {
    if !m.is_square() {
        return false;
    }
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let expected = if r == c { Complex::ONE } else { Complex::ZERO };
            if !m.get(r, c).approx_eq(expected, 1e-12) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixed_unitary_validation() {
        let good = Channel::MixedUnitary {
            probs: vec![0.9, 0.1],
            unitaries: vec![CMatrix::identity(3), gates::qutrit::x_plus_1()],
        };
        assert!(good.validate().is_ok());

        let bad_sum = Channel::MixedUnitary {
            probs: vec![0.9, 0.2],
            unitaries: vec![CMatrix::identity(3), gates::qutrit::x_plus_1()],
        };
        assert!(bad_sum.validate().is_err());
    }

    #[test]
    fn kraus_validation_detects_non_cptp() {
        let good = Channel::Kraus {
            operators: vec![CMatrix::identity(2)],
        };
        assert!(good.validate().is_ok());
        let bad = Channel::Kraus {
            operators: vec![CMatrix::identity(2).scale(Complex::real(0.5))],
        };
        assert!(matches!(
            bad.validate(),
            Err(NoiseError::NotTracePreserving { .. })
        ));
    }

    #[test]
    fn identity_dominant_channel_rarely_changes_state() {
        let channel = Channel::MixedUnitary {
            probs: vec![1.0, 0.0],
            unitaries: vec![CMatrix::identity(3), gates::qutrit::x_plus_1()],
        };
        let mut state = StateVector::from_basis_state(3, &[1, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let branch = channel.apply_trajectory(&mut state, &[0], &mut rng);
            assert_eq!(branch, 0);
        }
        assert!((state.probability(&[1, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn always_error_channel_applies_unitary() {
        let channel = Channel::MixedUnitary {
            probs: vec![0.0, 1.0],
            unitaries: vec![CMatrix::identity(3), gates::qutrit::x_plus_1()],
        };
        let mut state = StateVector::from_basis_state(3, &[0, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        channel.apply_trajectory(&mut state, &[1], &mut rng);
        assert!((state.probability(&[0, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_trajectory_branch_statistics_follow_state() {
        // Amplitude damping style channel on a qubit: K0 keeps, K1 decays.
        let lambda: f64 = 0.3;
        let k0 = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ZERO],
            &[Complex::ZERO, Complex::real((1.0 - lambda).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::real(lambda.sqrt())],
            &[Complex::ZERO, Complex::ZERO],
        ]);
        let channel = Channel::Kraus {
            operators: vec![k0, k1],
        };
        channel.validate().unwrap();

        // On |1> the decay branch should occur with probability lambda.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 5000;
        let mut decays = 0;
        for _ in 0..trials {
            let mut state = StateVector::from_basis_state(2, &[1]).unwrap();
            let branch = channel.apply_trajectory(&mut state, &[0], &mut rng);
            if branch == 1 {
                decays += 1;
                assert!((state.probability(&[0]).unwrap() - 1.0).abs() < 1e-12);
            }
        }
        let rate = decays as f64 / trials as f64;
        assert!((rate - lambda).abs() < 0.03, "decay rate {rate}");

        // On |0> the decay branch never fires.
        let mut state = StateVector::from_basis_state(2, &[0]).unwrap();
        for _ in 0..50 {
            assert_eq!(channel.apply_trajectory(&mut state, &[0], &mut rng), 0);
        }
    }

    #[test]
    fn compiled_channel_consumes_the_same_rng_stream() {
        // The compiled site must reproduce the uncompiled path draw-for-draw
        // so precompiling cannot shift trajectory results.
        for channel in [
            crate::depolarizing::single_qudit_depolarizing(3, 1e-2).unwrap(),
            crate::damping::qutrit_damping(0.2, 0.35).unwrap(),
        ] {
            let compiled = channel.compile(3, 2, &[1]);
            let mut a = StateVector::from_basis_state(3, &[2, 2]).unwrap();
            let mut b = a.clone();
            let mut rng_a = StdRng::seed_from_u64(40);
            let mut rng_b = StdRng::seed_from_u64(40);
            for _ in 0..200 {
                let ba = channel.apply_trajectory(&mut a, &[1], &mut rng_a);
                let bb = compiled.apply_trajectory(&mut b, &mut rng_b);
                assert_eq!(ba, bb);
            }
            for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
                assert!(x.approx_eq(*y, 1e-12));
            }
        }
    }

    #[test]
    fn composed_channel_matches_sequential_superoperators() {
        let first = crate::depolarizing::single_qudit_depolarizing(3, 2e-2).unwrap();
        let second = Channel::MixedUnitary {
            probs: vec![0.7, 0.3],
            unitaries: vec![CMatrix::identity(3), gates::qutrit::x_plus_1()],
        };
        let composed = first.then(&second).unwrap();
        composed.validate().unwrap();
        // later ∘ self: the superoperator of the composite is the product
        // S_later · S_self.
        let expected = &second.superoperator() * &first.superoperator();
        assert!(composed.superoperator().approx_eq(&expected, 1e-12));
        // Composing with a single identity branch is branch-order neutral.
        let identity = Channel::MixedUnitary {
            probs: vec![1.0],
            unitaries: vec![CMatrix::identity(3)],
        };
        let neutral = first.then(&identity).unwrap();
        assert_eq!(neutral.num_branches(), first.num_branches());
        assert!(neutral
            .superoperator()
            .approx_eq(&first.superoperator(), 1e-12));
    }

    #[test]
    fn composition_rejects_kraus_and_mismatched_dims() {
        let kraus = crate::damping::qutrit_damping(0.2, 0.35).unwrap();
        let mixed = crate::depolarizing::single_qudit_depolarizing(3, 1e-2).unwrap();
        assert!(kraus.then(&mixed).is_err());
        assert!(mixed.then(&kraus).is_err());
        let qubit = crate::depolarizing::single_qudit_depolarizing(2, 1e-2).unwrap();
        assert!(mixed.then(&qubit).is_err());
    }

    #[test]
    fn superoperator_of_identity_channel_is_identity() {
        let channel = Channel::MixedUnitary {
            probs: vec![1.0],
            unitaries: vec![CMatrix::identity(3)],
        };
        assert!(channel
            .superoperator()
            .approx_eq(&CMatrix::identity(9), 1e-12));
    }

    #[test]
    fn superoperator_preserves_trace_for_cptp_channels() {
        // tr(E(ρ)) = tr(ρ) ⇔ the superoperator's columns, reshaped, have
        // unit trace; check it on the damping channel by applying to vec(ρ).
        let channel = crate::damping::qutrit_damping(0.3, 0.5).unwrap();
        let s = channel.superoperator();
        // vec(|2⟩⟨2|) is the basis column 8; E(|2⟩⟨2|) populations must sum
        // to 1 with mass split between |0⟩ and |2⟩.
        let mut vec_rho = vec![Complex::ZERO; 9];
        vec_rho[8] = Complex::ONE;
        let out = s.mul_vec(&vec_rho);
        let trace: f64 = (0..3).map(|i| out[i * 3 + i].re).sum();
        assert!((trace - 1.0).abs() < 1e-12);
        assert!((out[0].re - 0.5).abs() < 1e-12); // λ2 = 0.5 decay to |0⟩
        assert!((out[8].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trajectory_preserves_normalisation() {
        let channel = Channel::Kraus {
            operators: vec![
                CMatrix::from_rows(&[
                    &[Complex::ONE, Complex::ZERO],
                    &[Complex::ZERO, Complex::real(0.8)],
                ]),
                CMatrix::from_rows(&[
                    &[Complex::ZERO, Complex::real(0.6)],
                    &[Complex::ZERO, Complex::ZERO],
                ]),
            ],
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = StateVector::zero_state(2, 2).unwrap();
        // Prepare |+⟩ on qubit 1.
        apply_matrix(&mut state, &gates::qubit::h(), &[1]);
        channel.apply_trajectory(&mut state, &[1], &mut rng);
        assert!((state.norm() - 1.0).abs() < 1e-10);
    }
}
