//! # qudit-noise
//!
//! Realistic noise modelling for qudit circuits, reproducing Sections 6.1, 7
//! and Appendix A of the paper: symmetric depolarizing gate errors for
//! arbitrary qudit dimension, amplitude-damping (T1) idle errors, the
//! superconducting (Table 2) and trapped-ion (Table 3) parameter sets, and
//! two simulation backends behind one [`Backend`] trait:
//!
//! * a quantum-trajectory Monte Carlo simulator (Algorithm 1) that
//!   *estimates* the mean fidelity of a circuit under a noise model, and
//! * an exact density-matrix simulator that computes the same fidelity as
//!   ground truth for small registers, with every channel applied as its
//!   superoperator instead of sampled.
//!
//! [`cross_validate`] checks the two against each other; the integration
//! tests and the `crossval` bench binary run it on a fixed seed set so
//! backend drift fails the build.
//!
//! ## Example
//!
//! ```
//! use qudit_circuit::{Circuit, Control, Gate};
//! use qudit_noise::{models, simulate_fidelity, TrajectoryConfig};
//!
//! // Figure 4's Toffoli-via-qutrits under the SC+T1+GATES noise model.
//! let mut c = Circuit::new(3, 3);
//! c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])?;
//! c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])?;
//! c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])?;
//!
//! let config = TrajectoryConfig { trials: 40, ..TrajectoryConfig::default() };
//! let estimate = simulate_fidelity(&c, &models::sc_t1_gates(), &config)?;
//! assert!(estimate.mean > 0.9);
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod artifacts;
mod backend;
mod cancel;
mod channels;
mod damping;
mod depolarizing;
mod error;
mod exact;
mod kraus;
pub mod models;
#[cfg(feature = "serde")]
mod serde_impls;
mod trajectory;

pub use artifacts::{NoiseArtifactStats, SharedNoiseArtifacts};
pub use backend::{
    cross_validate, Backend, BackendKind, CrossValidation, DensityMatrixBackend, SimOutput,
    TrajectoryBackend,
};
pub use cancel::CancelToken;
pub use channels::{
    crosstalk_channel, crosstalk_unitary, leakage_channel, overrotation_channel,
    overrotation_unitary, two_qudit_leakage_channel, two_qudit_overrotation_channel,
};
pub use damping::{idle_damping_channel, lambda_m, qubit_damping, qutrit_damping};
pub use depolarizing::{
    qutrit_two_qudit_reliability_ratio, single_qudit_depolarizing,
    single_qudit_no_error_probability, two_qudit_depolarizing, two_qudit_no_error_probability,
};
pub use error::{NoiseError, NoiseResult};
pub use exact::{exact_fidelity, DensityNoiseSimulator};
pub use kraus::{Channel, CompiledChannel};
pub use models::NoiseModel;
pub use trajectory::{
    simulate_fidelity, FidelityEstimate, InputState, Precision, TrajectoryConfig,
    TrajectorySimulator, Welford,
};
