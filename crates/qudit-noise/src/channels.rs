//! The three device-realistic channels beyond the paper's stylized model:
//! leakage into/out of the |2⟩ level, coherent over-rotation, and ZZ-style
//! crosstalk between schedule-adjacent neighbours.
//!
//! All three are mixed-unitary channels, so they compose with the paper's
//! depolarizing gate error through [`Channel::then`] into a *single* error
//! site per operation — the trajectory backend keeps its one-draw sampling
//! rule and the density backend applies the exact composite superoperator,
//! which is what keeps the two backends inside the 3σ crossval gate.

use crate::error::{NoiseError, NoiseResult};
use crate::kraus::Channel;
use qudit_core::{eig_hermitian, gates, CMatrix, Complex};

/// Validates a probability-like channel parameter.
fn check_probability(parameter: &str, p: f64) -> NoiseResult<()> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(NoiseError::InvalidProbability {
            parameter: parameter.to_string(),
            value: p,
        });
    }
    Ok(())
}

/// Validates a finite real channel parameter (angles and rates may be
/// negative — a miscalibration can go either way — but not NaN/∞).
fn check_finite(parameter: &str, value: f64) -> NoiseResult<()> {
    if !value.is_finite() {
        return Err(NoiseError::InvalidModel {
            reason: format!("{parameter} = {value} is not a finite number"),
        });
    }
    Ok(())
}

/// The single-qudit leakage channel: with probability `p` the amplitude in
/// the qubit subspace exchanges with the |2⟩ level (the unitary X₁₂ swap),
/// modelling population leaking out of — and back into — the computational
/// |0⟩/|1⟩ states of a qutrit device.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidModel`] when `d < 3` (there is no |2⟩ level
/// to leak into) and [`NoiseError::InvalidProbability`] when `p` is outside
/// `[0, 1]`.
pub fn leakage_channel(d: usize, p: f64) -> NoiseResult<Channel> {
    check_leakage_dim(d)?;
    check_probability("leak_rate", p)?;
    Ok(Channel::MixedUnitary {
        probs: vec![1.0 - p, p],
        unitaries: vec![CMatrix::identity(d), gates::qudit::level_swap(d, 1, 2)],
    })
}

/// The two-qudit leakage channel: independent leakage on each qudit of the
/// pair (tensor of two single-qudit channels), so a two-qudit gate charges
/// leakage on both participants with one draw.
///
/// # Errors
///
/// As for [`leakage_channel`].
pub fn two_qudit_leakage_channel(d: usize, p: f64) -> NoiseResult<Channel> {
    check_leakage_dim(d)?;
    check_probability("leak_rate", p)?;
    let id = CMatrix::identity(d);
    let x12 = gates::qudit::level_swap(d, 1, 2);
    let keep = 1.0 - p;
    Ok(Channel::MixedUnitary {
        probs: vec![keep * keep, p * keep, keep * p, p * p],
        unitaries: vec![id.kron(&id), x12.kron(&id), id.kron(&x12), x12.kron(&x12)],
    })
}

fn check_leakage_dim(d: usize) -> NoiseResult<()> {
    if d < 3 {
        return Err(NoiseError::InvalidModel {
            reason: format!(
                "leakage needs a |2⟩ level to exchange with, but the qudit dimension is {d}"
            ),
        });
    }
    Ok(())
}

/// The coherent over-rotation unitary `V = exp(−iεH)` with `H` the
/// nearest-level coupling Hamiltonian (`H[j][k] = 1` iff `|j−k| = 1`): a
/// deterministic ε-miscalibration every gate picks up. Unlike a Pauli
/// channel this is a *single-branch* unitary perturbation, so it exercises
/// the coherent (non-Pauli) path of both backends.
pub fn overrotation_unitary(d: usize, epsilon: f64) -> CMatrix {
    let mut h = CMatrix::zeros(d, d);
    for j in 0..d.saturating_sub(1) {
        h.set(j, j + 1, Complex::ONE);
        h.set(j + 1, j, Complex::ONE);
    }
    let (evals, q) = eig_hermitian(&h);
    let phases: Vec<Complex> = evals.iter().map(|&l| Complex::cis(-epsilon * l)).collect();
    let d_mat = CMatrix::diagonal(&phases);
    &(&q * &d_mat) * &q.adjoint()
}

/// The single-qudit coherent over-rotation channel: `V = exp(−iεH)` applied
/// with probability one.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidModel`] when `epsilon` is not finite.
pub fn overrotation_channel(d: usize, epsilon: f64) -> NoiseResult<Channel> {
    check_finite("overrotation", epsilon)?;
    Ok(Channel::MixedUnitary {
        probs: vec![1.0],
        unitaries: vec![overrotation_unitary(d, epsilon)],
    })
}

/// The two-qudit coherent over-rotation channel `V ⊗ V`: both participants
/// of a two-qudit gate pick up the same miscalibration.
///
/// # Errors
///
/// As for [`overrotation_channel`].
pub fn two_qudit_overrotation_channel(d: usize, epsilon: f64) -> NoiseResult<Channel> {
    check_finite("overrotation", epsilon)?;
    let v = overrotation_unitary(d, epsilon);
    Ok(Channel::MixedUnitary {
        probs: vec![1.0],
        unitaries: vec![v.kron(&v)],
    })
}

/// The ZZ-style crosstalk unitary accumulated over `dt` seconds at coupling
/// strength `zeta` (rad/s): the diagonal two-qudit phase
/// `U|j,k⟩ = e^{−i·ζ·dt·j·k}|j,k⟩` — the natural qudit generalisation of the
/// always-on ZZ coupling between adjacent transmons.
pub fn crosstalk_unitary(d: usize, zeta: f64, dt: f64) -> CMatrix {
    let diag: Vec<Complex> = (0..d * d)
        .map(|idx| {
            let (j, k) = (idx / d, idx % d);
            Complex::cis(-zeta * dt * (j * k) as f64)
        })
        .collect();
    CMatrix::diagonal(&diag)
}

/// The crosstalk channel for one adjacent pair over a frame of duration
/// `dt` seconds.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidModel`] when `zeta` or `dt` is not finite.
pub fn crosstalk_channel(d: usize, zeta: f64, dt: f64) -> NoiseResult<Channel> {
    check_finite("crosstalk", zeta)?;
    check_finite("frame duration", dt)?;
    Ok(Channel::MixedUnitary {
        probs: vec![1.0],
        unitaries: vec![crosstalk_unitary(d, zeta, dt)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_channel_is_valid_and_rejects_qubits() {
        for d in [3usize, 4] {
            let c = leakage_channel(d, 0.05).unwrap();
            c.validate().unwrap();
            assert_eq!(c.num_branches(), 2);
            let pair = two_qudit_leakage_channel(d, 0.05).unwrap();
            pair.validate().unwrap();
            assert_eq!(pair.num_branches(), 4);
            assert_eq!(pair.dim(), d * d);
        }
        assert!(matches!(
            leakage_channel(2, 0.05),
            Err(NoiseError::InvalidModel { .. })
        ));
        assert!(leakage_channel(3, 1.5).is_err());
        assert!(leakage_channel(3, f64::NAN).is_err());
    }

    #[test]
    fn leakage_moves_population_to_level_two() {
        // An always-leak channel maps |1⟩ exactly onto |2⟩.
        let c = leakage_channel(3, 1.0).unwrap();
        let s = c.superoperator();
        // vec(|1⟩⟨1|) is column 4 of the 9×9 superoperator basis.
        let mut rho = vec![Complex::ZERO; 9];
        rho[4] = Complex::ONE;
        let out = s.mul_vec(&rho);
        assert!((out[8].re - 1.0).abs() < 1e-12, "population not in |2⟩⟨2|");
    }

    #[test]
    fn overrotation_is_unitary_and_reduces_to_identity() {
        for d in [2usize, 3, 4] {
            let v = overrotation_unitary(d, 0.1);
            assert!(v.is_unitary(1e-9));
            assert!(overrotation_unitary(d, 0.0).approx_eq(&CMatrix::identity(d), 1e-12));
            overrotation_channel(d, 0.1).unwrap().validate().unwrap();
            two_qudit_overrotation_channel(d, 0.1)
                .unwrap()
                .validate()
                .unwrap();
        }
        assert!(overrotation_channel(3, f64::INFINITY).is_err());
    }

    #[test]
    fn overrotation_inverts_under_negated_angle() {
        let v = overrotation_unitary(3, 0.2);
        let vinv = overrotation_unitary(3, -0.2);
        assert!((&v * &vinv).approx_eq(&CMatrix::identity(3), 1e-10));
    }

    #[test]
    fn crosstalk_is_diagonal_and_phases_scale_with_levels() {
        let u = crosstalk_unitary(3, 2.0, 0.5);
        assert!(u.is_unitary(1e-12));
        assert!(u.is_diagonal(1e-12));
        // |0,k⟩ and |j,0⟩ pick up no phase; |2,2⟩ picks up e^{−i·ζ·dt·4}.
        assert!(u.get(0, 0).approx_eq(Complex::ONE, 1e-12));
        assert!(u.get(2 * 3, 2 * 3).approx_eq(Complex::ONE, 1e-12));
        assert!(u.get(8, 8).approx_eq(Complex::cis(-4.0), 1e-12));
        crosstalk_channel(3, 2.0, 0.5).unwrap().validate().unwrap();
        assert!(crosstalk_channel(3, f64::NAN, 0.5).is_err());
    }
}
