//! Exact (density-matrix) noise simulation.
//!
//! Evolves `ρ` through the same noisy process the trajectory Monte Carlo
//! samples — gate unitaries, per-operation depolarizing errors, per-moment
//! amplitude-damping idles, with identical Di&Wei accounting — but applies
//! every channel *exactly* as its superoperator `Σᵢ Kᵢ ⊗ conj(Kᵢ)` instead
//! of drawing one branch. The resulting fidelity `⟨ψ_ideal|ρ|ψ_ideal⟩` is
//! the ground-truth value the trajectory estimates converge to; the
//! cross-validation harness ([`crate::cross_validate`]) asserts exactly
//! that.
//!
//! Cost: `d^2n` entries instead of `d^n` amplitudes, so this is the small-n
//! oracle (≲ 6–7 qutrits) while trajectories remain the scalable engine.

use crate::error::NoiseResult;
use crate::models::NoiseModel;
use crate::trajectory::{
    build_noise_sites, estimate_from_samples, for_each_gate_error_site, ErrorSite,
    FidelityEstimate, GateExpansion, InputState, NoiseSites, TrajectoryConfig,
};
use qudit_circuit::passes::{self, PassLevel};
use qudit_circuit::{Circuit, MomentDuration, Operation, Schedule};
use qudit_core::{random_qubit_subspace_state, CoreError, StateVector};
use qudit_sim::{
    superoperator_targets, ApplyPlan, CompiledCircuit, CompiledDensityCircuit, DensityMatrix,
    Simulator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// An exact density-matrix noise simulator bound to a circuit and a noise
/// model.
///
/// Construction first runs the circuit through the compiler's
/// [`PassLevel::NoisePreserving`] pipeline (guaranteed identity on the op
/// list and schedule, so exact fidelities are bit-identical with and
/// without it) and compiles the post-pass circuit twice — a state-vector
/// [`CompiledCircuit`] for the ideal reference output and a
/// [`CompiledDensityCircuit`] for the noisy `U·ρ·U†` evolution — plus one
/// superoperator [`ApplyPlan`] per (channel, site). Everything is
/// immutable and `Sync`, so input averaging fans out across rayon workers.
pub struct DensityNoiseSimulator<'a> {
    circuit: Circuit,
    ideal: CompiledCircuit,
    noisy: CompiledDensityCircuit,
    model: &'a NoiseModel,
    schedule: Schedule,
    /// Per-site superoperator plans over the vectorised `2n`-qudit view of
    /// `ρ` — same site set as the trajectory engine, each site a single
    /// deterministic plan.
    sites: NoiseSites<ApplyPlan>,
    expansion: GateExpansion,
}

impl<'a> DensityNoiseSimulator<'a> {
    /// Builds the simulator, pre-computing every superoperator plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension.
    pub fn new(
        circuit: &Circuit,
        model: &'a NoiseModel,
        expansion: GateExpansion,
    ) -> NoiseResult<Self> {
        let d = circuit.dim();
        let n = circuit.width();
        let (circuit, schedule, _report) =
            passes::compile(circuit, PassLevel::NoisePreserving).into_parts();
        let sites = build_noise_sites(&circuit, model, expansion, |c, qudits| {
            ApplyPlan::for_matrix(
                d,
                2 * n,
                &c.superoperator(),
                &superoperator_targets(qudits, n),
            )
        })?;
        Ok(DensityNoiseSimulator {
            ideal: Simulator::new().compile(&circuit),
            noisy: CompiledDensityCircuit::compile(&circuit),
            circuit,
            model,
            schedule,
            sites,
            expansion,
        })
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        self.model
    }

    /// Applies the gate-error superoperator(s) for one operation — the
    /// *same* site enumeration the trajectory simulator samples
    /// ([`for_each_gate_error_site`] is the shared source of truth).
    fn apply_gate_error(&self, op: &Operation, rho: &mut DensityMatrix) {
        for_each_gate_error_site(op, self.expansion, |site| match site {
            ErrorSite::Single(q) => rho.apply_plan(&self.sites.single_gate[q]),
            ErrorSite::Pair(pair) => rho.apply_plan(
                self.sites
                    .two_gate
                    .get(&pair)
                    .expect("pair compiled at construction"),
            ),
        });
    }

    /// Applies the idle superoperator for a moment to every qudit. The
    /// duration class comes straight from the schedule's
    /// [`Moment::duration`](qudit_circuit::Moment::duration) — the same
    /// accounting the trajectory engine samples.
    fn apply_idle_error(&self, moment_idx: usize, rho: &mut DensityMatrix) {
        let duration =
            self.schedule.moments()[moment_idx].duration(self.expansion == GateExpansion::DiWei);
        let sites = match duration {
            MomentDuration::ExpandedMultiQudit => &self.sites.idle_expanded,
            MomentDuration::MultiQudit => &self.sites.idle_long,
            MomentDuration::SingleQudit => &self.sites.idle_short,
        };
        if let Some(sites) = sites {
            for site in sites {
                rho.apply_plan(site);
            }
        }
    }

    /// Evolves `|ψ⟩⟨ψ|` for the initial state `initial` through the noisy
    /// process exactly and returns the final density matrix.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn evolve(&self, initial: &StateVector) -> DensityMatrix {
        let mut rho = DensityMatrix::from_pure(initial);
        for (moment_idx, op_indices) in self.schedule.iter() {
            for &op_idx in op_indices {
                self.noisy.pair(op_idx).apply(&mut rho);
                self.apply_gate_error(&self.circuit.operations()[op_idx], &mut rho);
            }
            self.apply_idle_error(moment_idx, &mut rho);
        }
        // The evolution is CPTP, so this only corrects the accumulated
        // floating-point drift of the trace.
        rho.renormalize();
        rho
    }

    /// The exact fidelity `⟨ψ_ideal|ρ_noisy|ψ_ideal⟩` for one initial state.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn exact_fidelity(&self, initial: &StateVector) -> f64 {
        let ideal = self.ideal.run_sequential(initial.clone());
        self.evolve(initial).fidelity_with_pure(&ideal)
    }

    /// Draws the initial state for input-sample `i`, consuming the RNG the
    /// same way trajectory trial `i` does — so an exact run and a trajectory
    /// run with the same config see the *same* random inputs and differ only
    /// in how noise is accounted.
    fn draw_input(&self, input: &InputState, seed: u64) -> Result<StateVector, CoreError> {
        let d = self.circuit.dim();
        let n = self.circuit.width();
        match input {
            InputState::RandomQubitSubspace => {
                let mut rng = StdRng::seed_from_u64(seed);
                random_qubit_subspace_state(d, n, &mut rng)
            }
            InputState::AllOnes => StateVector::from_basis_state(d, &vec![1usize; n]),
            InputState::Basis(digits) => StateVector::from_basis_state(d, digits),
        }
    }

    /// Runs the exact simulation for the configured input distribution.
    ///
    /// For a fixed input ([`InputState::AllOnes`] / [`InputState::Basis`])
    /// the result is a single deterministic value (`std_error` 0, one
    /// "trial"). For [`InputState::RandomQubitSubspace`] the exact fidelity
    /// is averaged over `config.trials` seeded input draws — deterministic
    /// for a fixed seed, with `std_error` reflecting input variation only
    /// (the noise itself contributes none).
    ///
    /// # Errors
    ///
    /// Returns an error if the input specification is invalid for the
    /// circuit.
    pub fn run(&self, config: &TrajectoryConfig) -> Result<FidelityEstimate, CoreError> {
        match &config.input {
            InputState::RandomQubitSubspace => {
                let fidelities: Result<Vec<f64>, CoreError> = (0..config.trials)
                    .into_par_iter()
                    .map(|i| {
                        let input =
                            self.draw_input(&config.input, config.seed.wrapping_add(i as u64))?;
                        Ok(self.exact_fidelity(&input))
                    })
                    .collect();
                Ok(estimate_from_samples(&fidelities?))
            }
            input => {
                let initial = self.draw_input(input, config.seed)?;
                Ok(FidelityEstimate {
                    mean: self.exact_fidelity(&initial),
                    std_error: 0.0,
                    trials: 1,
                })
            }
        }
    }
}

/// Convenience entry point: exact fidelity of `circuit` under `model`.
///
/// # Errors
///
/// Returns an error if the model is unphysical for the circuit dimension or
/// the input specification is invalid.
pub fn exact_fidelity(
    circuit: &Circuit,
    model: &NoiseModel,
    config: &TrajectoryConfig,
) -> Result<FidelityEstimate, Box<dyn std::error::Error + Send + Sync>> {
    let sim = DensityNoiseSimulator::new(circuit, model, config.expansion)?;
    Ok(sim.run(config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{sc, sc_t1_gates};
    use qudit_circuit::{Control, Gate};

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn noiseless_model_gives_exactly_unit_fidelity() {
        let model = NoiseModel {
            name: "NOISELESS".to_string(),
            p1: 0.0,
            p2: 0.0,
            t1: None,
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
        };
        let c = toffoli_fig4();
        let config = TrajectoryConfig {
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let est = exact_fidelity(&c, &model, &config).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn exact_fidelity_is_deterministic_and_physical() {
        let c = toffoli_fig4();
        let model = sc_t1_gates();
        let config = TrajectoryConfig {
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let a = exact_fidelity(&c, &model, &config).unwrap();
        let b = exact_fidelity(&c, &model, &config).unwrap();
        assert_eq!(a.mean, b.mean, "exact backend must be deterministic");
        assert!(a.mean > 0.9 && a.mean < 1.0, "fidelity {}", a.mean);
    }

    #[test]
    fn evolved_density_matrix_stays_physical() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = DensityNoiseSimulator::new(&c, &model, GateExpansion::DiWei).unwrap();
        let rho = sim.evolve(&StateVector::from_basis_state(3, &[1, 1, 1]).unwrap());
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.hermiticity_error() < 1e-10);
        assert!(rho.min_population() > -1e-12);
    }

    #[test]
    fn random_input_average_is_seeded_and_deterministic() {
        let c = toffoli_fig4();
        let model = sc();
        let config = TrajectoryConfig {
            trials: 4,
            seed: 11,
            ..TrajectoryConfig::default()
        };
        let a = exact_fidelity(&c, &model, &config).unwrap();
        let b = exact_fidelity(&c, &model, &config).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.trials, 4);
    }
}
