//! Exact (density-matrix) noise simulation.
//!
//! Evolves `ρ` through the same noisy process the trajectory Monte Carlo
//! samples — the same [`NoiseProgram`]: per frame, the gate unitaries, then
//! one gate-error channel per gate, then the frame's idle error — but
//! applies every channel *exactly* as its superoperator `Σᵢ Kᵢ ⊗ conj(Kᵢ)`
//! instead of drawing one branch. The resulting fidelity
//! `⟨ψ_ideal|ρ|ψ_ideal⟩` is the ground-truth value the trajectory estimates
//! converge to; the cross-validation harness ([`crate::cross_validate`])
//! asserts exactly that, and the `decomposition_diff` suite asserts the
//! physically lowered program agrees with an independent virtual-accounting
//! oracle to ≤ 1e-9.
//!
//! Cost: `d^2n` entries instead of `d^n` amplitudes, so this is the small-n
//! oracle (≲ 6–7 qutrits) while trajectories remain the scalable engine.

use crate::cancel::CancelToken;
use crate::error::{NoiseError, NoiseResult};
use crate::models::NoiseModel;
use crate::trajectory::{
    build_noise_sites, estimate_from_samples, FidelityEstimate, InputState, NoiseProgram,
    NoiseSites, Precision, TrajectoryConfig, Welford,
};
use qudit_circuit::passes::{CompiledIr, PassLevel};
use qudit_core::{random_qubit_subspace_state, CoreError, StateVector};
use qudit_sim::{
    superoperator_targets, ApplyPlan, CompiledCircuit, CompiledDensityCircuit, DensityMatrix,
    Simulator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::Arc;

/// An exact density-matrix noise simulator bound to a circuit and a noise
/// model.
///
/// Construction compiles a `NoiseProgram` (physically lowered by
/// default) and compiles the program circuit twice — a state-vector
/// [`CompiledCircuit`] for the ideal reference output and a
/// [`CompiledDensityCircuit`] for the noisy `U·ρ·U†` evolution — plus one
/// superoperator [`ApplyPlan`] per (channel, site). Everything is
/// immutable and `Sync`, so input averaging fans out across rayon workers.
pub struct DensityNoiseSimulator<'a> {
    program: Arc<NoiseProgram>,
    ideal: Arc<CompiledCircuit>,
    noisy: Arc<CompiledDensityCircuit>,
    model: &'a NoiseModel,
    /// Per-site superoperator plans over the vectorised `2n`-qudit view of
    /// `ρ` — same site set as the trajectory engine, each site a single
    /// deterministic plan.
    sites: Arc<NoiseSites<ApplyPlan>>,
}

impl<'a> DensityNoiseSimulator<'a> {
    /// Builds the simulator on the physically lowered circuit — the
    /// default accounting.
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension, or the circuit cannot be lowered.
    pub fn new(circuit: &qudit_circuit::Circuit, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::physical(circuit)?, model)
    }

    /// Builds the simulator on the logical-granularity ablation accounting
    /// (one error per unlowered operation; the optimistic baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the model parameters are unphysical for the
    /// circuit's qudit dimension.
    pub fn logical(circuit: &qudit_circuit::Circuit, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::logical(circuit), model)
    }

    /// Builds the simulator a pass level selects: [`PassLevel::Physical`]
    /// → the lowered accounting, [`PassLevel::NoisePreserving`] → the
    /// logical ablation. The single dispatch point behind
    /// [`exact_fidelity`] and the [`Backend`](crate::Backend) trait.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::UnsupportedLevel`] for the optimizing levels;
    /// otherwise the same conditions as [`DensityNoiseSimulator::new`].
    pub fn with_level(
        circuit: &qudit_circuit::Circuit,
        model: &'a NoiseModel,
        level: PassLevel,
    ) -> NoiseResult<Self> {
        match level {
            PassLevel::Physical => Self::new(circuit, model),
            PassLevel::NoisePreserving => Self::logical(circuit, model),
            level => Err(NoiseError::UnsupportedLevel {
                level: level.name(),
            }),
        }
    }

    /// Builds the simulator from an already-compiled IR, skipping the pass
    /// pipeline: the accounting follows the level the IR was compiled at.
    /// The compile-once entry point the `qudit-api` executor uses.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::UnsupportedLevel`] if the IR was compiled at
    /// an optimizing level, or an error if the model parameters are
    /// unphysical for the circuit's qudit dimension.
    pub fn from_compiled(ir: &CompiledIr, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program(NoiseProgram::from_ir(ir)?, model)
    }

    /// Like [`DensityNoiseSimulator::from_compiled`], but the ideal
    /// reference's gate plans compile through the caller's [`Simulator`]
    /// plan cache, shared across simulators over the same circuit. (The
    /// superoperator pair plans and channel plans are model-shaped and
    /// still build per construction.)
    ///
    /// # Errors
    ///
    /// Same conditions as [`DensityNoiseSimulator::from_compiled`].
    pub fn from_compiled_with(
        ir: &CompiledIr,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        Self::from_program_with(NoiseProgram::from_ir(ir)?, model, planner)
    }

    fn from_program(program: NoiseProgram, model: &'a NoiseModel) -> NoiseResult<Self> {
        Self::from_program_with(program, model, &Simulator::new())
    }

    /// Builds the simulator on memoized shared artifacts (see
    /// [`SharedNoiseArtifacts`](crate::SharedNoiseArtifacts)): the noise
    /// program, both compiled replays and the per-site superoperator plans
    /// are all shared — repeated constructions over the same cached circuit
    /// entry build nothing at all.
    ///
    /// # Errors
    ///
    /// Propagates model-validation failures from channel construction.
    pub fn from_artifacts_with(
        artifacts: &crate::SharedNoiseArtifacts,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        Ok(DensityNoiseSimulator {
            program: Arc::clone(artifacts.program()),
            ideal: artifacts.ideal(planner),
            noisy: artifacts.noisy_density(),
            model,
            sites: artifacts.density_sites(model)?,
        })
    }

    fn from_program_with(
        program: NoiseProgram,
        model: &'a NoiseModel,
        planner: &Simulator,
    ) -> NoiseResult<Self> {
        let d = program.circuit.dim();
        let n = program.circuit.width();
        let sites = build_noise_sites(&program, model, |c, qudits| {
            ApplyPlan::for_matrix(
                d,
                2 * n,
                &c.superoperator(),
                &superoperator_targets(qudits, n),
            )
        })?;
        Ok(DensityNoiseSimulator {
            ideal: Arc::new(planner.compile(&program.circuit)),
            noisy: Arc::new(CompiledDensityCircuit::compile(&program.circuit)),
            program: Arc::new(program),
            model,
            sites: Arc::new(sites),
        })
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        self.model
    }

    /// Evolves `|ψ⟩⟨ψ|` for the initial state `initial` through the noisy
    /// process exactly and returns the final density matrix.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn evolve(&self, initial: &StateVector) -> DensityMatrix {
        match self.evolve_cancellable(initial, &CancelToken::never()) {
            Ok(rho) => rho,
            Err(_) => unreachable!("the never token cannot cancel an evolution"),
        }
    }

    /// Like [`DensityNoiseSimulator::evolve`], but checks `cancel` between
    /// frames — density frames are the expensive unit of work here
    /// (`d^2n`-entry superoperator applies), so per-frame granularity bounds
    /// the overrun after a deadline expires.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::Cancelled`] once the token trips.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn evolve_cancellable(
        &self,
        initial: &StateVector,
        cancel: &CancelToken,
    ) -> NoiseResult<DensityMatrix> {
        let mut rho = DensityMatrix::from_pure(initial);
        for (frame_idx, frame) in self.program.frames.iter().enumerate() {
            cancel.check()?;
            for &op_idx in &frame.ops {
                self.noisy.pair(op_idx).apply(&mut rho);
            }
            for &op_idx in &frame.ops {
                self.sites
                    .for_op_sites(&self.program.sites[op_idx], |plan| rho.apply_plan(plan));
            }
            if let Some(sites) = self.sites.idle.get(&frame.duration) {
                for site in sites {
                    rho.apply_plan(site);
                }
            }
            // Crosstalk at the same point in the frame as the trajectory
            // loop. The channel is unitary, so the two loops' different
            // renormalisation cadence cannot make them disagree.
            if !self.sites.crosstalk.is_empty() {
                for pair in &self.program.crosstalk_pairs[frame_idx] {
                    if let Some(plan) = self.sites.crosstalk.get(&(frame.duration, *pair)) {
                        rho.apply_plan(plan);
                    }
                }
            }
        }
        // The evolution is CPTP, so this only corrects the accumulated
        // floating-point drift of the trace.
        rho.renormalize();
        Ok(rho)
    }

    /// The exact fidelity `⟨ψ_ideal|ρ_noisy|ψ_ideal⟩` for one initial state.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match the circuit.
    pub fn exact_fidelity(&self, initial: &StateVector) -> f64 {
        let ideal = self.ideal.run_sequential(initial.clone());
        self.evolve(initial).fidelity_with_pure(&ideal)
    }

    /// The exact *noisy-vs-noisy* fidelity: evolves the same initial state
    /// through this simulator and through `other`, and compares the two
    /// mixed outputs with the Uhlmann fidelity
    /// ([`DensityMatrix::fidelity`], `tr(√(√ρ σ √ρ))²`).
    ///
    /// [`DensityNoiseSimulator::exact_fidelity`] compares against a *pure*
    /// ideal reference, which `fidelity_with_pure` handles; comparing two
    /// noise models (or two compilations of the same circuit under one
    /// model) needs the mixed-reference fidelity.
    ///
    /// # Panics
    ///
    /// Panics if the state shape does not match either circuit, or the two
    /// simulators' registers have different shapes.
    pub fn exact_fidelity_vs(
        &self,
        other: &DensityNoiseSimulator<'_>,
        initial: &StateVector,
    ) -> f64 {
        self.evolve(initial).fidelity(&other.evolve(initial))
    }

    /// Draws the initial state for input-sample `i`, consuming the RNG the
    /// same way trajectory trial `i` does — so an exact run and a trajectory
    /// run with the same config see the *same* random inputs and differ only
    /// in how noise is accounted.
    fn draw_input(&self, input: &InputState, seed: u64) -> Result<StateVector, CoreError> {
        let d = self.program.circuit.dim();
        let n = self.program.circuit.width();
        match input {
            InputState::RandomQubitSubspace => {
                let mut rng = StdRng::seed_from_u64(seed);
                random_qubit_subspace_state(d, n, &mut rng)
            }
            InputState::AllOnes => StateVector::from_basis_state(d, &vec![1usize; n]),
            InputState::Basis(digits) => StateVector::from_basis_state(d, digits),
        }
    }

    /// Runs the exact simulation for the configured input distribution.
    ///
    /// For a fixed input ([`InputState::AllOnes`] / [`InputState::Basis`])
    /// the result is a single deterministic value (`std_error` 0, one
    /// "trial"). For [`InputState::RandomQubitSubspace`] the exact fidelity
    /// is averaged over `config.trials` seeded input draws — deterministic
    /// for a fixed seed, with `std_error` reflecting input variation only
    /// (the noise itself contributes none).
    ///
    /// # Errors
    ///
    /// Returns an error if the input specification is invalid for the
    /// circuit.
    pub fn run(&self, config: &TrajectoryConfig) -> NoiseResult<FidelityEstimate> {
        self.run_cancellable(config, &CancelToken::never())
    }

    /// Like [`DensityNoiseSimulator::run`], but every input's evolution
    /// checks `cancel` between frames; the sweep over input draws
    /// short-circuits on the first [`NoiseError::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`NoiseError::Cancelled`] once the token trips; otherwise the same
    /// conditions as [`DensityNoiseSimulator::run`].
    pub fn run_cancellable(
        &self,
        config: &TrajectoryConfig,
        cancel: &CancelToken,
    ) -> NoiseResult<FidelityEstimate> {
        match &config.input {
            InputState::RandomQubitSubspace => {
                let fidelities = self.input_chunk(config, 0..config.trials, cancel)?;
                Ok(estimate_from_samples(&fidelities))
            }
            input => {
                let initial = self.draw_input(input, config.seed)?;
                let ideal = self.ideal.run_sequential(initial.clone());
                // Exact evolution of one fixed input: the value is ground
                // truth with genuinely zero sampling error, so no binomial
                // floor applies here.
                Ok(FidelityEstimate {
                    mean: self
                        .evolve_cancellable(&initial, cancel)?
                        .fidelity_with_pure(&ideal),
                    std_error: 0.0,
                    trials: 1,
                })
            }
        }
    }

    /// Evaluates the exact fidelity for input draws of one index range, in
    /// index order — draw `i` uses `seed + i`, mirroring the trajectory
    /// engine's per-trial seeding.
    fn input_chunk(
        &self,
        config: &TrajectoryConfig,
        range: std::ops::Range<usize>,
        cancel: &CancelToken,
    ) -> NoiseResult<Vec<f64>> {
        range
            .into_par_iter()
            .map(|i| {
                cancel.check()?;
                let input = self.draw_input(&config.input, config.seed.wrapping_add(i as u64))?;
                let ideal = self.ideal.run_sequential(input.clone());
                Ok(self
                    .evolve_cancellable(&input, cancel)?
                    .fidelity_with_pure(&ideal))
            })
            .collect()
    }

    /// Runs with the requested [`Precision`], mirroring the trajectory
    /// engine's adaptive loop where it makes sense:
    ///
    /// * [`Precision::FixedTrials`] — exactly
    ///   [`DensityNoiseSimulator::run_cancellable`].
    /// * [`Precision::TargetSigma`] with a **deterministic input**
    ///   ([`InputState::AllOnes`] / [`InputState::Basis`]) — the cheap
    ///   fixed-cost path: the exact value has no sampling error at all, so
    ///   one evolution *is* the answer at any requested precision.
    /// * [`Precision::TargetSigma`] with random inputs — the chunked
    ///   early-stopper over input draws (the only stochastic axis the
    ///   exact backend has), Welford-merged like the trajectory loop.
    ///
    /// # Errors
    ///
    /// [`NoiseError::Cancelled`] once the token trips; otherwise the same
    /// conditions as [`DensityNoiseSimulator::run`].
    pub fn run_with_precision(
        &self,
        config: &TrajectoryConfig,
        precision: &Precision,
        cancel: &CancelToken,
    ) -> NoiseResult<FidelityEstimate> {
        let (sigma, min_trials, max_trials) = match *precision {
            Precision::FixedTrials => return self.run_cancellable(config, cancel),
            Precision::TargetSigma {
                sigma,
                min_trials,
                max_trials,
            } => (sigma, min_trials.max(1), max_trials.max(min_trials.max(1))),
        };
        if !matches!(config.input, InputState::RandomQubitSubspace) {
            return self.run_cancellable(config, cancel);
        }
        let mut agg = Welford::new();
        let mut done = 0usize;
        let mut next = min_trials.min(max_trials);
        while done < max_trials {
            let end = (done + next).min(max_trials);
            let samples = self.input_chunk(config, done..end, cancel)?;
            let mut chunk = Welford::new();
            for &f in &samples {
                chunk.push(f);
            }
            agg.merge(&chunk);
            done = end;
            if done >= min_trials && agg.estimate().conservative_sigma() <= sigma {
                break;
            }
            next = done;
        }
        Ok(agg.estimate())
    }
}

/// Convenience entry point: exact fidelity of `circuit` under `model`.
/// `config.level` selects the accounting: [`PassLevel::Physical`] (default)
/// simulates the physically lowered circuit, [`PassLevel::NoisePreserving`]
/// the logical ablation baseline.
///
/// # Errors
///
/// Returns an error if the model is unphysical for the circuit dimension,
/// the level does not support noise, or the input specification is invalid.
pub fn exact_fidelity(
    circuit: &qudit_circuit::Circuit,
    model: &NoiseModel,
    config: &TrajectoryConfig,
) -> Result<FidelityEstimate, Box<dyn std::error::Error + Send + Sync>> {
    let sim = DensityNoiseSimulator::with_level(circuit, model, config.level)?;
    Ok(sim.run(config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{sc, sc_t1_gates};
    use qudit_circuit::{Circuit, Control, Gate};

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn noiseless_model_gives_exactly_unit_fidelity() {
        let model = NoiseModel {
            name: "NOISELESS".to_string(),
            p1: 0.0,
            p2: 0.0,
            t1: None,
            gate_time_1q: 100e-9,
            gate_time_2q: 300e-9,
            leak_rate: None,
            overrotation: None,
            crosstalk: None,
        };
        let c = toffoli_fig4();
        let config = TrajectoryConfig {
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let est = exact_fidelity(&c, &model, &config).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn exact_fidelity_is_deterministic_and_physical() {
        let c = toffoli_fig4();
        let model = sc_t1_gates();
        let config = TrajectoryConfig {
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let a = exact_fidelity(&c, &model, &config).unwrap();
        let b = exact_fidelity(&c, &model, &config).unwrap();
        assert_eq!(a.mean, b.mean, "exact backend must be deterministic");
        assert!(a.mean > 0.9 && a.mean < 1.0, "fidelity {}", a.mean);
    }

    #[test]
    fn noisy_vs_noisy_fidelity_uses_the_uhlmann_form() {
        let c = toffoli_fig4();
        let input = StateVector::from_basis_state(3, &[1, 1, 1]).unwrap();
        let model_a = sc();
        let model_b = sc_t1_gates();
        let sim_a = DensityNoiseSimulator::new(&c, &model_a).unwrap();
        let sim_b = DensityNoiseSimulator::new(&c, &model_b).unwrap();
        // A simulator against itself is a perfect match.
        assert!((sim_a.exact_fidelity_vs(&sim_a, &input) - 1.0).abs() < 1e-9);
        // Two different noise models produce close but distinct mixed
        // states: high fidelity, strictly below 1, and symmetric.
        let f_ab = sim_a.exact_fidelity_vs(&sim_b, &input);
        let f_ba = sim_b.exact_fidelity_vs(&sim_a, &input);
        assert!(f_ab > 0.5 && f_ab < 1.0 - 1e-9, "{f_ab}");
        assert!((f_ab - f_ba).abs() < 1e-9);
    }

    #[test]
    fn evolved_density_matrix_stays_physical() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = DensityNoiseSimulator::new(&c, &model).unwrap();
        let rho = sim.evolve(&StateVector::from_basis_state(3, &[1, 1, 1]).unwrap());
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.hermiticity_error() < 1e-10);
        assert!(rho.min_population() > -1e-12);
    }

    #[test]
    fn evolved_density_matrix_stays_physical_under_lowered_blocks() {
        // A genuine three-qutrit op: the physical program replays the full
        // Di & Wei block with per-gate errors; ρ must remain a state.
        let mut c = Circuit::new(3, 3);
        c.push_controlled(
            Gate::increment(3),
            &[Control::on_one(0), Control::on_two(1)],
            &[2],
        )
        .unwrap();
        let model = sc_t1_gates();
        let sim = DensityNoiseSimulator::new(&c, &model).unwrap();
        let rho = sim.evolve(&StateVector::from_basis_state(3, &[1, 1, 0]).unwrap());
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.hermiticity_error() < 1e-10);
        assert!(rho.min_population() > -1e-12);
    }

    #[test]
    fn a_tripped_token_cancels_the_exact_sweep() {
        let c = toffoli_fig4();
        let model = sc();
        let sim = DensityNoiseSimulator::new(&c, &model).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let config = TrajectoryConfig::default();
        assert_eq!(
            sim.run_cancellable(&config, &token),
            Err(NoiseError::Cancelled)
        );
        // And the cancellable path agrees with the plain one when never
        // cancelled.
        let plain = sim.run(&config).unwrap();
        let never = sim.run_cancellable(&config, &CancelToken::never()).unwrap();
        assert_eq!(plain.mean, never.mean);
    }

    #[test]
    fn random_input_average_is_seeded_and_deterministic() {
        let c = toffoli_fig4();
        let model = sc();
        let config = TrajectoryConfig {
            trials: 4,
            seed: 11,
            ..TrajectoryConfig::default()
        };
        let a = exact_fidelity(&c, &model, &config).unwrap();
        let b = exact_fidelity(&c, &model, &config).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.trials, 4);
    }
}
