//! The simulation-backend abstraction.
//!
//! Two engines can answer the same questions about a circuit:
//!
//! * the **trajectory** backend — state-vector evolution, noise sampled as
//!   quantum trajectories (Algorithm 1). Scales to large registers; its
//!   fidelities are Monte Carlo estimates with statistical error bars.
//! * the **density-matrix** backend — exact `ρ` evolution with channels
//!   applied as superoperators. Exponentially more memory (`d^2n`), but its
//!   fidelities are ground truth with zero sampling error.
//!
//! [`Backend`] unifies them behind one `run`/`fidelity` API so verification
//! helpers, benches and tests can be routed through either engine (the
//! bench binaries expose this as a `--backend` switch), and
//! [`cross_validate`] pits them against each other: the trajectory estimate
//! must land within the computed confidence bound of the exact value.

use crate::error::{NoiseError, NoiseResult};
use crate::exact::DensityNoiseSimulator;
use crate::models::NoiseModel;
use crate::trajectory::{FidelityEstimate, TrajectoryConfig, TrajectorySimulator};
use qudit_circuit::passes::{self, PassLevel};
use qudit_circuit::Circuit;
use qudit_core::{CoreResult, StateVector};
use qudit_sim::{CompiledCircuit, CompiledDensityCircuit, DensityMatrix};

/// Validates an input state's shape against a circuit, turning the former
/// panic path of [`Backend::run_each`] into a typed error.
fn check_state_shape(circuit: &Circuit, state: &StateVector) -> NoiseResult<()> {
    if state.dim() != circuit.dim() || state.num_qudits() != circuit.width() {
        return Err(NoiseError::StateShapeMismatch {
            expected_dim: circuit.dim(),
            expected_width: circuit.width(),
            actual_dim: state.dim(),
            actual_width: state.num_qudits(),
        });
    }
    Ok(())
}

/// The output of a noise-free backend run: a pure state for state-vector
/// engines, a density matrix for exact engines. Common read-out queries are
/// provided so callers can stay backend-agnostic.
#[derive(Clone, Debug)]
pub enum SimOutput {
    /// A state vector `|ψ⟩`.
    Pure(StateVector),
    /// A density matrix `ρ` (pure in the noise-free case, but stored
    /// generally).
    Mixed(DensityMatrix),
}

impl SimOutput {
    /// The probability of measuring the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns an error if any digit is out of range.
    pub fn probability(&self, digits: &[usize]) -> CoreResult<f64> {
        match self {
            SimOutput::Pure(psi) => psi.probability(digits),
            SimOutput::Mixed(rho) => rho.population(digits),
        }
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        match self {
            SimOutput::Pure(psi) => psi.probabilities(),
            SimOutput::Mixed(rho) => rho.diagonal(),
        }
    }

    /// The fidelity against a pure reference state: `|⟨φ|ψ⟩|²` or
    /// `⟨φ|ρ|φ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn fidelity_with_pure(&self, reference: &StateVector) -> f64 {
        match self {
            SimOutput::Pure(psi) => reference.fidelity(psi),
            SimOutput::Mixed(rho) => rho.fidelity_with_pure(reference),
        }
    }
}

/// A simulation engine that can run circuits noise-free and estimate
/// fidelities under a noise model.
pub trait Backend: Send + Sync {
    /// A short stable name (`"trajectory"` / `"density-matrix"`), used by
    /// the `--backend` CLI switches and in reports.
    fn name(&self) -> &'static str;

    /// Noise-free evolution of a stream of inputs through one circuit
    /// compilation: the circuit is compiled once, each input is evolved,
    /// and `observer(input index, output)` is invoked per input. Stops
    /// early when the observer returns `false`.
    ///
    /// Prefer this over repeated [`Backend::run`] calls when sweeping many
    /// inputs (e.g. exhaustive verification over all basis states) — it
    /// avoids re-planning every operation per input.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::StateShapeMismatch`] if an input's dimension
    /// or width does not match the circuit; inputs before the offending one
    /// have already been observed.
    fn run_each(
        &self,
        circuit: &Circuit,
        inputs: &mut dyn Iterator<Item = StateVector>,
        observer: &mut dyn FnMut(usize, SimOutput) -> bool,
    ) -> NoiseResult<()>;

    /// Noise-free evolution of `initial` through `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::StateShapeMismatch`] if the state's shape does
    /// not match the circuit.
    fn run(&self, circuit: &Circuit, initial: &StateVector) -> NoiseResult<SimOutput> {
        let mut out = None;
        self.run_each(
            circuit,
            &mut std::iter::once(initial.clone()),
            &mut |_, o| {
                out = Some(o);
                false
            },
        )?;
        Ok(out.expect("run_each yields one output for one input"))
    }

    /// Mean fidelity of `circuit` under `model` for the configured input
    /// distribution. Trajectory backends sample `config.trials`
    /// trajectories; the exact backend returns ground truth (averaging only
    /// over inputs when the input distribution is random). The accounting
    /// follows `config.level` (physical lowering by default, the logical
    /// ablation at [`PassLevel::NoisePreserving`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is unphysical for the circuit's
    /// dimension, the level does not support noise, or the input
    /// specification is invalid.
    fn fidelity(
        &self,
        circuit: &Circuit,
        model: &NoiseModel,
        config: &TrajectoryConfig,
    ) -> NoiseResult<FidelityEstimate>;
}

/// The state-vector / quantum-trajectory engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrajectoryBackend;

impl Backend for TrajectoryBackend {
    fn name(&self) -> &'static str {
        "trajectory"
    }

    fn run_each(
        &self,
        circuit: &Circuit,
        inputs: &mut dyn Iterator<Item = StateVector>,
        observer: &mut dyn FnMut(usize, SimOutput) -> bool,
    ) -> NoiseResult<()> {
        // Noise-free: the full Ideal pass pipeline may fuse and cancel.
        let compiled = CompiledCircuit::compile_ir(&passes::compile(circuit, PassLevel::Ideal));
        for (i, input) in inputs.enumerate() {
            check_state_shape(circuit, &input)?;
            if !observer(i, SimOutput::Pure(compiled.run(input))) {
                return Ok(());
            }
        }
        Ok(())
    }

    fn fidelity(
        &self,
        circuit: &Circuit,
        model: &NoiseModel,
        config: &TrajectoryConfig,
    ) -> NoiseResult<FidelityEstimate> {
        let sim = TrajectorySimulator::with_level(circuit, model, config.level)?;
        sim.run(config)
    }
}

/// The exact density-matrix engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct DensityMatrixBackend;

impl Backend for DensityMatrixBackend {
    fn name(&self) -> &'static str {
        "density-matrix"
    }

    fn run_each(
        &self,
        circuit: &Circuit,
        inputs: &mut dyn Iterator<Item = StateVector>,
        observer: &mut dyn FnMut(usize, SimOutput) -> bool,
    ) -> NoiseResult<()> {
        // Noise-free: the full Ideal pass pipeline may fuse and cancel.
        let compiled =
            CompiledDensityCircuit::compile_ir(&passes::compile(circuit, PassLevel::Ideal));
        for (i, input) in inputs.enumerate() {
            check_state_shape(circuit, &input)?;
            let out = compiled.run(DensityMatrix::from_pure(&input));
            if !observer(i, SimOutput::Mixed(out)) {
                return Ok(());
            }
        }
        Ok(())
    }

    fn fidelity(
        &self,
        circuit: &Circuit,
        model: &NoiseModel,
        config: &TrajectoryConfig,
    ) -> NoiseResult<FidelityEstimate> {
        let sim = DensityNoiseSimulator::with_level(circuit, model, config.level)?;
        sim.run(config)
    }
}

/// Backend selector, for CLI `--backend` switches and config plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// [`TrajectoryBackend`].
    Trajectory,
    /// [`DensityMatrixBackend`].
    DensityMatrix,
}

impl BackendKind {
    /// Parses a CLI flag value. Accepts `trajectory`/`sv`/`statevector` and
    /// `density`/`density-matrix`/`dm`/`exact`.
    pub fn from_flag(flag: &str) -> Option<BackendKind> {
        match flag.to_ascii_lowercase().as_str() {
            "trajectory" | "sv" | "statevector" => Some(BackendKind::Trajectory),
            "density" | "density-matrix" | "dm" | "exact" => Some(BackendKind::DensityMatrix),
            _ => None,
        }
    }

    /// Instantiates the selected backend.
    pub fn instantiate(self) -> Box<dyn Backend> {
        match self {
            BackendKind::Trajectory => Box::new(TrajectoryBackend),
            BackendKind::DensityMatrix => Box::new(DensityMatrixBackend),
        }
    }

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Trajectory => TrajectoryBackend.name(),
            BackendKind::DensityMatrix => DensityMatrixBackend.name(),
        }
    }
}

/// One trajectory-vs-exact comparison from [`cross_validate`].
#[derive(Clone, Copy, Debug)]
pub struct CrossValidation {
    /// The exact (density-matrix) fidelity.
    pub exact: f64,
    /// The trajectory Monte Carlo estimate.
    pub estimate: FidelityEstimate,
    /// The confidence bound the estimate must fall within:
    /// `sigmas × max(binomial σ at the exact value, sample std error)`.
    pub tolerance: f64,
}

impl CrossValidation {
    /// Builds the comparison from an exact run and a trajectory run,
    /// computing the standard confidence bound: `sigmas × max(binomial σ
    /// at the exact value, sample std error)` plus a small absolute floor
    /// for the near-deterministic `F → 1` regime. The single source of the
    /// bound formula — [`cross_validate`] and the `crossval` CI gate's
    /// virtual-accounting leg both build through it.
    pub fn from_runs(exact: FidelityEstimate, estimate: FidelityEstimate, sigmas: f64) -> Self {
        let trials = estimate.trials.max(1) as f64;
        let binomial_sigma =
            (exact.mean.clamp(0.0, 1.0) * (1.0 - exact.mean.clamp(0.0, 1.0)) / trials).sqrt();
        CrossValidation {
            exact: exact.mean,
            estimate,
            tolerance: sigmas * binomial_sigma.max(estimate.std_error) + 1e-6,
        }
    }

    /// The absolute trajectory-vs-exact deviation.
    pub fn deviation(&self) -> f64 {
        (self.estimate.mean - self.exact).abs()
    }

    /// Whether the trajectory estimate landed within the bound.
    pub fn within_bounds(&self) -> bool {
        self.deviation() <= self.tolerance
    }
}

/// Cross-validates the two backends on one (circuit, model, config) triple:
/// runs the exact density-matrix fidelity and the trajectory estimate, and
/// computes the confidence bound the estimate must satisfy.
///
/// Per-trial fidelities lie in `[0, 1]`, so the sample-mean standard error
/// is bounded by the binomial form `√(F(1−F)/trials)` evaluated at the
/// exact `F`; the bound used is `sigmas` times the larger of that and the
/// observed sample standard error (plus a small absolute floor for the
/// near-deterministic `F → 1` regime). With the same `config.seed`, both
/// backends see identical input draws for random-input configs, so input
/// variation cancels and the bound only has to cover noise sampling.
///
/// # Errors
///
/// Returns an error if the model is unphysical for the circuit dimension or
/// the input specification is invalid.
pub fn cross_validate(
    circuit: &Circuit,
    model: &NoiseModel,
    config: &TrajectoryConfig,
    sigmas: f64,
) -> NoiseResult<CrossValidation> {
    let exact = DensityMatrixBackend.fidelity(circuit, model, config)?;
    let estimate = TrajectoryBackend.fidelity(circuit, model, config)?;
    Ok(CrossValidation::from_runs(exact, estimate, sigmas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::sc_t1_gates;
    use crate::InputState;
    use qudit_circuit::{Control, Gate};

    fn toffoli_fig4() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.push_controlled(Gate::increment(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c.push_controlled(Gate::x(3), &[Control::on_two(1)], &[2])
            .unwrap();
        c.push_controlled(Gate::decrement(3), &[Control::on_one(0)], &[1])
            .unwrap();
        c
    }

    #[test]
    fn both_backends_agree_on_noise_free_runs() {
        let c = toffoli_fig4();
        let input = StateVector::from_basis_state(3, &[1, 1, 0]).unwrap();
        let pure = TrajectoryBackend.run(&c, &input).unwrap();
        let mixed = DensityMatrixBackend.run(&c, &input).unwrap();
        for (a, b) in pure.probabilities().iter().zip(mixed.probabilities()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((mixed.probability(&[1, 1, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error_not_a_panic() {
        let c = toffoli_fig4();
        let wrong_width = StateVector::from_basis_state(3, &[1, 1]).unwrap();
        let wrong_dim = StateVector::from_basis_state(2, &[1, 1, 0]).unwrap();
        for backend in [
            &TrajectoryBackend as &dyn Backend,
            &DensityMatrixBackend as &dyn Backend,
        ] {
            for bad in [&wrong_width, &wrong_dim] {
                let err = backend.run(&c, bad).unwrap_err();
                assert!(
                    matches!(err, NoiseError::StateShapeMismatch { .. }),
                    "{} gave {err}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn backend_kind_parses_flags() {
        assert_eq!(
            BackendKind::from_flag("TRAJECTORY"),
            Some(BackendKind::Trajectory)
        );
        assert_eq!(BackendKind::from_flag("sv"), Some(BackendKind::Trajectory));
        assert_eq!(
            BackendKind::from_flag("density"),
            Some(BackendKind::DensityMatrix)
        );
        assert_eq!(
            BackendKind::from_flag("exact"),
            Some(BackendKind::DensityMatrix)
        );
        assert_eq!(BackendKind::from_flag("qft"), None);
        assert_eq!(BackendKind::Trajectory.instantiate().name(), "trajectory");
    }

    #[test]
    fn cross_validation_passes_on_the_fig4_toffoli() {
        let c = toffoli_fig4();
        let config = TrajectoryConfig {
            trials: 200,
            seed: 2019,
            input: InputState::AllOnes,
            ..TrajectoryConfig::default()
        };
        let cv = cross_validate(&c, &sc_t1_gates(), &config, 3.0).unwrap();
        assert!(
            cv.within_bounds(),
            "trajectory {} vs exact {} exceeds bound {}",
            cv.estimate.mean,
            cv.exact,
            cv.tolerance
        );
        assert!(cv.exact > 0.9 && cv.exact < 1.0);
    }
}
