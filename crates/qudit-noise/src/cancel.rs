//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is checked at natural checkpoints inside the
//! trajectory-trial and density-sweep loops, so an expired or abandoned job
//! stops burning cores mid-simulation instead of running to completion and
//! having its result discarded. Tokens combine an explicit flag (set by
//! [`CancelToken::cancel`], e.g. on server shutdown) with an optional
//! deadline; either one trips the token.
//!
//! The default token ([`CancelToken::never`]) carries no allocation and
//! every check is a single `Option` test, so non-server callers pay
//! essentially nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable handle that signals "stop working" to simulation
/// loops. Cloned tokens share state: cancelling one cancels all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    // None = the never-cancelled token; checks short-circuit immediately.
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels (free to check; the default).
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token with no deadline that cancels only via [`cancel`](Self::cancel).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that trips once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Convenience: a deadline `timeout` from now.
    pub fn after(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Trips the token (idempotent). No-op on [`never`](Self::never).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|inner| inner.deadline)
    }

    /// Checkpoint helper: `Err(NoiseError::Cancelled)` once tripped.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NoiseError::Cancelled`] if the token has tripped.
    pub fn check(&self) -> crate::NoiseResult<()> {
        if self.is_cancelled() {
            Err(crate::NoiseError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let token = CancelToken::never();
        token.cancel();
        assert!(!token.is_cancelled());
        assert!(token.check().is_ok());
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(crate::NoiseError::Cancelled));
    }

    #[test]
    fn deadline_trips_the_token() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        let token = CancelToken::after(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn default_is_never() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
